//! Quickstart: stand up a SpotCheck deployment over a synthetic week of
//! spot-market history, rent a nested VM, and watch it survive whatever
//! the market does — at a fraction of the on-demand price.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::sim::standard_traces;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_workloads::WorkloadKind;

fn main() {
    // 1. A week of synthetic m3-family spot-price history (the substitute
    //    for EC2's Apr-Oct 2014 archive; see DESIGN.md §2).
    let horizon_days = 7;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(horizon_days), 42);
    println!("loaded {} spot markets:", traces.len());
    for t in &traces {
        let mean = t
            .mean_price(SimTime::ZERO, SimTime::from_days(horizon_days))
            .unwrap_or(0.0);
        println!(
            "  {:<22} on-demand ${:.3}/hr, spot mean ${mean:.4}/hr",
            t.market.to_string(),
            t.on_demand_price
        );
    }

    // 2. A SpotCheck deployment with the paper's defaults: bid the
    //    on-demand price, protect VMs with bounded-time checkpointing, and
    //    restore lazily on revocation.
    let mut sim = SpotCheckSim::new(traces, SpotCheckConfig::default());

    // 3. A customer rents a server. To them it looks non-revocable.
    let customer = sim.create_customer();
    let vm = sim.request_server(customer, WorkloadKind::TpcW);
    println!("\ncustomer {customer} requested nested VM {vm}");

    // 4. Run the week.
    sim.run_until(SimTime::from_days(horizon_days));

    // 5. What happened?
    let record = sim.controller().vm(vm).expect("VM exists").clone();
    let report = sim.availability_report();
    let cost = sim.cost_report();
    println!("\nafter {horizon_days} days:");
    println!("  status:         {:?}", record.status);
    println!("  private IP:     {} (stable across migrations)", record.ip);
    println!("  revocations:    {}", report.revocations);
    println!("  migrations:     {}", report.migrations);
    println!(
        "  availability:   {:.4}% ({} total downtime)",
        report.availability_pct(),
        report.total_downtime
    );
    println!(
        "  native cost:    ${:.4}/VM-hr (on-demand would be $0.0700/VM-hr)",
        cost.native_cost / cost.vm_hours
    );
    println!(
        "  incl. backup at the paper's 40-VM multiplexing: ${:.4}/VM-hr",
        cost.native_cost / cost.vm_hours + 0.007
    );
}
