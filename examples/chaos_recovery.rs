//! Chaos recovery: a backup-server failure followed by a market-wide
//! revocation storm, with 90% on-demand stockouts and transient API
//! errors on every cloud call — the adversarial schedule the resilience
//! layer exists for.
//!
//! Three protected VMs sit on cheap spot capacity. At t = 2 h their
//! backup pool loses a server: the orphan is re-replicated to a fresh
//! server (~26 s unprotected while the 3 GiB image re-pushes). At
//! t = 3 h a revocation storm sweeps the market; destination acquisition
//! keeps failing, so the sources die before the migrations can carry
//! memory across, and the VMs restart from their last acked checkpoints.
//!
//! ```text
//! cargo run --example chaos_recovery
//! cargo run --example chaos_recovery -- --no-resilience
//! ```
//!
//! The second form disables retries and re-replication: the orphaned VM
//! has no checkpoint anywhere when the storm hits, and ends up stranded
//! mid-migration or lost outright.

use spotcheck_cloudsim::cloud::CloudConfig;
use spotcheck_cloudsim::faults::{FaultEvent, FaultPlan};
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::retry::ResilienceConfig;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

fn main() {
    let resilient = !std::env::args().any(|a| a == "--no-resilience");

    // A flat, cheap market: nothing here revokes on price. Every bit of
    // trouble below is injected.
    let market = MarketId::new("m3.medium", "us-east-1a");
    let series = StepSeries::from_points(vec![(SimTime::ZERO, 0.0141)]);
    let trace = PriceTrace::new(market.clone(), 0.070, series);

    let backup_dies = SimTime::from_hours(2);
    let storm_hits = SimTime::from_hours(3);
    let plan = FaultPlan::none()
        .with_transient_errors(0.10)
        .at(backup_dies, FaultEvent::BackupFailure { pick: 0 })
        .at(storm_hits, FaultEvent::RevocationStorm { market });

    let config = SpotCheckConfig {
        return_to_spot: false,
        resilience: if resilient {
            ResilienceConfig::default()
        } else {
            ResilienceConfig {
                retry_enabled: false,
                rereplication_enabled: false,
                ..ResilienceConfig::default()
            }
        },
        seed: 17,
        ..SpotCheckConfig::default()
    };
    println!(
        "resilience {} (retry/backoff, circuit breaker, backup re-replication)\n",
        if resilient { "ON " } else { "OFF" }
    );

    let cloud_cfg = CloudConfig {
        seed: config.seed,
        on_demand_stockout_prob: 0.9,
        faults: plan,
        ..CloudConfig::default()
    };
    let mut sim = SpotCheckSim::new_with_cloud(vec![trace], config, cloud_cfg);
    let customer = sim.create_customer();
    let vms: Vec<_> = (0..3)
        .map(|_| sim.request_server(customer, WorkloadKind::TpcW))
        .collect();

    let show = |sim: &mut SpotCheckSim, label: &str, t: SimTime| {
        sim.run_until(t);
        let counts = sim.controller().status_counts();
        let pending = sim.controller().pending_rereplications();
        println!("{label:<26} {counts:?}  pending re-pushes: {pending}");
    };

    show(&mut sim, "t=1:00:00  calm", SimTime::from_hours(1));
    show(
        &mut sim,
        "t=2:00:10  backup died",
        backup_dies + SimDuration::from_secs(10),
    );
    show(
        &mut sim,
        "t=2:01:00  re-push done",
        backup_dies + SimDuration::from_secs(60),
    );
    show(
        &mut sim,
        "t=3:01:00  storm, migrating",
        storm_hits + SimDuration::from_secs(60),
    );
    let end = SimTime::from_hours(5);
    show(&mut sim, "t=5:00:00  settled", end);

    let report = sim.availability_report();
    println!(
        "\nbackup failures: {}   re-replications: {}   unprotected: {:?}",
        report.backup_failures, report.rereplications, report.total_unprotected
    );
    println!(
        "revocations: {}   migrations: {}   downtime: {:?}",
        report.revocations, report.migrations, report.total_downtime
    );
    println!("lost VMs: {}", report.lost_vms);

    let lost = report.lost_vms;
    let survivors = vms
        .iter()
        .filter(|&&vm| {
            sim.controller()
                .vm(vm)
                .map(|r| r.status == spotcheck_core::types::VmStatus::Running)
                .unwrap_or(false)
        })
        .count();
    println!("survivors: {survivors}/{}", vms.len());
    if resilient {
        assert_eq!(lost, 0, "resilience on: no VM may be lost");
        assert_eq!(survivors, vms.len());
        println!("\nevery VM survived the schedule; the orphan was re-protected");
    } else {
        assert!(
            lost > 0 || survivors < vms.len(),
            "resilience off: the orphan must be lost or stranded"
        );
        println!("\nwithout re-replication the orphaned VM did not survive");
    }
}
