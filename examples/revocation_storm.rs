//! Revocation storm anatomy: a second-by-second look at what SpotCheck
//! does in the 120 seconds between a spot price spike and the platform
//! pulling the plug (paper §3.5, §4.3).
//!
//! Ten nested VMs sit on sliced spot servers when their market spikes.
//! The example traces the migration pipeline — warning, ramped final
//! checkpoints, destination acquisition, EBS/ENI moves, lazy restoration —
//! and verifies every VM survives with its IP intact.
//!
//! ```text
//! cargo run --example revocation_storm
//! ```

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::types::VmStatus;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

fn main() {
    // A calm medium market that spikes violently at t = 2 h.
    let spike_at = SimTime::from_hours(2);
    let series = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.0141),
        (spike_at, 4.2000), // 60x the on-demand price
        (spike_at + SimDuration::from_hours(3), 0.0141),
    ]);
    let trace = PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.070, series);

    let config = SpotCheckConfig {
        hot_spares: 2,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(vec![trace], config);
    let customer = sim.create_customer();
    let vms: Vec<_> = (0..10)
        .map(|_| sim.request_server(customer, WorkloadKind::TpcW))
        .collect();

    // Everyone is up before the spike.
    sim.run_until(spike_at - SimDuration::from_secs(1));
    let ips: Vec<_> = vms
        .iter()
        .map(|v| sim.controller().vm_ip(*v).expect("ip assigned"))
        .collect();
    println!(
        "t-0:00:01  {} VMs running on spot at $0.0141/hr; warning imminent",
        vms.len()
    );

    // Walk through the storm in 15-second steps.
    for step in 1..=16 {
        let t = spike_at + SimDuration::from_secs(step * 15);
        sim.run_until(t);
        let mut running = 0;
        let mut migrating = 0;
        for vm in &vms {
            match sim.controller().vm(*vm).expect("vm").status {
                VmStatus::Running => running += 1,
                VmStatus::Migrating => migrating += 1,
                _ => {}
            }
        }
        println!(
            "t+{:>3}s     running={running:<2} migrating={migrating:<2} active-migrations={} idle-spares={}",
            step * 15,
            sim.controller().active_migrations(),
            sim.controller().idle_spares()
        );
        if migrating == 0 && step > 2 {
            break;
        }
    }

    sim.run_until(spike_at + SimDuration::from_secs(600));
    let report = sim.availability_report();
    println!("\nstorm outcome:");
    println!("  VMs revoked:     {}", report.revocations);
    println!("  VMs surviving:   {}", vms.len());
    for (vm, ip_before) in vms.iter().zip(&ips) {
        let rec = sim.controller().vm(*vm).expect("vm");
        assert_eq!(rec.status, VmStatus::Running, "{vm} must survive");
        assert_eq!(rec.ip, *ip_before, "{vm} must keep its IP");
    }
    println!("  every VM kept its private IP across the migration");
    println!(
        "  mean downtime:   {:.1} s per VM (EC2 EBS/ENI ops dominate; paper: ~23 s)",
        report.total_downtime.as_secs_f64() / vms.len() as f64
    );
    println!(
        "  degraded window: {:.1} s per VM (lazy restoration prefetch)",
        report.total_degraded.as_secs_f64() / vms.len() as f64
    );
}
