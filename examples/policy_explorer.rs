//! Policy explorer: compare Table 2's customer-to-pool mapping policies
//! (and the two bidding policies) on freshly generated market history —
//! the cost/availability/risk tradeoff of paper §6.2, interactively sized.
//!
//! ```text
//! cargo run --release --example policy_explorer [days] [seed]
//! ```

use spotcheck_core::policy::{BiddingPolicy, MappingPolicy};
use spotcheck_core::sim::{run_policy, standard_traces, PolicyExperiment};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::time::SimDuration;

fn main() {
    let mut args = std::env::args().skip(1);
    let days: u64 = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(7);
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), seed);

    println!("=== mapping policies ({days} days, seed {seed}, SpotCheck lazy restore) ===\n");
    println!(
        "{:<8} {:>10} {:>14} {:>12} {:>12} {:>14}",
        "policy", "$/VM-hr", "avail (%)", "degr (%)", "revs/VM", "P(full storm)"
    );
    for mapping in MappingPolicy::ALL {
        let mut exp = PolicyExperiment::paper_default(mapping, MechanismKind::SpotCheckLazy, seed);
        exp.horizon = SimDuration::from_days(days);
        let r = run_policy(&traces, &exp);
        println!(
            "{:<8} {:>10.4} {:>14.4} {:>12.4} {:>12.1} {:>14}",
            mapping.label(),
            r.avg_cost_per_vm_hr,
            r.availability_pct,
            r.degradation_pct,
            r.revocations_per_vm,
            if r.storms.p_full() > 0.0 {
                format!("{:.1e}", r.storms.p_full())
            } else {
                "never".to_string()
            }
        );
    }

    println!("\n=== bidding policies (2P-ML, SpotCheck lazy restore) ===\n");
    println!(
        "{:<22} {:>10} {:>14} {:>12} {:>12}",
        "bidding", "$/VM-hr", "avail (%)", "revs/VM", "proactive/VM"
    );
    let bids = [
        BiddingPolicy::OnDemandPrice,
        BiddingPolicy::KTimesOnDemand {
            k: 2.0,
            proactive: false,
        },
        BiddingPolicy::KTimesOnDemand {
            k: 2.0,
            proactive: true,
        },
        BiddingPolicy::KTimesOnDemand {
            k: 10.0,
            proactive: true,
        },
    ];
    for bidding in bids {
        let mut exp = PolicyExperiment::paper_default(
            MappingPolicy::TwoML,
            MechanismKind::SpotCheckLazy,
            seed,
        );
        exp.horizon = SimDuration::from_days(days);
        exp.bidding = bidding;
        let r = run_policy(&traces, &exp);
        let proactive: usize = r.pools.iter().map(|p| p.proactive_migrations).sum();
        println!(
            "{:<22} {:>10.4} {:>14.4} {:>12.1} {:>12}",
            bidding.label(),
            r.avg_cost_per_vm_hr,
            r.availability_pct,
            r.revocations_per_vm,
            proactive
        );
    }
    println!(
        "\nreading: single-pool is cheapest/most available when its market is calm, but every\n\
         storm takes all VMs at once; spreading pools trades pennies for storm immunity;\n\
         higher bids with proactive migration convert revocations into zero-downtime live\n\
         migrations at the cost of occasionally paying above on-demand."
    );
}
