//! An interactive multi-tier web service on spot servers — the workload
//! class conventional wisdom said could not use the spot market (paper
//! §1).
//!
//! A customer runs a 6-VM TPC-W-style service (load balancer, app tier,
//! database) on SpotCheck for a simulated month. The example reports the
//! user-visible response time over time, including the checkpointing
//! overhead, revocation windows, and lazy-restoration blips.
//!
//! ```text
//! cargo run --example web_service
//! ```

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::standard_traces;
use spotcheck_core::types::VmStatus;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_workloads::{ApplicationModel, PerfContext, TpcW, WorkloadKind};

fn main() {
    let days = 30;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 2024);
    // Spread the service across two pools (2P-ML) to avoid losing every
    // tier to a single price spike.
    let config = SpotCheckConfig {
        mapping: MappingPolicy::TwoML,
        hot_spares: 1,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(traces, config);

    let customer = sim.create_customer();
    let tiers = ["lb-1", "app-1", "app-2", "app-3", "db-1", "db-2"];
    let vms: Vec<_> = tiers
        .iter()
        .map(|_| sim.request_server(customer, WorkloadKind::TpcW))
        .collect();
    println!("provisioned a {}-VM web service on spot servers", vms.len());

    // Sample service health daily.
    let tpcw = TpcW::default();
    println!("\nday  running  migrating  est. response (ms)");
    for day in 1..=days {
        sim.run_until(SimTime::from_days(day));
        let mut running = 0;
        let mut migrating = 0;
        for vm in &vms {
            match sim.controller().vm(*vm).expect("vm exists").status {
                VmStatus::Running => running += 1,
                VmStatus::Migrating => migrating += 1,
                _ => {}
            }
        }
        // Estimated steady response time: protected VMs pay the +15%
        // checkpointing overhead.
        let resp = tpcw.perf(&PerfContext::protected());
        println!("{day:>3}  {running:>7}  {migrating:>9}  {resp:>18.1}");
    }

    let report = sim.availability_report();
    let cost = sim.cost_report();
    println!("\nmonth summary for the service:");
    println!(
        "  availability: {:.4}% across {} VMs",
        report.availability_pct(),
        report.vms
    );
    println!(
        "  revocations survived: {} (migrations: {})",
        report.revocations, report.migrations
    );
    println!(
        "  total downtime: {} | degraded: {}",
        report.total_downtime, report.total_degraded
    );
    println!(
        "  native cost: ${:.4}/VM-hr vs on-demand $0.0700/VM-hr",
        cost.native_cost / cost.vm_hours
    );
    assert!(
        report.availability_pct() > 99.0,
        "the service must stay highly available"
    );
}
