//! Mixed stateful/stateless deployment (paper §4.2) plus revocation
//! prediction (§3.2).
//!
//! A replicated web tier tolerates failures by design, so its VMs skip
//! backup protection (saving $0.007/VM-hr) and simply live-migrate on
//! revocation; the database VMs keep the full bounded-time safety net.
//! The example also runs the rising-price revocation predictor over the
//! same market and reports how often it would have foreseen trouble.
//!
//! ```text
//! cargo run --release --example stateless_tier
//! ```

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::sim::standard_traces;
use spotcheck_core::types::VmStatus;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::predictor::TrendPredictor;
use spotcheck_workloads::WorkloadKind;

fn main() {
    let days = 21;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 404);
    let medium = traces[0].clone();
    let mut sim = SpotCheckSim::new(traces, SpotCheckConfig::default());
    let customer = sim.create_customer();

    // Three stateless web replicas, two stateful database VMs.
    let web: Vec<_> = (0..3)
        .map(|_| sim.request_server_opts(customer, WorkloadKind::TpcW, true))
        .collect();
    let db: Vec<_> = (0..2)
        .map(|_| sim.request_server_opts(customer, WorkloadKind::SpecJbb, false))
        .collect();

    sim.run_until(SimTime::from_days(days));

    println!("mixed deployment after {days} days:");
    for (label, vms) in [("web (stateless)", &web), ("db  (stateful)", &db)] {
        for vm in vms.iter() {
            let r = sim.controller().vm(*vm).expect("vm exists");
            println!(
                "  {label} {vm}: {:?}, backup={}",
                r.status,
                r.backup.map(|b| b.to_string()).unwrap_or_else(|| "none".into())
            );
            assert_eq!(r.status, VmStatus::Running);
        }
    }
    let report = sim.availability_report();
    println!(
        "\nsurvived {} revocations with {:.4}% availability",
        report.revocations,
        report.availability_pct()
    );
    println!(
        "backup spend: ${:.3} (stateless tier contributed $0)",
        sim.cost_report().backup_cost
    );

    // How predictable were this market's revocations?
    let predictor = TrendPredictor::default();
    let score = predictor.evaluate(
        &medium,
        medium.on_demand_price,
        SimDuration::from_secs(120),
        SimTime::ZERO,
        SimTime::from_days(days),
    );
    println!(
        "\nrevocation predictor on m3.medium: recall {:.2}, precision {:.2} \
         ({} hits, {} misses, {} false alarms)",
        score.recall(),
        score.precision(),
        score.hits,
        score.misses,
        score.false_alarms
    );
    println!(
        "(§3.2: this is why SpotCheck keeps checkpointing even with prediction available)"
    );
}
