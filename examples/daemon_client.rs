//! A minimal `spotcheckd` client: drives the daemon's line-delimited JSON
//! protocol over TCP with nothing but the standard library.
//!
//! Start the daemon in one terminal:
//!
//! ```text
//! cargo run -p spotcheck-service --release --bin spotcheckd -- \
//!     --addr 127.0.0.1:7077 --accel 10000 --days 7
//! ```
//!
//! then run this client in another:
//!
//! ```text
//! cargo run --release --example daemon_client                  # default addr
//! cargo run --release --example daemon_client 127.0.0.1:7077
//! ```
//!
//! The client registers a customer, provisions two nested VMs (one
//! stateful, one stateless), polls live metrics twice a second for five
//! seconds of wall time, and asks the daemon for a snapshot — leaving it
//! running for other clients.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::time::Duration;

fn roundtrip(stream: &mut TcpStream, request: &str) -> std::io::Result<String> {
    stream.write_all(request.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut response = String::new();
    BufReader::new(stream.try_clone()?).read_line(&mut response)?;
    Ok(response.trim_end().to_string())
}

fn main() -> std::io::Result<()> {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7077".to_string());
    let mut stream = TcpStream::connect(&addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    println!("connected to spotcheckd at {addr}");

    let status = roundtrip(&mut stream, r#"{"op": "status"}"#)?;
    println!("status     <- {status}");

    let customer = roundtrip(&mut stream, r#"{"op": "create_customer"}"#)?;
    println!("customer   <- {customer}");

    // The daemon assigns customer ids densely from 0; a fresh daemon gave
    // us customer 0. A robust client would parse the response.
    let vm = roundtrip(
        &mut stream,
        r#"{"op": "provision", "customer": 0, "workload": "tpcw"}"#,
    )?;
    println!("vm         <- {vm}");
    let vm = roundtrip(
        &mut stream,
        r#"{"op": "provision", "customer": 0, "workload": "specjbb", "stateless": true}"#,
    )?;
    println!("stateless  <- {vm}");

    for _ in 0..10 {
        std::thread::sleep(Duration::from_millis(500));
        let metrics = roundtrip(&mut stream, "GET metrics")?;
        println!("metrics    <- {metrics}");
    }

    let snap = roundtrip(&mut stream, r#"{"op": "snapshot"}"#)?;
    println!("snapshot   <- {snap}");
    println!("done; daemon left running");
    Ok(())
}
