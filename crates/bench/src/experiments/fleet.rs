//! Fleet-scale controller stress: tens of thousands of nested VMs driven
//! through the *real* controller over a six-month trace that includes an
//! engineered revocation storm.
//!
//! Unlike the policy experiments (which sweep many small simulations),
//! this experiment runs one simulation at derivative-cloud scale — 50,000
//! nested VMs at `Full` — to exercise the controller's state database and
//! the engine's event queue on their hot paths: first-fit placement scans,
//! price-change fan-out over every host, mass simultaneous revocation, and
//! the return-to-spot wave once the storm abates. Wall-clock, events/sec,
//! and peak queue depth land in `BENCH_RESULTS.json` via the harness's
//! standard instrumentation; the rendered table carries only deterministic
//! simulation outcomes so byte-identical output can be asserted across
//! thread counts and queue backends.
//!
//! The fleet's own bookkeeping uses the generational
//! [`Slab`](spotcheck_simcore::slab::Slab): mid-run churn releases a slice
//! of VMs and re-requests replacements, recycling slab slots and proving
//! stale handles cannot resurrect released VMs.

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::types::CustomerId;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::slab::{Handle, Slab};
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use super::Scale;
use crate::table::{f, TextTable};

/// Fleet sizing for one scale.
struct FleetPlan {
    customers: usize,
    vms_per_customer: usize,
    horizon: SimDuration,
    /// When the churn wave (release + replace) happens.
    churn_at: SimTime,
    /// When the engineered price storm begins.
    storm_at: SimTime,
}

impl FleetPlan {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            // 250 customers x 200 VMs = 50,000 nested VMs. 200 initial plus
            // the churn wave's ~10 replacements per customer stays under the
            // 254-host capacity of each customer's /24 subnet (replacement
            // VMs allocate fresh private IPs; the VPC never reclaims them).
            Scale::Full => FleetPlan {
                customers: 250,
                vms_per_customer: 200,
                horizon: SimDuration::from_days(183),
                churn_at: SimTime::ZERO + SimDuration::from_days(60),
                storm_at: SimTime::ZERO + SimDuration::from_days(91),
            },
            // 20 x 100 = 2,000 VMs over two weeks for smoke tests.
            Scale::Quick => FleetPlan {
                customers: 20,
                vms_per_customer: 100,
                horizon: SimDuration::from_days(14),
                churn_at: SimTime::ZERO + SimDuration::from_days(5),
                storm_at: SimTime::ZERO + SimDuration::from_days(7),
            },
        }
    }

    fn fleet_size(&self) -> usize {
        self.customers * self.vms_per_customer
    }
}

/// Builds the six-month m3.medium trace: an hourly random walk well below
/// the on-demand bid (no organic revocations) with one storm window where
/// the price spikes far above it, revoking the entire fleet at once.
fn storm_trace(plan: &FleetPlan) -> PriceTrace {
    const BASE: f64 = 0.014;
    const ON_DEMAND: f64 = 0.070;
    const STORM_PRICE: f64 = 0.900;
    let storm_len = SimDuration::from_hours(2);
    let mut rng = SimRng::seed(0xF1EE7);
    let mut points: Vec<(SimTime, f64)> = Vec::new();
    let mut price = BASE;
    let hours = plan.horizon.as_micros() / 3_600_000_000;
    for h in 0..hours {
        let t = SimTime::from_secs(h * 3600);
        if t >= plan.storm_at && t < plan.storm_at + storm_len {
            if points.last().map(|&(_, p)| p) != Some(STORM_PRICE) {
                points.push((t, STORM_PRICE));
            }
            continue;
        }
        // +-0.002/hr drift, clamped into [0.010, 0.020].
        let step = (rng.gen_range(0, 9) as f64 - 4.0) * 5e-4;
        price = (price + step).clamp(0.010, 0.020);
        points.push((t, price));
    }
    PriceTrace::new(
        MarketId::new("m3.medium", "us-east-1a"),
        ON_DEMAND,
        StepSeries::from_points(points),
    )
}

/// One fleet entry: enough to release and replace the VM later.
struct Tracked {
    customer: CustomerId,
    vm: NestedVmId,
}

/// Runs the fleet experiment.
pub fn run(scale: Scale) -> String {
    let plan = FleetPlan::for_scale(scale);
    let cfg = SpotCheckConfig {
        zone: "us-east-1a".to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(vec![storm_trace(&plan)], cfg);

    // Fleet bookkeeping in a generational slab: handles are stable across
    // churn, and freed slots are recycled for replacement VMs.
    let mut fleet: Slab<Tracked> = Slab::new();
    let mut handles: Vec<Handle> = Vec::with_capacity(plan.fleet_size());

    // Ramp the fleet up customer by customer, advancing the clock five
    // minutes between batches so provisioning staggers instead of landing
    // on one instant.
    for _ in 0..plan.customers {
        let customer = sim.create_customer();
        for _ in 0..plan.vms_per_customer {
            let vm = sim.request_server(customer, WorkloadKind::TpcW);
            handles.push(fleet.insert(Tracked { customer, vm }));
        }
        let next = sim.now() + SimDuration::from_secs(300);
        sim.run_until(next);
    }

    // Churn wave: release every 20th VM, let the releases settle for an
    // hour, then request replacements. Freed slab slots are reused and the
    // stale handles must stay dead (generation bump).
    sim.run_until(plan.churn_at);
    let mut churned: Vec<(usize, Handle, CustomerId)> = Vec::new();
    for i in (0..handles.len()).step_by(20) {
        let old = handles[i];
        let t = fleet.remove(old).expect("tracked VM is live");
        sim.release_server(t.vm).expect("fleet VM is releasable");
        churned.push((i, old, t.customer));
    }
    let churn_count = churned.len();
    sim.run_until(plan.churn_at + SimDuration::from_hours(1));
    for (i, old, customer) in churned {
        let vm = sim.request_server(customer, WorkloadKind::TpcW);
        handles[i] = fleet.insert(Tracked { customer, vm });
        assert!(fleet.get(old).is_none(), "stale handle must not resurrect");
    }

    // Through the storm and out the other side.
    sim.run_until(SimTime::ZERO + plan.horizon);

    let avail = sim.availability_report();
    let cost = sim.cost_report();
    let counters = sim.journal().counters();

    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["nested VMs".into(), plan.fleet_size().to_string()]);
    t.row(vec!["customers".into(), plan.customers.to_string()]);
    t.row(vec![
        "horizon (days)".into(),
        format!("{:.0}", plan.horizon.as_secs_f64() / 86_400.0),
    ]);
    t.row(vec!["churned + replaced".into(), churn_count.to_string()]);
    t.row(vec!["revocations".into(), avail.revocations.to_string()]);
    t.row(vec!["migrations".into(), avail.migrations.to_string()]);
    t.row(vec![
        "returns completed".into(),
        counters.returns_completed.to_string(),
    ]);
    t.row(vec![
        "re-replications".into(),
        counters.rereplications_completed.to_string(),
    ]);
    t.row(vec!["VMs lost".into(), counters.vms_lost.to_string()]);
    t.row(vec!["unavailability".into(), f(avail.unavailability, 6)]);
    t.row(vec!["degradation".into(), f(avail.degradation, 6)]);
    t.row(vec!["cost ($/VM-hr)".into(), f(cost.cost_per_vm_hr, 5)]);
    // Surfaced so a fleet that outgrows the journal's record cap is loud:
    // entries beyond the cap are dropped (counters stay exact), and at
    // million-VM scale that truncation must be visible, not silent.
    t.row(vec![
        "journal entries dropped".into(),
        sim.journal().dropped().to_string(),
    ]);
    // The sharded sibling (`fleet_sharded`) reports epoch-window and pool
    // accounting here; this experiment runs the flat single-queue engine,
    // where those metrics do not exist — said explicitly so the two
    // tables stay comparable.
    t.row(vec![
        "engine".into(),
        "flat single-queue (no epochs/pool)".into(),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\none controller simulation at fleet scale: a {}-VM fleet rides a {:.0}-day\n\
         trace whose storm window revokes every spot host at once (wall-clock,\n\
         events/sec, and peak queue depth are reported in BENCH_RESULTS.json)\n",
        plan.fleet_size(),
        plan.horizon.as_secs_f64() / 86_400.0,
    ));
    out
}
