//! Experiment registry: one entry per paper table/figure plus ablations.

pub mod ablations;
pub mod contention;
pub mod fig1;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod fleet_sharded;
pub mod policy;
pub mod table1;
pub mod table2;
pub mod trace_library;

/// Experiment fidelity: `Full` reproduces the paper's scales (six-month
/// traces); `Quick` shrinks horizons for smoke tests and criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale horizons and repetitions.
    Full,
    /// Reduced horizons for fast runs.
    Quick,
}

impl Scale {
    /// Trace horizon in days.
    pub fn horizon_days(self) -> u64 {
        match self {
            Scale::Full => 183,
            Scale::Quick => 14,
        }
    }
}

/// A completed experiment, with its timing instrumentation.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Registry id, e.g. `fig10`.
    pub id: &'static str,
    /// Title matching the paper artifact.
    pub title: &'static str,
    /// The formatted output (tables/series).
    pub output: String,
    /// Wall-clock time the runner took.
    pub wall: std::time::Duration,
    /// Simulation events processed while the runner executed (price-trace
    /// change points generated, series segments walked, page writes
    /// sampled, fluid-rate recomputations, latency draws, queue pops).
    pub events: u64,
    /// Largest event-queue depth any simulation driven by the runner
    /// reached (0 for closed-form experiments that never run the engine).
    pub peak_queue_depth: u64,
}

impl ExperimentResult {
    /// Events per wall-clock second (0 for an instantaneous run).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

type Runner = fn(Scale) -> String;

/// The registry, in the paper's presentation order.
const REGISTRY: &[(&str, &str, Runner)] = &[
    ("fig1", "Figure 1: m1.small spot price over time", fig1::run),
    (
        "fig6a",
        "Figure 6a: availability CDF vs bid ratio (m3 family)",
        fig6::run_a,
    ),
    (
        "fig6b",
        "Figure 6b: CDF of hourly percentage price jumps",
        fig6::run_b,
    ),
    (
        "fig6c",
        "Figure 6c: price correlation across 18 zones",
        fig6::run_c,
    ),
    (
        "fig6d",
        "Figure 6d: price correlation across 15 instance types",
        fig6::run_d,
    ),
    (
        "table1",
        "Table 1: latency of EC2 control-plane operations",
        table1::run,
    ),
    (
        "table2",
        "Table 2: customer-to-pool mapping policies and their weights",
        table2::run,
    ),
    (
        "fig7",
        "Figure 7: performance vs VMs per backup server",
        fig7::run,
    ),
    (
        "fig8",
        "Figure 8: restore downtime / degraded duration vs concurrency",
        fig8::run,
    ),
    (
        "fig9",
        "Figure 9: TPC-W response time during concurrent lazy restores",
        fig9::run,
    ),
    (
        "fig10",
        "Figure 10: average cost per VM under each policy",
        policy::run_fig10,
    ),
    (
        "fig11",
        "Figure 11: unavailability under each policy",
        policy::run_fig11,
    ),
    (
        "fig12",
        "Figure 12: performance degradation under each policy",
        policy::run_fig12,
    ),
    (
        "table3",
        "Table 3: probability of mass concurrent revocations",
        policy::run_table3,
    ),
    (
        "headline",
        "Headline: cost savings and availability (1P-M, lazy restore)",
        policy::run_headline,
    ),
    (
        "ablation_ramp",
        "Ablation: ramped final checkpoint (SpotCheck) vs fixed (Yank)",
        ablations::run_ramp,
    ),
    (
        "ablation_fadvise",
        "Ablation: fadvise read-path optimization on lazy restores",
        ablations::run_fadvise,
    ),
    (
        "ablation_slicing",
        "Ablation: slicing arbitrage on the placement cost",
        ablations::run_slicing,
    ),
    (
        "ablation_spares",
        "Ablation: hot spares vs lazy on-demand acquisition",
        ablations::run_spares,
    ),
    (
        "ablation_bid",
        "Ablation: bid level k x on-demand vs revocations and cost",
        ablations::run_bid,
    ),
    (
        "ablation_bound",
        "Ablation: bounded-time migration bound vs overhead",
        ablations::run_bound,
    ),
    (
        "ablation_billing",
        "Ablation: continuous vs 2014-hourly billing",
        ablations::run_billing,
    ),
    (
        "ablation_predictor",
        "Ablation: revocation prediction precision vs recall",
        ablations::run_predictor,
    ),
    (
        "journal",
        "Journal: controller event counters under a revocation spike",
        ablations::run_journal,
    ),
    (
        "fleet",
        "Fleet: 50k-VM controller stress with a revocation storm",
        fleet::run,
    ),
    (
        "contention_storm",
        "Contention: storm size x defenses vs the 30 s guarantee",
        contention::run,
    ),
    (
        "fleet_sharded",
        "Sharded fleet: per-AZ controller shards with cross-shard gossip",
        fleet_sharded::run,
    ),
    (
        "trace_library",
        "Trace library: columnar archive ingest vs CSV + policy grid",
        trace_library::run,
    ),
];

/// All experiment ids in order.
pub fn all_ids() -> Vec<&'static str> {
    REGISTRY.iter().map(|(id, _, _)| *id).collect()
}

fn run_entry(entry: &(&'static str, &'static str, Runner), scale: Scale) -> ExperimentResult {
    let (id, title, runner) = *entry;
    let start = std::time::Instant::now();
    spotcheck_simcore::metrics::reset_peak_queue_depth();
    let (output, events) = spotcheck_simcore::metrics::measure(|| runner(scale));
    ExperimentResult {
        id,
        title,
        output,
        wall: start.elapsed(),
        events,
        peak_queue_depth: spotcheck_simcore::metrics::peak_queue_depth(),
    }
}

/// Runs one experiment by id.
pub fn run(id: &str, scale: Scale) -> Option<ExperimentResult> {
    REGISTRY
        .iter()
        .find(|(rid, _, _)| *rid == id)
        .map(|entry| run_entry(entry, scale))
}

/// Runs a set of experiments by id, fanning the registry out across the
/// process-wide configured worker count
/// ([`spotcheck_simcore::parallel::configured_threads`]).
///
/// Results come back in the order the ids were given. Output is identical
/// at every worker count: each experiment seeds its own RNG streams, and
/// the shared policy grid is computed once (first caller wins) behind a
/// `OnceLock` whichever worker gets there first.
///
/// # Errors
///
/// Returns the first unknown id.
pub fn run_many(ids: &[&str], scale: Scale) -> Result<Vec<ExperimentResult>, String> {
    let entries: Vec<&(&'static str, &'static str, Runner)> = ids
        .iter()
        .map(|id| {
            REGISTRY
                .iter()
                .find(|(rid, _, _)| rid == id)
                .ok_or_else(|| format!("unknown experiment id: {id}"))
        })
        .collect::<Result<_, _>>()?;
    Ok(spotcheck_simcore::parallel::parallel_map(
        entries,
        |_, entry| run_entry(entry, scale),
    ))
}

/// Runs the whole registry (see [`run_many`]).
pub fn run_all(scale: Scale) -> Vec<ExperimentResult> {
    run_many(&all_ids(), scale).expect("registry ids are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique() {
        let mut ids = all_ids();
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n);
        assert!(n >= 14, "all paper artifacts plus ablations registered");
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run("fig99", Scale::Quick).is_none());
    }
}
