//! Sharded fleet scale-out: the fleet experiment's storm scenario pushed
//! to derivative-cloud scale — at `Full`, 40 AZ-group shards × 125
//! customers × 200 VMs = 1,000,000 nested VMs — over the deterministic
//! sharded engine ([`spotcheck_core::shardsim`]).
//!
//! Each shard owns one controller + platform over its own m3.medium spot
//! market; zone-level price storms are *uncorrelated across zones* (the
//! premise SpotCheck's multi-market pools rely on), so each shard's storm
//! window is staggered a few hours from its neighbors'. Shards gossip
//! their aggregates (free-slot index, migration load) to a coordinator
//! through the Lamport-ordered cross-shard message layer and hear back
//! fleet-wide advisories.
//!
//! The logical shard set is fixed by the scale, so the rendered table is
//! byte-identical at any `--shards`/`--threads` setting (pinned by
//! `crates/bench/tests/determinism.rs`); only wall-clock changes, and that
//! lands in `BENCH_RESULTS.json`.

use spotcheck_cloudsim::cloud::CloudConfig;
use spotcheck_cloudsim::faults::FaultPlan;
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::shardsim::{FleetScript, FleetShardSpec, ShardedFleetSim};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use super::Scale;
use crate::table::{f, TextTable};

/// Cross-shard latency: the engine's conservative lookahead, and the
/// one-way delay of every gossip leg.
const CROSS_SHARD_LATENCY: SimDuration = SimDuration::from_secs(60);

/// Gossip cadence per shard.
const GOSSIP_PERIOD: SimDuration = SimDuration::from_hours(6);

/// Sharded fleet sizing for one scale.
struct ShardedPlan {
    shards: u16,
    customers_per_shard: usize,
    vms_per_customer: usize,
    horizon: SimDuration,
    churn_at: SimTime,
    /// Storm start in shard 0's zone; later zones stagger by
    /// `storm_stagger` each (zone spikes are uncorrelated).
    storm_at: SimTime,
    storm_stagger: SimDuration,
}

impl ShardedPlan {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            // 40 shards x 125 customers x 200 VMs = 1,000,000 nested VMs.
            // 200 initial + ~10 churn replacements per customer stays
            // under each customer's 254-host /24 subnet.
            Scale::Full => ShardedPlan {
                shards: 40,
                customers_per_shard: 125,
                vms_per_customer: 200,
                horizon: SimDuration::from_days(183),
                churn_at: SimTime::ZERO + SimDuration::from_days(60),
                storm_at: SimTime::ZERO + SimDuration::from_days(91),
                storm_stagger: SimDuration::from_hours(3),
            },
            // 4 shards x 5 customers x 100 VMs = 2,000 VMs over two weeks.
            Scale::Quick => ShardedPlan {
                shards: 4,
                customers_per_shard: 5,
                vms_per_customer: 100,
                horizon: SimDuration::from_days(14),
                churn_at: SimTime::ZERO + SimDuration::from_days(5),
                storm_at: SimTime::ZERO + SimDuration::from_days(7),
                storm_stagger: SimDuration::from_hours(6),
            },
        }
    }

    /// Reduced-scale sizing for the `fleet_scaling` sweep: 8 shards so
    /// every swept worker count in {1, 2, 4, 8} divides the topology
    /// evenly, small enough that four back-to-back runs stay cheap.
    fn scaling(scale: Scale) -> Self {
        match scale {
            // 8 shards x 25 customers x 100 VMs = 20,000 nested VMs.
            Scale::Full => ShardedPlan {
                shards: 8,
                customers_per_shard: 25,
                vms_per_customer: 100,
                horizon: SimDuration::from_days(28),
                churn_at: SimTime::ZERO + SimDuration::from_days(10),
                storm_at: SimTime::ZERO + SimDuration::from_days(14),
                storm_stagger: SimDuration::from_hours(3),
            },
            // 8 shards x 2 customers x 25 VMs = 400 VMs over one week.
            Scale::Quick => ShardedPlan {
                shards: 8,
                customers_per_shard: 2,
                vms_per_customer: 25,
                horizon: SimDuration::from_days(7),
                churn_at: SimTime::ZERO + SimDuration::from_days(2),
                storm_at: SimTime::ZERO + SimDuration::from_days(3),
                storm_stagger: SimDuration::from_hours(6),
            },
        }
    }

    fn fleet_size(&self) -> usize {
        self.shards as usize * self.customers_per_shard * self.vms_per_customer
    }
}

/// Builds one shard's m3.medium trace: an hourly random walk below the
/// on-demand bid with one storm window far above it — the same engineered
/// shape as the `fleet` experiment, but per-zone seeded and per-zone
/// staggered.
fn zone_storm_trace(zone: &str, plan: &ShardedPlan, shard: u16) -> PriceTrace {
    const BASE: f64 = 0.014;
    const ON_DEMAND: f64 = 0.070;
    const STORM_PRICE: f64 = 0.900;
    let storm_at = plan.storm_at + plan.storm_stagger * shard as u64;
    let storm_len = SimDuration::from_hours(2);
    let mut rng = SimRng::seed(0xF1EE7).fork_named(zone);
    let mut points: Vec<(SimTime, f64)> = Vec::new();
    let mut price = BASE;
    let hours = plan.horizon.as_micros() / 3_600_000_000;
    for h in 0..hours {
        let t = SimTime::from_secs(h * 3600);
        if t >= storm_at && t < storm_at + storm_len {
            if points.last().map(|&(_, p)| p) != Some(STORM_PRICE) {
                points.push((t, STORM_PRICE));
            }
            continue;
        }
        // +-0.002/hr drift, clamped into [0.010, 0.020].
        let step = (rng.gen_range(0, 9) as f64 - 4.0) * 5e-4;
        price = (price + step).clamp(0.010, 0.020);
        points.push((t, price));
    }
    PriceTrace::new(
        MarketId::new("m3.medium", zone),
        ON_DEMAND,
        StepSeries::from_points(points),
    )
}

/// Zone name of one shard (`az00`, `az01`, ...).
fn zone_name(shard: u16) -> String {
    format!("az{shard:02}")
}

/// Builds the full sharded fleet for a scale.
pub(crate) fn build(scale: Scale) -> ShardedFleetSim {
    build_plan(&ShardedPlan::for_scale(scale))
}

/// Builds a sharded fleet for an explicit sizing plan.
fn build_plan(plan: &ShardedPlan) -> ShardedFleetSim {
    let root = SimRng::seed(0x5A4D_F1EE7);
    let specs: Vec<FleetShardSpec> = (0..plan.shards)
        .map(|s| {
            let zone = zone_name(s);
            // Per-shard RNG streams: controller, platform, and fault plan
            // each fork off the shard's named stream, so a shard's draw
            // sequence is independent of every other shard's.
            let mut shard_rng = root.fork_named(&zone);
            let config_seed = shard_rng.next_u64();
            let cloud_seed = shard_rng.next_u64();
            let fault_seed = shard_rng.next_u64();
            // A light per-shard fault plan (transient API errors only,
            // rate drawn from the shard's own RNG stream): scheduled chaos
            // like crashes/storms is exercised by the failure-injection
            // suites; here it would swamp the engineered price storm the
            // experiment is about.
            let faults = FaultPlan::none()
                .with_transient_errors(0.001 + (fault_seed % 997) as f64 * 1e-6);
            FleetShardSpec {
                traces: vec![zone_storm_trace(&zone, plan, s)],
                config: SpotCheckConfig {
                    zone: zone.clone(),
                    mapping: MappingPolicy::OneM,
                    mechanism: MechanismKind::SpotCheckLazy,
                    seed: config_seed,
                    ..SpotCheckConfig::default()
                },
                cloud: CloudConfig {
                    seed: cloud_seed,
                    faults,
                    ..CloudConfig::default()
                },
                script: FleetScript {
                    customers: plan.customers_per_shard,
                    vms_per_customer: plan.vms_per_customer,
                    ramp_gap: SimDuration::from_secs(300),
                    churn_at: Some(plan.churn_at),
                    churn_every: 20,
                    churn_replace_delay: SimDuration::from_hours(1),
                    workload: WorkloadKind::TpcW,
                },
            }
        })
        .collect();
    ShardedFleetSim::new(specs, CROSS_SHARD_LATENCY, GOSSIP_PERIOD)
}

/// Runs the sharded fleet experiment.
pub fn run(scale: Scale) -> String {
    let plan = ShardedPlan::for_scale(scale);
    let mut sim = build(scale);
    let horizon = SimTime::ZERO + plan.horizon;
    sim.run_until(horizon);

    // Aggregate per-shard outcomes. Counts sum; the rate/cost metrics are
    // plain means (every shard carries the same VM population).
    let mut revocations = 0u64;
    let mut migrations = 0u64;
    let mut returns = 0u64;
    let mut rerepl = 0u64;
    let mut lost = 0u64;
    let mut churned = 0usize;
    let mut unavail = 0.0f64;
    let mut degr = 0.0f64;
    let mut cost = 0.0f64;
    let mut advisories_min = u64::MAX;
    for shard in sim.shards() {
        let avail = shard.controller().availability_report(horizon);
        let c = shard.controller().cost_report(horizon);
        let counters = shard.controller().journal().counters();
        revocations += avail.revocations;
        migrations += avail.migrations;
        returns += counters.returns_completed;
        rerepl += counters.rereplications_completed;
        lost += counters.vms_lost;
        churned += shard.churned_vms();
        unavail += avail.unavailability;
        degr += avail.degradation;
        cost += c.cost_per_vm_hr;
        advisories_min = advisories_min.min(shard.advisories_seen());
    }
    let n = sim.shard_count() as f64;

    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["nested VMs".into(), plan.fleet_size().to_string()]);
    t.row(vec!["shards (AZ groups)".into(), plan.shards.to_string()]);
    t.row(vec![
        "customers".into(),
        (plan.shards as usize * plan.customers_per_shard).to_string(),
    ]);
    t.row(vec![
        "horizon (days)".into(),
        format!("{:.0}", plan.horizon.as_secs_f64() / 86_400.0),
    ]);
    t.row(vec!["churned + replaced".into(), churned.to_string()]);
    t.row(vec!["revocations".into(), revocations.to_string()]);
    t.row(vec!["migrations".into(), migrations.to_string()]);
    t.row(vec!["returns completed".into(), returns.to_string()]);
    t.row(vec!["re-replications".into(), rerepl.to_string()]);
    t.row(vec!["VMs lost".into(), lost.to_string()]);
    t.row(vec!["unavailability".into(), f(unavail / n, 6)]);
    t.row(vec!["degradation".into(), f(degr / n, 6)]);
    t.row(vec!["cost ($/VM-hr)".into(), f(cost / n, 5)]);
    t.row(vec![
        "cross-shard messages".into(),
        sim.messages_delivered().to_string(),
    ]);
    t.row(vec![
        "advisories/shard (min)".into(),
        advisories_min.to_string(),
    ]);
    t.row(vec![
        "peak fleet free-slot hosts".into(),
        sim.shard(0).peak_fleet_free_slots().to_string(),
    ]);
    t.row(vec![
        "journal entries dropped".into(),
        sim.journal_dropped().to_string(),
    ]);
    // Epoch accounting. The grid total (executed + fast-forwarded) is
    // invariant across every execution-mode knob, so it participates in
    // the byte-identity contract like any other outcome. The split and
    // the worker count legitimately vary with run configuration, so those
    // rows carry the "(run config)" marker the determinism suite and the
    // CI matrix mask — the same treatment wall-clock already gets.
    t.row(vec![
        "epoch windows (grid)".into(),
        sim.epoch_windows().to_string(),
    ]);
    // Fixed-width split so the value column's width (and with it the
    // table's separator rule) stays constant whatever the run config —
    // only this row's own bytes vary, and it is masked.
    t.row(vec![
        "epochs executed / fast-forwarded (run config)".into(),
        format!("{:>8} / {:>8}", sim.epochs(), sim.epochs_fast_forwarded()),
    ]);
    t.row(vec![
        "pool workers (run config)".into(),
        sim.window_workers().to_string(),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\n{} controller shards (one per AZ group) run barrier-free between epoch\n\
         boundaries and exchange Lamport-ordered gossip; zone storms are staggered\n\
         so revocation waves hit one shard at a time. The table is byte-identical\n\
         at any --shards/--threads setting (\"(run config)\" rows aside); wall-clock\n\
         lands in BENCH_RESULTS.json\n",
        plan.shards,
    ));
    out
}

/// One worker-count leg of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// `--shards` worker count this leg ran with.
    pub workers: usize,
    /// Wall-clock of `run_until` alone (no build time).
    pub wall: std::time::Duration,
    /// Simulation events the run processed.
    pub events: u64,
}

impl ScalingRow {
    /// Events per wall-clock second (0 for a zero-length run).
    pub fn events_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// The measured `fleet_scaling` sweep: one reduced-scale `fleet_sharded`
/// run per worker count, plus the host parallelism that contextualizes
/// the numbers (on a 1-core runner every leg time-slices one CPU, so
/// speedups near 1.0x are the honest expectation).
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// `std::thread::available_parallelism()` on the machine that ran.
    pub host_parallelism: usize,
    /// Logical shard count of the swept scenario.
    pub shards: u16,
    /// Nested VMs in the swept scenario.
    pub nested_vms: usize,
    /// Scenario horizon in days.
    pub horizon_days: f64,
    /// One row per swept worker count, ascending.
    pub rows: Vec<ScalingRow>,
}

impl ScalingReport {
    /// Speedup of `row` relative to the 1-worker leg.
    pub fn speedup(&self, row: &ScalingRow) -> f64 {
        let base = self.rows[0].wall.as_secs_f64();
        let this = row.wall.as_secs_f64();
        if this > 0.0 {
            base / this
        } else {
            0.0
        }
    }

    /// Renders the human-readable scaling table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&["workers", "wall (s)", "events", "events/s", "speedup"]);
        for row in &self.rows {
            t.row(vec![
                row.workers.to_string(),
                f(row.wall.as_secs_f64(), 3),
                row.events.to_string(),
                format!("{:.3e}", row.events_per_sec()),
                format!("{:.2}x", self.speedup(row)),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\nfleet_sharded at reduced scale ({} shards, {} nested VMs, {:.0} days),\n\
             one run per worker count; detected host parallelism: {}.\n",
            self.shards, self.nested_vms, self.horizon_days, self.host_parallelism,
        ));
        out
    }
}

/// Runs the `fleet_scaling` sweep: the reduced-scale scenario once per
/// worker count in {1, 2, 4, 8}, asserting along the way that every leg
/// produced the identical simulation (steps, messages, grid windows,
/// journal truncation) — the determinism contract, revalidated in the
/// same process that measures it.
pub fn run_scaling(scale: Scale) -> ScalingReport {
    let plan = ShardedPlan::scaling(scale);
    let prev_workers = spotcheck_simcore::shard::configured_shard_workers();
    let horizon = SimTime::ZERO + plan.horizon;
    let mut rows = Vec::new();
    let mut signature: Option<(u64, u64, u64, u64)> = None;
    for workers in [1usize, 2, 4, 8] {
        spotcheck_simcore::shard::set_shard_workers(workers);
        let mut sim = build_plan(&plan);
        let start = std::time::Instant::now();
        let ((), events) = spotcheck_simcore::metrics::measure(|| sim.run_until(horizon));
        let wall = start.elapsed();
        let sig = (
            sim.total_steps(),
            sim.messages_delivered(),
            sim.epoch_windows(),
            sim.journal_dropped(),
        );
        match &signature {
            None => signature = Some(sig),
            Some(expect) => assert_eq!(
                *expect, sig,
                "scaling sweep diverged at {workers} workers: output must be \
                 byte-identical at every worker count"
            ),
        }
        rows.push(ScalingRow {
            workers,
            wall,
            events,
        });
    }
    spotcheck_simcore::shard::set_shard_workers(prev_workers);
    ScalingReport {
        host_parallelism: spotcheck_simcore::parallel::default_threads(),
        shards: plan.shards,
        nested_vms: plan.fleet_size(),
        horizon_days: plan.horizon.as_secs_f64() / 86_400.0,
        rows,
    }
}
