//! Sharded fleet scale-out: the fleet experiment's storm scenario pushed
//! to derivative-cloud scale — at `Full`, 40 AZ-group shards × 125
//! customers × 200 VMs = 1,000,000 nested VMs — over the deterministic
//! sharded engine ([`spotcheck_core::shardsim`]).
//!
//! Each shard owns one controller + platform over its own m3.medium spot
//! market; zone-level price storms are *uncorrelated across zones* (the
//! premise SpotCheck's multi-market pools rely on), so each shard's storm
//! window is staggered a few hours from its neighbors'. Shards gossip
//! their aggregates (free-slot index, migration load) to a coordinator
//! through the Lamport-ordered cross-shard message layer and hear back
//! fleet-wide advisories.
//!
//! The logical shard set is fixed by the scale, so the rendered table is
//! byte-identical at any `--shards`/`--threads` setting (pinned by
//! `crates/bench/tests/determinism.rs`); only wall-clock changes, and that
//! lands in `BENCH_RESULTS.json`.

use spotcheck_cloudsim::cloud::CloudConfig;
use spotcheck_cloudsim::faults::FaultPlan;
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::shardsim::{FleetScript, FleetShardSpec, ShardedFleetSim};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use super::Scale;
use crate::table::{f, TextTable};

/// Cross-shard latency: the engine's conservative lookahead, and the
/// one-way delay of every gossip leg.
const CROSS_SHARD_LATENCY: SimDuration = SimDuration::from_secs(60);

/// Gossip cadence per shard.
const GOSSIP_PERIOD: SimDuration = SimDuration::from_hours(6);

/// Sharded fleet sizing for one scale.
struct ShardedPlan {
    shards: u16,
    customers_per_shard: usize,
    vms_per_customer: usize,
    horizon: SimDuration,
    churn_at: SimTime,
    /// Storm start in shard 0's zone; later zones stagger by
    /// `storm_stagger` each (zone spikes are uncorrelated).
    storm_at: SimTime,
    storm_stagger: SimDuration,
}

impl ShardedPlan {
    fn for_scale(scale: Scale) -> Self {
        match scale {
            // 40 shards x 125 customers x 200 VMs = 1,000,000 nested VMs.
            // 200 initial + ~10 churn replacements per customer stays
            // under each customer's 254-host /24 subnet.
            Scale::Full => ShardedPlan {
                shards: 40,
                customers_per_shard: 125,
                vms_per_customer: 200,
                horizon: SimDuration::from_days(183),
                churn_at: SimTime::ZERO + SimDuration::from_days(60),
                storm_at: SimTime::ZERO + SimDuration::from_days(91),
                storm_stagger: SimDuration::from_hours(3),
            },
            // 4 shards x 5 customers x 100 VMs = 2,000 VMs over two weeks.
            Scale::Quick => ShardedPlan {
                shards: 4,
                customers_per_shard: 5,
                vms_per_customer: 100,
                horizon: SimDuration::from_days(14),
                churn_at: SimTime::ZERO + SimDuration::from_days(5),
                storm_at: SimTime::ZERO + SimDuration::from_days(7),
                storm_stagger: SimDuration::from_hours(6),
            },
        }
    }

    fn fleet_size(&self) -> usize {
        self.shards as usize * self.customers_per_shard * self.vms_per_customer
    }
}

/// Builds one shard's m3.medium trace: an hourly random walk below the
/// on-demand bid with one storm window far above it — the same engineered
/// shape as the `fleet` experiment, but per-zone seeded and per-zone
/// staggered.
fn zone_storm_trace(zone: &str, plan: &ShardedPlan, shard: u16) -> PriceTrace {
    const BASE: f64 = 0.014;
    const ON_DEMAND: f64 = 0.070;
    const STORM_PRICE: f64 = 0.900;
    let storm_at = plan.storm_at + plan.storm_stagger * shard as u64;
    let storm_len = SimDuration::from_hours(2);
    let mut rng = SimRng::seed(0xF1EE7).fork_named(zone);
    let mut points: Vec<(SimTime, f64)> = Vec::new();
    let mut price = BASE;
    let hours = plan.horizon.as_micros() / 3_600_000_000;
    for h in 0..hours {
        let t = SimTime::from_secs(h * 3600);
        if t >= storm_at && t < storm_at + storm_len {
            if points.last().map(|&(_, p)| p) != Some(STORM_PRICE) {
                points.push((t, STORM_PRICE));
            }
            continue;
        }
        // +-0.002/hr drift, clamped into [0.010, 0.020].
        let step = (rng.gen_range(0, 9) as f64 - 4.0) * 5e-4;
        price = (price + step).clamp(0.010, 0.020);
        points.push((t, price));
    }
    PriceTrace::new(
        MarketId::new("m3.medium", zone),
        ON_DEMAND,
        StepSeries::from_points(points),
    )
}

/// Zone name of one shard (`az00`, `az01`, ...).
fn zone_name(shard: u16) -> String {
    format!("az{shard:02}")
}

/// Builds the full sharded fleet for a scale.
pub(crate) fn build(scale: Scale) -> ShardedFleetSim {
    let plan = ShardedPlan::for_scale(scale);
    let root = SimRng::seed(0x5A4D_F1EE7);
    let specs: Vec<FleetShardSpec> = (0..plan.shards)
        .map(|s| {
            let zone = zone_name(s);
            // Per-shard RNG streams: controller, platform, and fault plan
            // each fork off the shard's named stream, so a shard's draw
            // sequence is independent of every other shard's.
            let mut shard_rng = root.fork_named(&zone);
            let config_seed = shard_rng.next_u64();
            let cloud_seed = shard_rng.next_u64();
            let fault_seed = shard_rng.next_u64();
            // A light per-shard fault plan (transient API errors only,
            // rate drawn from the shard's own RNG stream): scheduled chaos
            // like crashes/storms is exercised by the failure-injection
            // suites; here it would swamp the engineered price storm the
            // experiment is about.
            let faults = FaultPlan::none()
                .with_transient_errors(0.001 + (fault_seed % 997) as f64 * 1e-6);
            FleetShardSpec {
                traces: vec![zone_storm_trace(&zone, &plan, s)],
                config: SpotCheckConfig {
                    zone: zone.clone(),
                    mapping: MappingPolicy::OneM,
                    mechanism: MechanismKind::SpotCheckLazy,
                    seed: config_seed,
                    ..SpotCheckConfig::default()
                },
                cloud: CloudConfig {
                    seed: cloud_seed,
                    faults,
                    ..CloudConfig::default()
                },
                script: FleetScript {
                    customers: plan.customers_per_shard,
                    vms_per_customer: plan.vms_per_customer,
                    ramp_gap: SimDuration::from_secs(300),
                    churn_at: Some(plan.churn_at),
                    churn_every: 20,
                    churn_replace_delay: SimDuration::from_hours(1),
                    workload: WorkloadKind::TpcW,
                },
            }
        })
        .collect();
    ShardedFleetSim::new(specs, CROSS_SHARD_LATENCY, GOSSIP_PERIOD)
}

/// Runs the sharded fleet experiment.
pub fn run(scale: Scale) -> String {
    let plan = ShardedPlan::for_scale(scale);
    let mut sim = build(scale);
    let horizon = SimTime::ZERO + plan.horizon;
    sim.run_until(horizon);

    // Aggregate per-shard outcomes. Counts sum; the rate/cost metrics are
    // plain means (every shard carries the same VM population).
    let mut revocations = 0u64;
    let mut migrations = 0u64;
    let mut returns = 0u64;
    let mut rerepl = 0u64;
    let mut lost = 0u64;
    let mut churned = 0usize;
    let mut unavail = 0.0f64;
    let mut degr = 0.0f64;
    let mut cost = 0.0f64;
    let mut advisories_min = u64::MAX;
    for shard in sim.shards() {
        let avail = shard.controller().availability_report(horizon);
        let c = shard.controller().cost_report(horizon);
        let counters = shard.controller().journal().counters();
        revocations += avail.revocations as u64;
        migrations += avail.migrations as u64;
        returns += counters.returns_completed;
        rerepl += counters.rereplications_completed;
        lost += counters.vms_lost;
        churned += shard.churned_vms();
        unavail += avail.unavailability;
        degr += avail.degradation;
        cost += c.cost_per_vm_hr;
        advisories_min = advisories_min.min(shard.advisories_seen());
    }
    let n = sim.shard_count() as f64;

    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["nested VMs".into(), plan.fleet_size().to_string()]);
    t.row(vec!["shards (AZ groups)".into(), plan.shards.to_string()]);
    t.row(vec![
        "customers".into(),
        (plan.shards as usize * plan.customers_per_shard).to_string(),
    ]);
    t.row(vec![
        "horizon (days)".into(),
        format!("{:.0}", plan.horizon.as_secs_f64() / 86_400.0),
    ]);
    t.row(vec!["churned + replaced".into(), churned.to_string()]);
    t.row(vec!["revocations".into(), revocations.to_string()]);
    t.row(vec!["migrations".into(), migrations.to_string()]);
    t.row(vec!["returns completed".into(), returns.to_string()]);
    t.row(vec!["re-replications".into(), rerepl.to_string()]);
    t.row(vec!["VMs lost".into(), lost.to_string()]);
    t.row(vec!["unavailability".into(), f(unavail / n, 6)]);
    t.row(vec!["degradation".into(), f(degr / n, 6)]);
    t.row(vec!["cost ($/VM-hr)".into(), f(cost / n, 5)]);
    t.row(vec![
        "cross-shard messages".into(),
        sim.messages_delivered().to_string(),
    ]);
    t.row(vec![
        "advisories/shard (min)".into(),
        advisories_min.to_string(),
    ]);
    t.row(vec![
        "peak fleet free-slot hosts".into(),
        sim.shard(0).peak_fleet_free_slots().to_string(),
    ]);
    t.row(vec![
        "journal entries dropped".into(),
        sim.journal_dropped().to_string(),
    ]);
    let mut out = t.render();
    out.push_str(&format!(
        "\n{} controller shards (one per AZ group) run barrier-free between epoch\n\
         boundaries and exchange Lamport-ordered gossip; zone storms are staggered\n\
         so revocation waves hit one shard at a time. The table is byte-identical\n\
         at any --shards/--threads setting; wall-clock lands in BENCH_RESULTS.json\n",
        plan.shards,
    ));
    out
}
