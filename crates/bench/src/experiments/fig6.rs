//! Figure 6: spot-market price dynamics.
//!
//! (a) availability CDF vs bid/on-demand ratio per m3 type — long tail,
//!     knee slightly below the on-demand price;
//! (b) CDF of hourly percentage price jumps — spanning orders of magnitude;
//! (c) pairwise price correlation across 18 availability zones — near zero;
//! (d) pairwise price correlation across 15 instance types — near zero.

use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::generator::generate_fleet;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::profiles::{catalog, profile_for, standard_zones};
use spotcheck_spotmarket::stats::{
    availability_curve, correlation_matrix, hourly_jumps, off_diagonal_summary,
};
use spotcheck_spotmarket::trace::PriceTrace;

use super::Scale;
use crate::table::{f, TextTable};

const M3: [&str; 4] = ["m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge"];

fn m3_traces(scale: Scale, seed: u64) -> Vec<PriceTrace> {
    let markets: Vec<_> = M3
        .iter()
        .map(|n| {
            (
                MarketId::new(*n, "us-east-1a"),
                profile_for(n).expect("m3 profile").profile,
            )
        })
        .collect();
    generate_fleet(
        &markets,
        SimDuration::from_days(scale.horizon_days()),
        &SimRng::seed(seed),
    )
}

/// Figure 6a.
pub fn run_a(scale: Scale) -> String {
    let traces = m3_traces(scale, 0x6A);
    let horizon = SimTime::from_days(scale.horizon_days());
    let ratios: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    let mut header = vec!["bid/od ratio".to_string()];
    header.extend(M3.iter().map(|s| s.to_string()));
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&hdr);
    let curves: Vec<_> = traces
        .iter()
        .map(|tr| availability_curve(tr, &ratios, SimTime::ZERO, horizon))
        .collect();
    for (i, r) in ratios.iter().enumerate() {
        let mut row = vec![f(*r, 2)];
        for c in &curves {
            row.push(f(c[i].availability, 4));
        }
        t.row(row);
    }
    let mut out = t.render();
    let at_od: Vec<String> = curves
        .iter()
        .zip(M3)
        .map(|(c, n)| format!("{n}={:.4}", c.last().unwrap().availability))
        .collect();
    out.push_str(&format!(
        "\navailability at bid=od: {}\npaper shape: ~0.90-0.999 at bid=od with the knee slightly below 1.0; m3.medium most available\n",
        at_od.join(" ")
    ));
    out
}

/// Figure 6b.
pub fn run_b(scale: Scale) -> String {
    let traces = m3_traces(scale, 0x6B);
    let horizon = SimTime::from_days(scale.horizon_days());
    let mut inc = Vec::new();
    let mut dec = Vec::new();
    for tr in &traces {
        let j = hourly_jumps(tr, SimTime::ZERO, horizon);
        inc.extend(j.increases_pct);
        dec.extend(j.decreases_pct);
    }
    let inc_cdf = spotcheck_simcore::stats::Ecdf::new(inc.clone());
    let dec_cdf = spotcheck_simcore::stats::Ecdf::new(dec.clone());
    let mut t = TextTable::new(&["jump (%)", "CDF increasing", "CDF decreasing"]);
    for exp in 0..=6 {
        let x = 10f64.powi(exp);
        t.row(vec![
            format!("1e{exp}"),
            f(inc_cdf.eval(x), 4),
            f(dec_cdf.eval(x), 4),
        ]);
    }
    let mut out = t.render();
    let max_inc = inc.iter().copied().fold(0.0, f64::max);
    out.push_str(&format!(
        "\n{} increases, {} decreases; max increase {:.0}%\npaper shape: jumps span orders of magnitude (log x-axis to 1e6)\n",
        inc.len(),
        dec.len(),
        max_inc
    ));
    out
}

fn correlation_report(traces: &[PriceTrace], horizon: SimTime, label: &str) -> String {
    let refs: Vec<&PriceTrace> = traces.iter().collect();
    let m = correlation_matrix(&refs, SimTime::ZERO, horizon, SimDuration::from_hours(1));
    let (mean, max_abs) = off_diagonal_summary(&m);
    let mut out = String::new();
    out.push_str(&format!(
        "{} x {} correlation matrix over {label}\n",
        m.len(),
        m.len()
    ));
    // Print a compact matrix (2-decimal cells).
    for row in &m {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:+.2}")).collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out.push_str(&format!(
        "\noff-diagonal: mean={mean:+.4}, max|r|={max_abs:.4}\npaper shape: heatmap near zero off the diagonal (uncorrelated markets)\n"
    ));
    out
}

/// Figure 6c.
pub fn run_c(scale: Scale) -> String {
    let zones = standard_zones();
    let profile = profile_for("m3.large").expect("profile").profile;
    let markets: Vec<_> = zones
        .iter()
        .map(|z| (MarketId::new("m3.large", *z), profile.clone()))
        .collect();
    let traces = generate_fleet(
        &markets,
        SimDuration::from_days(scale.horizon_days()),
        &SimRng::seed(0x6C),
    );
    correlation_report(
        &traces,
        SimTime::from_days(scale.horizon_days()),
        "18 availability zones (m3.large)",
    )
}

/// Figure 6d.
pub fn run_d(scale: Scale) -> String {
    let markets: Vec<_> = catalog()
        .into_iter()
        .map(|e| {
            (
                MarketId::new(e.type_name.as_str(), "us-east-1a"),
                e.profile,
            )
        })
        .collect();
    let traces = generate_fleet(
        &markets,
        SimDuration::from_days(scale.horizon_days()),
        &SimRng::seed(0x6D),
    );
    correlation_report(
        &traces,
        SimTime::from_days(scale.horizon_days()),
        "15 instance types (us-east-1a)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6a_availability_ordering() {
        let out = run_a(Scale::Quick);
        assert!(out.contains("m3.medium"));
        // m3.medium must be the most available at bid=od.
        let line = out
            .lines()
            .find(|l| l.starts_with("availability at bid=od"))
            .unwrap();
        let get = |name: &str| -> f64 {
            line.split(&format!("{name}="))
                .nth(1)
                .unwrap()
                .split_whitespace()
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let medium = get("m3.medium");
        assert!(medium > 0.995, "m3.medium availability {medium}");
        for other in ["m3.large", "m3.xlarge", "m3.2xlarge"] {
            let a = get(other);
            assert!((0.85..1.0).contains(&a), "{other} availability {a}");
            assert!(medium >= a);
        }
    }

    #[test]
    fn fig6b_has_large_jumps() {
        let out = run_b(Scale::Quick);
        let max_line = out.lines().rev().nth(1).unwrap();
        let max_pct: f64 = max_line
            .split("max increase ")
            .nth(1)
            .unwrap()
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!(max_pct > 1_000.0, "max jump {max_pct}% should exceed 1000%");
    }

    #[test]
    fn fig6c_markets_uncorrelated() {
        let out = run_c(Scale::Quick);
        let line = out
            .lines()
            .find(|l| l.starts_with("off-diagonal"))
            .unwrap();
        let max_abs: f64 = line
            .split("max|r|=")
            .nth(1)
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(max_abs < 0.5, "max |r| {max_abs}");
    }

    #[test]
    fn fig6d_fifteen_types() {
        let out = run_d(Scale::Quick);
        assert!(out.contains("15 x 15 correlation matrix"));
    }
}
