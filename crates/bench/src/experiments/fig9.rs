//! Figure 9: TPC-W response time while 0/1/5/10 VMs lazily restore from
//! the same backup server. One restoration roughly doubles response time
//! (29 ms -> 60 ms); additional concurrent restorations barely matter
//! because the backup partitions bandwidth per VM.

use spotcheck_workloads::{ApplicationModel, PerfContext, TpcW};

use super::Scale;
use crate::table::{f, TextTable};

const CONCURRENCY: [usize; 4] = [0, 1, 5, 10];

/// The response-time series `(concurrent, ms)`.
pub fn series() -> Vec<(usize, f64)> {
    let t = TpcW::default();
    CONCURRENCY
        .iter()
        .map(|&n| {
            let ms = if n == 0 {
                t.perf(&PerfContext::baseline())
            } else {
                t.perf(&PerfContext::lazy_restoring(n))
            };
            (n, ms)
        })
        .collect()
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> String {
    let mut t = TextTable::new(&["concurrent lazy restores", "TPC-W response time (ms)"]);
    for (n, ms) in series() {
        t.row(vec![n.to_string(), f(ms, 1)]);
    }
    let mut out = t.render();
    out.push_str(
        "\npaper shape: 29 ms at rest, ~60 ms during a restoration, additional concurrent\n\
         restorations do not significantly degrade further (per-VM bandwidth partitioning)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure9_anchor_points() {
        let s = series();
        assert_eq!(s[0].1, 29.0);
        assert_eq!(s[1].1, 60.0);
        // 5 and 10 concurrent: small additional increase only.
        assert!(s[2].1 < 66.0);
        assert!(s[3].1 < 70.0);
        assert!(s[3].1 >= s[2].1);
    }
}
