//! Figure 1: the `m1.small` spot price over ~2.5 days, showing spikes far
//! above the $0.06 on-demand price ("the y-axis is denominated in dollars
//! and not cents").

use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::generator::TraceGenerator;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::profiles::profile_for;

use super::Scale;
use crate::table::{f, TextTable};

/// Runs the experiment.
pub fn run(_scale: Scale) -> String {
    // Figure 1 spans ~2.5 days regardless of scale. Search seeds for a
    // window containing a headline-worthy spike (the paper chose such a
    // window too); the generator's statistics make one common.
    let entry = profile_for("m1.small").expect("m1.small profile");
    let horizon = SimDuration::from_hours(62);
    let mut best = None;
    for seed in 0..40u64 {
        let mut rng = SimRng::seed(0xF161).fork(seed);
        let trace = TraceGenerator::new(entry.profile.clone()).generate(
            MarketId::new("m1.small", "us-east-1a"),
            horizon,
            &mut rng,
        );
        let max = trace
            .prices
            .points()
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        if best
            .as_ref()
            .map(|(m, _)| max > *m)
            .unwrap_or(true)
        {
            best = Some((max, trace));
        }
        if max > 3.0 {
            break;
        }
    }
    let (max, trace) = best.expect("at least one trace generated");

    let mut out = String::new();
    out.push_str(&format!(
        "on-demand price: ${:.2}/hr; trace max: ${max:.4}/hr ({:.0}x on-demand)\n\n",
        trace.on_demand_price,
        max / trace.on_demand_price
    ));
    let mut t = TextTable::new(&["hour", "spot $/hr", "ratio to od"]);
    let series = trace.resample(SimTime::ZERO, SimTime::ZERO + horizon, SimDuration::from_hours(1));
    for (h, p) in series.iter().enumerate() {
        t.row(vec![
            h.to_string(),
            f(*p, 4),
            f(p / trace.on_demand_price, 2),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(&format!(
        "\npaper shape: price mostly far below $0.06, spiking to dollars; reproduced max {:.0}x od\n",
        max / trace.on_demand_price
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_contains_a_dramatic_spike() {
        let out = run(Scale::Quick);
        // The figure's point: spikes rise well above the on-demand price.
        assert!(out.contains("on-demand price: $0.06"));
        let max_line = out.lines().next().unwrap();
        let ratio: f64 = max_line
            .split('(')
            .nth(1)
            .and_then(|s| s.split('x').next())
            .and_then(|s| s.trim().parse().ok())
            .unwrap();
        assert!(ratio > 5.0, "spike ratio {ratio} should be dramatic");
    }
}
