//! Table 2: the customer-to-pool mapping policies — definitions plus the
//! concrete VM-distribution weights each policy computes over the
//! generated six-month history (the paper's table lists only the
//! definitions; the weights make the two probabilistic policies concrete).

use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::standard_traces;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::trace::PriceTrace;

use super::Scale;
use crate::table::{f, TextTable};

fn description(p: MappingPolicy) -> &'static str {
    match p {
        MappingPolicy::OneM => "VMs mapped to a single m3.medium pool",
        MappingPolicy::TwoML => "VMs equally distributed between m3.medium and m3.large",
        MappingPolicy::FourEd => "VMs equally distributed across the four m3 types",
        MappingPolicy::FourCost => {
            "VMs distributed by past prices (cheaper pool => higher probability)"
        }
        MappingPolicy::FourSt => {
            "VMs distributed by past migrations (fewer => higher probability)"
        }
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let horizon = SimDuration::from_days(scale.horizon_days());
    let traces = standard_traces("us-east-1a", horizon, 0x7AB2);
    let end = SimTime::ZERO + horizon;
    let mut t = TextTable::new(&[
        "Policy",
        "Description",
        "weights (medium/large/xlarge/2xlarge)",
    ]);
    for p in MappingPolicy::ALL {
        let markets = p.markets("us-east-1a");
        let refs: Vec<&PriceTrace> = markets
            .iter()
            .map(|m| traces.iter().find(|t| &t.market == m).expect("trace"))
            .collect();
        let weights = p.weights(&refs, SimTime::ZERO, end);
        let mut cells: Vec<String> = weights.iter().map(|w| f(*w, 3)).collect();
        while cells.len() < 4 {
            cells.push("-".to_string());
        }
        t.row(vec![
            p.label().to_string(),
            description(p).to_string(),
            cells.join(" / "),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_all_policies() {
        let out = run(Scale::Quick);
        for p in MappingPolicy::ALL {
            assert!(out.contains(p.label()), "{} missing", p.label());
        }
        assert!(out.contains("0.500 / 0.500"));
    }
}
