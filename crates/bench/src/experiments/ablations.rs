//! Ablations of SpotCheck's design choices (the knobs DESIGN.md calls
//! out). These go beyond the paper's figures: each isolates one mechanism
//! or policy decision and quantifies what it buys.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_cloudsim::billing::{spot_cost, BillingMode};
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::standard_traces;
use spotcheck_migrate::bounded::{simulate_final_commit, BoundedTimeConfig, RampPolicy};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_migrate::restore::{simulate_concurrent_restores, ReadPath, RestoreMode};
use spotcheck_nestedvm::vm::NestedVmSpec;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::predictor::TrendPredictor;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use super::Scale;
use crate::table::{f, TextTable};

/// Ablation: the ramped final checkpoint vs Yank's single flush.
pub fn run_ramp(_scale: Scale) -> String {
    let dirty = WorkloadKind::TpcW.dirty_model();
    let spec = NestedVmSpec::medium();
    let mut t = TextTable::new(&[
        "stale state (MB)",
        "bw (MB/s)",
        "Yank downtime (s)",
        "SpotCheck downtime (s)",
        "improvement",
    ]);
    for (stale_mb, bw_mbps) in [(32.0, 16.0), (64.0, 32.0), (96.0, 32.0), (96.0, 8.0)] {
        let yank = simulate_final_commit(
            stale_mb * 1e6,
            &dirty,
            spec.pages(),
            bw_mbps * 1e6,
            &BoundedTimeConfig {
                ramp: RampPolicy::None,
                ..BoundedTimeConfig::default()
            },
        );
        let sc = simulate_final_commit(
            stale_mb * 1e6,
            &dirty,
            spec.pages(),
            bw_mbps * 1e6,
            &BoundedTimeConfig::default(),
        );
        t.row(vec![
            f(stale_mb, 0),
            f(bw_mbps, 0),
            f(yank.downtime.as_secs_f64(), 2),
            f(sc.downtime.as_secs_f64(), 2),
            format!(
                "{:.0}x",
                yank.downtime.as_secs_f64() / sc.downtime.as_secs_f64().max(1e-6)
            ),
        ]);
    }
    t.render()
}

/// Ablation: fadvise hints on concurrent lazy restores.
pub fn run_fadvise(_scale: Scale) -> String {
    let spec = NestedVmSpec::medium();
    let cfg = BackupServerConfig::default();
    let mut t = TextTable::new(&[
        "concurrent restores",
        "no fadvise (s)",
        "fadvise (s)",
        "speedup",
    ]);
    for n in [1usize, 5, 10, 20] {
        let d = |path| {
            simulate_concurrent_restores(
                n,
                spec.mem_bytes,
                spec.skeleton_bytes(),
                RestoreMode::Lazy,
                path,
                &cfg,
                None,
            )
            .last()
            .map(|o| o.degraded.as_secs_f64())
            .unwrap_or(0.0)
        };
        let unopt = d(ReadPath::Unoptimized);
        let opt = d(ReadPath::Optimized);
        t.row(vec![
            n.to_string(),
            f(unopt, 1),
            f(opt, 1),
            format!("{:.1}x", unopt / opt),
        ]);
    }
    t.render()
}

/// Ablation: slicing arbitrage — expected per-slot price with and without
/// considering larger servers.
pub fn run_slicing(scale: Scale) -> String {
    let horizon = SimDuration::from_days(scale.horizon_days());
    let traces = standard_traces("us-east-1a", horizon, 0xA5);
    let end = SimTime::ZERO + horizon;
    let slots = [1u32, 2, 4, 8];
    // Hourly resample of per-slot prices; the greedy policy takes the
    // running minimum across types.
    let series: Vec<Vec<f64>> = traces
        .iter()
        .zip(slots)
        .map(|(t, s)| {
            t.resample(SimTime::ZERO, end, SimDuration::from_hours(1))
                .into_iter()
                .map(|p| p / s as f64)
                .collect()
        })
        .collect();
    let n = series[0].len();
    let medium_only: f64 = series[0].iter().sum::<f64>() / n as f64;
    let greedy: f64 = (0..n)
        .map(|i| series.iter().map(|s| s[i]).fold(f64::INFINITY, f64::min))
        .sum::<f64>()
        / n as f64;
    let frac_larger = (0..n)
        .filter(|&i| series[1..].iter().any(|s| s[i] < series[0][i]))
        .count() as f64
        / n as f64;
    let mut t = TextTable::new(&["strategy", "mean per-slot $/hr"]);
    t.row(vec!["medium only".into(), f(medium_only, 5)]);
    t.row(vec!["greedy w/ slicing".into(), f(greedy, 5)]);
    let mut out = t.render();
    out.push_str(&format!(
        "\nlarger type cheaper per slot {:.0}% of hours; greedy saves {:.1}%\n\
         (paper §4.2: larger servers are often cheaper per unit for substantial periods)\n",
        frac_larger * 100.0,
        (1.0 - greedy / medium_only) * 100.0
    ));
    out
}

/// Ablation: hot spares vs acquiring the destination on demand.
pub fn run_spares(_scale: Scale) -> String {
    let run = |spares: usize| -> f64 {
        let s = StepSeries::from_points(vec![
            (SimTime::ZERO, 0.014),
            (SimTime::from_secs(3_600), 0.90),
            (SimTime::from_secs(90_000), 0.014),
        ]);
        let trace = PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.070, s);
        let cfg = SpotCheckConfig {
            zone: "us-east-1a".to_string(),
            mapping: MappingPolicy::OneM,
            mechanism: MechanismKind::SpotCheckLazy,
            hot_spares: spares,
            ..SpotCheckConfig::default()
        };
        let mut sim = SpotCheckSim::new(vec![trace], cfg);
        let cust = sim.create_customer();
        let _vm = sim.request_server(cust, WorkloadKind::TpcW);
        sim.run_until(SimTime::from_secs(7_200));
        sim.availability_report().total_downtime.as_secs_f64()
    };
    let without = run(0);
    let with = run(1);
    let mut t = TextTable::new(&["configuration", "downtime per revocation (s)"]);
    t.row(vec!["no spares (lazy on-demand boot)".into(), f(without, 1)]);
    t.row(vec!["1 hot spare".into(), f(with, 1)]);
    let mut out = t.render();
    out.push_str(
        "\n(§4.3: without spares the ~60 s on-demand boot overlaps the warning; the commit\n\
         waits for the destination, so spares mainly derisk storms and stockouts)\n",
    );
    out
}

/// The canonical revocation-spike run used for journal inspection: one VM
/// provisioned on spot, a price spike at t=3600 s forces a bounded-time
/// migration to on-demand, and the run stops at t=7200 s.
fn revocation_spike_sim() -> SpotCheckSim {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(3_600), 0.90),
        (SimTime::from_secs(90_000), 0.014),
    ]);
    let trace = PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.070, s);
    let cfg = SpotCheckConfig {
        zone: "us-east-1a".to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(vec![trace], cfg);
    let cust = sim.create_customer();
    let _vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(7_200));
    sim
}

/// Journal: the controller's structured event counters under a revocation
/// spike. Where the other experiments report externally visible outcomes
/// (downtime, cost), this one reports the controller's own account of what
/// it did — every effect, state transition, and retry, by kind.
pub fn run_journal(_scale: Scale) -> String {
    let sim = revocation_spike_sim();
    let j = sim.journal();
    let mut t = TextTable::new(&["counter", "count"]);
    for (name, v) in j.counters().pairs() {
        if v > 0 {
            t.row(vec![name.into(), v.to_string()]);
        }
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\n{} entries stored, {} dropped; zero-valued counters omitted\n\
         (the full typed record stream dumps as JSON via `experiments --journal PATH`)\n",
        j.len(),
        j.dropped()
    ));
    out
}

/// JSON dump of the canonical revocation-spike run's journal (backs the
/// experiments binary's `--journal PATH` flag and the CI schema check).
pub fn journal_json() -> String {
    revocation_spike_sim().journal().to_json()
}

/// Ablation: bid level vs revocations and cost (m3.large market).
pub fn run_bid(scale: Scale) -> String {
    let horizon = SimDuration::from_days(scale.horizon_days());
    let traces = standard_traces("us-east-1a", horizon, 0xB1D);
    let large = &traces[1];
    let end = SimTime::ZERO + horizon;
    let days = horizon.as_secs_f64() / 86_400.0;
    let mut t = TextTable::new(&[
        "bid (x od)",
        "revocations/day",
        "mean $/hr while held",
        "availability at bid",
    ]);
    for k in [1.0, 1.5, 2.0, 5.0, 10.0] {
        let bid = k * large.on_demand_price;
        let revs = large.revocations_at_bid(bid, SimTime::ZERO, end);
        let cost = large.mean_capped_price(bid, SimTime::ZERO, end).unwrap();
        let avail = large.availability_at_bid(bid, SimTime::ZERO, end).unwrap();
        t.row(vec![
            f(k, 1),
            f(revs as f64 / days, 2),
            f(cost, 4),
            f(avail, 5),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\n(§4.3 / Fig 6a: the availability-bid curve flattens quickly past the on-demand\n\
         price — higher bids buy few extra nines but expose above-od prices)\n",
    );
    out
}

/// Ablation: the bounded-time migration bound vs checkpoint overhead.
pub fn run_bound(_scale: Scale) -> String {
    let dirty = WorkloadKind::TpcW.dirty_model();
    let spec = NestedVmSpec::medium();
    let mut t = TextTable::new(&[
        "bound (s)",
        "steady epoch (s)",
        "stream (MB/s)",
        "commit duration (s)",
        "within bound",
    ]);
    for bound_secs in [10u64, 30, 60, 120] {
        let cfg = BoundedTimeConfig {
            bound: SimDuration::from_secs(bound_secs),
            ..BoundedTimeConfig::default()
        };
        let epoch = cfg.steady_epoch(&dirty, spec.pages());
        let stream = cfg.steady_stream_bps(&dirty, spec.pages());
        let commit = simulate_final_commit(
            cfg.residue_budget_bytes(),
            &dirty,
            spec.pages(),
            32e6,
            &cfg,
        );
        t.row(vec![
            bound_secs.to_string(),
            f(epoch.as_secs_f64(), 2),
            f(stream / 1e6, 2),
            f(commit.commit_duration.as_secs_f64(), 2),
            commit.within_bound.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\n(the paper uses a conservative 30 s bound against EC2's 120 s warning; longer\n\
         bounds permit longer epochs, hence lower checkpoint overhead)\n",
    );
    out
}

/// Ablation: billing mode (continuous vs 2014 hourly rules).
pub fn run_billing(scale: Scale) -> String {
    let horizon = SimDuration::from_days(scale.horizon_days().min(30));
    let traces = standard_traces("us-east-1a", horizon, 0xB111);
    let medium = &traces[0];
    let end = SimTime::ZERO + horizon;
    let hours = horizon.as_hours_f64();
    let mut t = TextTable::new(&["mode", "total $ (one m3.medium held)", "$/hr"]);
    for (label, mode) in [
        ("continuous", BillingMode::Continuous),
        ("hourly-2014", BillingMode::HourlySpot2014),
    ] {
        let cost = spot_cost(
            medium,
            SimTime::ZERO,
            end,
            medium.on_demand_price,
            false,
            mode,
        );
        t.row(vec![label.into(), f(cost, 3), f(cost / hours, 5)]);
    }
    let mut out = t.render();
    out.push_str("\n(hour-start pricing and revoked-hour refunds shift costs only slightly)\n");
    out
}

/// Ablation: the §3.2 predictive approach — how reliably can rising
/// prices foretell revocations, and at what false-alarm cost?
pub fn run_predictor(scale: Scale) -> String {
    let horizon = SimDuration::from_days(scale.horizon_days());
    let traces = standard_traces("us-east-1a", horizon, 0xFEED);
    let large = &traces[1];
    let end = SimTime::ZERO + horizon;
    let lead = SimDuration::from_secs(120);
    let mut t = TextTable::new(&[
        "alarm ratio",
        "rise factor",
        "recall",
        "precision",
        "hits",
        "misses",
        "false alarms",
    ]);
    for (ratio, rise) in [(0.8, 1.5), (0.5, 1.25), (0.3, 1.1), (0.2, 1.02)] {
        let p = TrendPredictor {
            alarm_ratio: ratio,
            rise_factor: rise,
            ..TrendPredictor::default()
        };
        let s = p.evaluate(large, large.on_demand_price, lead, SimTime::ZERO, end);
        t.row(vec![
            f(ratio, 2),
            f(rise, 2),
            f(s.recall(), 3),
            f(s.precision(), 3),
            s.hits.to_string(),
            s.misses.to_string(),
            s.false_alarms.to_string(),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "\n(§3.2: proactive-only protection risks losing state unless revocations are\n\
         predicted with high confidence; sharp price cliffs are inherently unpredictable,\n\
         which is why SpotCheck keeps the bounded-time checkpointing safety net)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_always_improves() {
        let out = run_ramp(Scale::Quick);
        for line in out.lines().skip(2) {
            if let Some(imp) = line.split_whitespace().last() {
                if let Some(x) = imp.strip_suffix('x') {
                    let v: f64 = x.parse().unwrap();
                    assert!(v >= 1.0, "ramp must not hurt: {line}");
                }
            }
        }
    }

    #[test]
    fn bid_ablation_monotone() {
        let out = run_bid(Scale::Quick);
        // Revocations/day must decrease with the bid.
        let revs: Vec<f64> = out
            .lines()
            .skip(2)
            .filter_map(|l| {
                let mut it = l.split_whitespace();
                let _k = it.next()?;
                it.next()?.parse().ok()
            })
            .collect();
        assert!(revs.len() >= 5);
        for w in revs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "revocations must fall with bid: {revs:?}");
        }
    }

    #[test]
    fn slicing_saves_money() {
        let out = run_slicing(Scale::Quick);
        let saving: f64 = out
            .lines()
            .find(|l| l.contains("greedy saves"))
            .and_then(|l| l.split("greedy saves ").nth(1))
            .and_then(|s| s.split('%').next())
            .and_then(|s| s.parse().ok())
            .unwrap();
        assert!(saving >= 0.0);
    }

    #[test]
    fn bound_ablation_tradeoff() {
        let out = run_bound(Scale::Quick);
        // All commits must fit their bound.
        assert!(!out.contains("false"), "{out}");
    }

    #[test]
    fn remaining_ablations_render() {
        assert!(!run_fadvise(Scale::Quick).is_empty());
        assert!(!run_billing(Scale::Quick).is_empty());
    }
}
