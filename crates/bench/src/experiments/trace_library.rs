//! Trace library: bulk-archive ingestion throughput and the Table-2
//! policy grid over the loaded library.
//!
//! Generates a fleet of markets with the calibrated generator (Full:
//! 12 instance types × 18 zones × 183 days — a multi-million-point
//! archive), writes it out as CSV, then measures four loading paths over
//! the same bytes:
//!
//! 1. the pre-archive reference parser (per-line `split_once` +
//!    `f64::parse`, serial — kept verbatim in this module as the
//!    baseline),
//! 2. the byte-scanner ingest ([`TraceLibrary::ingest_csv_dir`],
//!    parallel),
//! 3. the `.stl` columnar write, and
//! 4. the `.stl` load ([`TraceLibrary::read_stl`]).
//!
//! Every loaded library is checked point-exact against the generated
//! fleet, so the throughput numbers are earned by equivalent work. Each
//! path is timed in steady state: an untimed warm-up run (result
//! dropped) precedes the measured run, so every path sees a warm page
//! cache and allocator instead of paying first-touch page faults — on a
//! multi-hundred-megabyte archive those faults otherwise dominate the
//! fastest path and say nothing about the loaders themselves. The
//! deterministic half of the output — market/point/byte counts and the
//! policy grid run over the *loaded* library — participates in the
//! byte-identity contract; wall-clock-dependent rows carry the
//! "(run config)" marker the determinism suite masks.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::{run_policy, PolicyExperiment};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::archive::TraceLibrary;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::profiles::{catalog, standard_zones, MarketProfile};
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_spotmarket::generator::generate_fleet;

use super::Scale;
use crate::table::{f, TextTable};

/// Measured archive-loading throughput, deposited by the last
/// `trace_library` run for the CLI's JSON report.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Markets in the archive.
    pub markets: usize,
    /// Total price change points.
    pub points: u64,
    /// Total CSV bytes on disk.
    pub csv_bytes: u64,
    /// `.stl` archive size in bytes.
    pub stl_bytes: u64,
    /// Wall-clock of the pre-archive reference parser (serial).
    pub csv_reference_secs: f64,
    /// Wall-clock of the parallel byte-scanner ingest.
    pub csv_ingest_secs: f64,
    /// Wall-clock of the `.stl` write.
    pub stl_write_secs: f64,
    /// Wall-clock of the `.stl` load.
    pub stl_load_secs: f64,
}

impl IngestReport {
    /// How many times faster the `.stl` load is than the pre-archive CSV
    /// parser on the same data.
    pub fn stl_speedup(&self) -> f64 {
        self.csv_reference_secs / self.stl_load_secs.max(1e-9)
    }
}

static LAST: Mutex<Option<IngestReport>> = Mutex::new(None);
static RUN_SEQ: AtomicUsize = AtomicUsize::new(0);

/// The ingest measurements of the most recent run, if any.
pub fn last_report() -> Option<IngestReport> {
    LAST.lock().expect("ingest report lock").clone()
}

/// The historical `PriceTrace::from_csv` loop, pre byte-scanner: one
/// `str` line at a time, `split_once(',')`, two `f64::parse` calls, and
/// per-point `StepSeries::push` growth. Kept as the measured baseline the
/// acceptance criterion compares against (also exercised by the
/// `hotpaths` bench for a per-trace comparison).
pub fn reference_from_csv(text: &str) -> Result<PriceTrace, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty trace file")?;
    let header = header
        .strip_prefix("# ")
        .ok_or("missing `# market=... od=...` header")?;
    let mut market = None;
    let mut od = None;
    for field in header.split_whitespace() {
        if let Some(m) = field.strip_prefix("market=") {
            let (ty, zone) = m.split_once('@').ok_or("market field must be `type@zone`")?;
            market = Some(MarketId::new(ty, zone));
        } else if let Some(p) = field.strip_prefix("od=") {
            od = Some(p.parse::<f64>().map_err(|e| format!("bad od: {e}"))?);
        }
    }
    let market = market.ok_or("header missing market=")?;
    let od = od.ok_or("header missing od=")?;
    let mut series = StepSeries::new();
    for (i, line) in lines.enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (t, p) = line
            .split_once(',')
            .ok_or_else(|| format!("line {}: expected `time,price`", i + 2))?;
        let t: f64 = t.parse().map_err(|e| format!("line {}: bad time: {e}", i + 2))?;
        let p: f64 = p.parse().map_err(|e| format!("line {}: bad price: {e}", i + 2))?;
        if !t.is_finite() || t < 0.0 {
            return Err(format!("line {}: time must be non-negative", i + 2));
        }
        series.push(SimTime::from_micros((t * 1e6).round() as u64), p);
    }
    Ok(PriceTrace::new(market, od, series))
}

/// Times `f` in steady state: one untimed warm-up run whose result is
/// dropped (handing its pages back to the allocator), then the measured
/// run, whose result is returned. Applied identically to every loading
/// path so the comparison stays apples-to-apples.
fn timed<T>(mut f: impl FnMut() -> T) -> (T, f64) {
    drop(f());
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64())
}

fn assert_same(label: &str, a: &[PriceTrace], b: &[PriceTrace]) {
    assert_eq!(a.len(), b.len(), "{label}: market count differs");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.market, y.market, "{label}: market order differs");
        assert_eq!(
            x.on_demand_price.to_bits(),
            y.on_demand_price.to_bits(),
            "{label}: od differs for {}",
            x.market
        );
        assert_eq!(
            x.prices.points(),
            y.prices.points(),
            "{label}: points differ for {}",
            x.market
        );
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> String {
    let horizon = SimDuration::from_days(scale.horizon_days());
    let (n_types, n_zones) = match scale {
        // 12 types × 18 zones = 216 markets — the "~200-market,
        // multi-million-point" archive of ROADMAP item 4(a).
        Scale::Full => (12, 18),
        Scale::Quick => (4, 3),
    };
    let types = catalog();
    let zones = standard_zones();
    let mut markets: Vec<(MarketId, MarketProfile)> = Vec::new();
    for zone in zones.iter().take(n_zones) {
        for entry in types.iter().take(n_types) {
            markets.push((
                MarketId::new(entry.type_name.as_str(), *zone),
                entry.profile.clone(),
            ));
        }
    }
    let root = SimRng::seed(0x57AC);
    let mut traces = generate_fleet(&markets, horizon, &root);
    // Ingestion orders the library by file name; put the generated fleet
    // in the same order so the equality checks can compare lists.
    traces.sort_by_key(|t| format!("{}.csv", t.market));
    let points: u64 = traces.iter().map(|t| t.prices.len() as u64).sum();

    // Stage the fleet as CSV files, exactly as `tracegen generate` would.
    let dir = std::env::temp_dir().join(format!(
        "spotcheck-trace-library-{}-{}",
        std::process::id(),
        RUN_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create staging dir");
    let mut csv_bytes = 0u64;
    let mut files: Vec<PathBuf> = Vec::with_capacity(traces.len());
    for t in &traces {
        let path = dir.join(format!("{}.csv", t.market));
        let csv = t.to_csv();
        csv_bytes += csv.len() as u64;
        std::fs::write(&path, csv).expect("write staged csv");
        files.push(path);
    }
    files.sort();

    // 1. Reference: the pre-archive per-line parser, serial.
    let (reference, csv_reference_secs) = timed(|| {
        files
            .iter()
            .map(|p| {
                let text = std::fs::read_to_string(p).expect("read staged csv");
                reference_from_csv(&text).expect("reference parse")
            })
            .collect::<Vec<PriceTrace>>()
    });

    // 2. Byte-scanner ingest, fanned out per file.
    let (lib, csv_ingest_secs) =
        timed(|| TraceLibrary::ingest_csv_dir(&dir).expect("ingest"));
    assert_same("scanner vs reference", lib.traces(), &reference);
    assert_same("scanner vs generated", lib.traces(), &traces);
    drop(reference);

    // 3 + 4. Columnar archive write, then load.
    let stl_path = dir.join("library.stl");
    let ((), stl_write_secs) = timed(|| lib.write_stl(&stl_path).expect("write stl"));
    let stl_bytes = std::fs::metadata(&stl_path).expect("stat stl").len();
    let (loaded, stl_load_secs) =
        timed(|| TraceLibrary::read_stl(&stl_path).expect("load stl"));
    assert_same("stl vs generated", loaded.traces(), &traces);
    drop(traces);
    drop(lib);
    std::fs::remove_dir_all(&dir).expect("remove staging dir");

    let report = IngestReport {
        markets: loaded.len(),
        points,
        csv_bytes,
        stl_bytes,
        csv_reference_secs,
        csv_ingest_secs,
        stl_write_secs,
        stl_load_secs,
    };

    let mut t = TextTable::new(&["metric", "value"]);
    t.row(vec!["markets".into(), report.markets.to_string()]);
    t.row(vec!["price points".into(), report.points.to_string()]);
    t.row(vec!["csv bytes".into(), report.csv_bytes.to_string()]);
    t.row(vec![".stl bytes".into(), report.stl_bytes.to_string()]);
    t.row(vec![
        ".stl/csv size ratio".into(),
        f(report.stl_bytes as f64 / report.csv_bytes.max(1) as f64, 3),
    ]);
    // Throughput rows vary with machine and load, like wall-clock, so
    // they carry the "(run config)" marker and fixed-width cells (the
    // value column's width — and with it the table's separator rule —
    // must not depend on the measurements).
    let rate = |secs: f64| -> String {
        format!(
            "{:>9}s {:>12} pts/s {:>9} MB/s",
            f(secs, 3),
            format!("{:.0}", report.points as f64 / secs.max(1e-9)),
            format!("{:.1}", report.csv_bytes as f64 / 1e6 / secs.max(1e-9)),
        )
    };
    t.row(vec!["reference CSV parse (run config)".into(), rate(csv_reference_secs)]);
    t.row(vec!["parallel CSV ingest (run config)".into(), rate(csv_ingest_secs)]);
    t.row(vec![".stl write (run config)".into(), rate(stl_write_secs)]);
    t.row(vec![".stl load (run config)".into(), rate(stl_load_secs)]);
    t.row(vec![
        ".stl load speedup vs reference (run config)".into(),
        format!("{:>8}x", f(report.stl_speedup(), 1)),
    ]);
    let mut out = t.render();

    *LAST.lock().expect("ingest report lock") = Some(report.clone());

    // The Table-2 policy grid, driven by the *loaded* library: proof the
    // archive round-trip feeds the simulator unchanged (these rows are
    // byte-identical to a run over the generated traces, and participate
    // in the determinism contract).
    let zone0 = zones[0];
    let zone_traces: Vec<PriceTrace> = loaded
        .traces()
        .iter()
        .filter(|t| t.market.zone.as_str() == zone0)
        .cloned()
        .collect();
    let mut grid = TextTable::new(&["policy", "$/VM-hr", "avail (%)", "revs/VM"]);
    for mapping in MappingPolicy::ALL {
        let mut exp = PolicyExperiment::paper_default(mapping, MechanismKind::SpotCheckLazy, 0);
        exp.horizon = horizon;
        let r = run_policy(&zone_traces, &exp);
        grid.row(vec![
            mapping.label().to_string(),
            f(r.avg_cost_per_vm_hr, 4),
            f(r.availability_pct, 4),
            f(r.revocations_per_vm, 1),
        ]);
    }
    out.push('\n');
    out.push_str(&grid.render());
    out.push_str(&format!(
        "\n{} markets ({} types x {} zones, {} days) staged as CSV, ingested with\n\
         the byte scanner, packed to .stl, and reloaded; every path verified\n\
         point-exact against the generated fleet. The policy grid above ran on\n\
         the reloaded library ({zone0}). Throughput lands in BENCH_RESULTS.json.\n",
        report.markets,
        n_types,
        n_zones,
        scale.horizon_days(),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_and_verifies() {
        let out = run(Scale::Quick);
        assert!(out.contains("price points"), "{out}");
        assert!(out.contains(".stl load (run config)"), "{out}");
        for p in MappingPolicy::ALL {
            assert!(out.contains(p.label()), "{} missing:\n{out}", p.label());
        }
        let report = last_report().expect("report deposited");
        assert_eq!(report.markets, 12);
        assert!(report.points > 10_000, "points={}", report.points);
        assert!(report.stl_bytes < report.csv_bytes);
    }
}
