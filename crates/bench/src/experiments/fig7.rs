//! Figure 7: nested-VM performance as the number of VMs continuously
//! checkpointing to one backup server grows (0, 1, 10, 20, 30, 40, 50).
//!
//! The "0" column is no checkpointing; "1" is checkpointing to a dedicated
//! backup. TPC-W pays ~15% response time for turning checkpointing on;
//! SPECjbb pays nothing. Past the saturation knee (~35-40 VMs) both
//! degrade by roughly 30%.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_migrate::bounded::BoundedTimeConfig;
use spotcheck_migrate::scenario::checkpoint_contention;
use spotcheck_nestedvm::memory::PAGE_SIZE;
use spotcheck_simcore::time::SimDuration;
use spotcheck_workloads::{PerfContext, WorkloadKind};

use super::Scale;
use crate::table::{f, TextTable};

const COUNTS: [usize; 7] = [0, 1, 10, 20, 30, 40, 50];

/// Per-VM steady checkpoint stream demand of a workload, bytes/sec.
pub fn stream_demand_bps(kind: WorkloadKind) -> f64 {
    let dirty = kind.dirty_model();
    let epoch = BoundedTimeConfig::default()
        .steady_epoch(&dirty, spotcheck_nestedvm::vm::NestedVmSpec::medium().pages());
    dirty.distinct_dirty_rate(
        spotcheck_nestedvm::vm::NestedVmSpec::medium().pages(),
        epoch.min(SimDuration::from_secs(1)),
    ) * PAGE_SIZE as f64
}

/// Computes a workload's Figure 7 series: `(n_vms, metric)`.
pub fn series(kind: WorkloadKind, cfg: &BackupServerConfig) -> Vec<(usize, f64)> {
    let model = kind.model();
    let demand = stream_demand_bps(kind);
    COUNTS
        .iter()
        .map(|&n| {
            let metric = if n == 0 {
                model.perf(&PerfContext::baseline())
            } else {
                let demands = vec![demand; n];
                let contention = checkpoint_contention(&demands, cfg, None);
                model.perf(&PerfContext::protected_with_health(contention.health[0]))
            };
            (n, metric)
        })
        .collect()
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> String {
    let cfg = BackupServerConfig::default();
    let jbb = series(WorkloadKind::SpecJbb, &cfg);
    let tpcw = series(WorkloadKind::TpcW, &cfg);
    let mut t = TextTable::new(&[
        "VMs/backup",
        "SpecJBB throughput (bops)",
        "TPC-W response time (ms)",
    ]);
    for i in 0..COUNTS.len() {
        t.row(vec![
            COUNTS[i].to_string(),
            f(jbb[i].1, 0),
            f(tpcw[i].1, 1),
        ]);
    }
    let mut out = t.render();
    out.push_str(&format!(
        "\nstream demand: TPC-W {:.2} MB/s, SpecJBB {:.2} MB/s per VM; backup NIC {:.0} MB/s\n",
        stream_demand_bps(WorkloadKind::TpcW) / 1e6,
        stream_demand_bps(WorkloadKind::SpecJbb) / 1e6,
        cfg.nic_bps / 1e6
    ));
    out.push_str(
        "paper shape: TPC-W 29 ms baseline, +15% with checkpointing, ~+30% more at 50 VMs;\n\
         SpecJBB ~12000 bops flat until ~35-40 VMs, then down ~25-30%\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_shape_holds() {
        let cfg = BackupServerConfig::default();
        let tpcw = series(WorkloadKind::TpcW, &cfg);
        let jbb = series(WorkloadKind::SpecJbb, &cfg);
        // Baselines.
        assert_eq!(tpcw[0].1, 29.0);
        assert_eq!(jbb[0].1, 12_000.0);
        // Turning checkpointing on: +15% TPC-W, no SpecJBB change.
        assert!((tpcw[1].1 / 29.0 - 1.15).abs() < 0.01);
        assert_eq!(jbb[1].1, 12_000.0);
        // Flat through 30 VMs.
        assert!((tpcw[3].1 - tpcw[1].1).abs() < 0.5);
        assert!((jbb[4].1 - jbb[1].1).abs() < 1.0, "flat at 30 VMs");
        // Degradation at 50 VMs: both significant.
        let tpcw_inc = tpcw[6].1 / tpcw[1].1 - 1.0;
        let jbb_drop = 1.0 - jbb[6].1 / jbb[1].1;
        assert!(
            (0.15..0.60).contains(&tpcw_inc),
            "TPC-W increase at 50 VMs: {tpcw_inc}"
        );
        assert!(
            (0.15..0.45).contains(&jbb_drop),
            "SpecJBB drop at 50 VMs: {jbb_drop}"
        );
    }

    #[test]
    fn knee_is_past_30_vms() {
        let cfg = BackupServerConfig::default();
        for kind in WorkloadKind::ALL {
            let s = series(kind, &cfg);
            // At 30 VMs, performance is still at the protected baseline.
            let p30 = s[4].1;
            let p1 = s[1].1;
            assert!(
                (p30 - p1).abs() / p1 < 0.02,
                "{kind:?} already degraded at 30 VMs"
            );
            // At 50, it is not.
            let p50 = s[6].1;
            assert!((p50 - p1).abs() / p1 > 0.10, "{kind:?} flat at 50 VMs");
        }
    }

    #[test]
    fn output_mentions_demands() {
        let out = run(Scale::Quick);
        assert!(out.contains("stream demand"));
        assert!(out.contains("VMs/backup"));
    }
}
