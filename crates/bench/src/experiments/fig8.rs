//! Figure 8: the cost of restoring 1/5/10 nested VMs concurrently from one
//! backup server.
//!
//! (a) *downtime* under stop-and-copy full restores — unoptimized (Yank)
//!     vs SpotCheck's optimized read path;
//! (b) *degraded-performance duration* under lazy restores — where the
//!     unoptimized random-read path collapses and the fadvise optimization
//!     recovers it.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_migrate::restore::{simulate_concurrent_restores, ReadPath, RestoreMode};
use spotcheck_nestedvm::vm::NestedVmSpec;

use super::Scale;
use crate::table::{f, TextTable};

const CONCURRENCY: [usize; 3] = [1, 5, 10];

/// Worst-case (last-finisher) duration for a restore scenario, seconds.
pub fn duration_secs(n: usize, mode: RestoreMode, path: ReadPath) -> f64 {
    let spec = NestedVmSpec::medium();
    let outs = simulate_concurrent_restores(
        n,
        spec.mem_bytes,
        spec.skeleton_bytes(),
        mode,
        path,
        &BackupServerConfig::default(),
        None,
    );
    outs.iter()
        .map(|o| o.downtime.max(o.degraded).as_secs_f64())
        .fold(0.0, f64::max)
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> String {
    let mut out = String::new();
    out.push_str("(a) downtime with Full restore (s)\n");
    let mut t = TextTable::new(&["concurrent VMs", "Unoptimized Full", "SpotCheck Full"]);
    for n in CONCURRENCY {
        t.row(vec![
            n.to_string(),
            f(duration_secs(n, RestoreMode::Full, ReadPath::Unoptimized), 1),
            f(duration_secs(n, RestoreMode::Full, ReadPath::Optimized), 1),
        ]);
    }
    out.push_str(&t.render());

    out.push_str("\n(b) degraded-performance duration with Lazy restore (s)\n");
    let mut t = TextTable::new(&["concurrent VMs", "Unoptimized Lazy", "SpotCheck Lazy"]);
    for n in CONCURRENCY {
        t.row(vec![
            n.to_string(),
            f(duration_secs(n, RestoreMode::Lazy, ReadPath::Unoptimized), 1),
            f(duration_secs(n, RestoreMode::Lazy, ReadPath::Optimized), 1),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\npaper shape: (a) up to ~400-500 s unoptimized at 10 concurrent, optimized lower;\n\
         (b) unoptimized lazy at 10 concurrent ~1000-1200 s (random reads), SpotCheck's fadvise\n\
         optimization cuts it several-fold; lazy downtime itself is <0.1 s (skeleton only)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimized_beats_unoptimized_everywhere() {
        for n in CONCURRENCY {
            for mode in [RestoreMode::Full, RestoreMode::Lazy] {
                let u = duration_secs(n, mode, ReadPath::Unoptimized);
                let o = duration_secs(n, mode, ReadPath::Optimized);
                assert!(o < u, "n={n} {mode:?}: opt {o} !< unopt {u}");
            }
        }
    }

    #[test]
    fn ten_concurrent_magnitudes_match_paper() {
        // (a): hundreds of seconds for unoptimized full restores.
        let full_u = duration_secs(10, RestoreMode::Full, ReadPath::Unoptimized);
        assert!((250.0..700.0).contains(&full_u), "full unopt {full_u}");
        // (b): ~1000 s for the unoptimized lazy path.
        let lazy_u = duration_secs(10, RestoreMode::Lazy, ReadPath::Unoptimized);
        assert!((700.0..1400.0).contains(&lazy_u), "lazy unopt {lazy_u}");
        // The fadvise optimization cuts the lazy path at least 3x.
        let lazy_o = duration_secs(10, RestoreMode::Lazy, ReadPath::Optimized);
        assert!(lazy_u / lazy_o > 3.0, "{lazy_u} / {lazy_o}");
    }

    #[test]
    fn durations_scale_with_concurrency() {
        let one = duration_secs(1, RestoreMode::Full, ReadPath::Optimized);
        let ten = duration_secs(10, RestoreMode::Full, ReadPath::Optimized);
        assert!((8.0..12.0).contains(&(ten / one)), "{ten}/{one}");
    }
}
