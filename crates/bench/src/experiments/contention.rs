//! Contention storm: sweeps revocation-storm size × defense
//! configuration over the fleet-wide bandwidth model and reports the
//! 30 s-guarantee violation rate.
//!
//! The scenario is the oversubscribed backup tier the paper's §5
//! guarantee implicitly assumes away: every VM's checkpoint stream,
//! final commit, re-replication, and lazy restore shares one 1 Gbit AZ
//! aggregate in the max-min-fair fluid model, so a storm's concurrent
//! ~99 MB residue flushes genuinely stretch each other past the bound.
//! Three configurations per storm size:
//!
//! - **off** — the closed-form model (contention disabled): the
//!   guarantee is unbreakable by construction, which is exactly the
//!   blind spot this experiment exists to show.
//! - **undefended** — the fluid model with every defense off: the
//!   violation rate is the honest damage of the storm.
//! - **defended** — EDF admission + load-aware spreading + the
//!   Yank-style pause-and-flush fallback: violations drop, and what
//!   cannot be saved is journaled and charged to availability instead
//!   of silently succeeding.
//!
//! Every run is seeded and closed-form deterministic, so the rendered
//! table is byte-identical across `--threads` and `--queue` backends.

use spotcheck_core::config::{ContentionConfig, SpotCheckConfig};
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use super::Scale;
use crate::table::{f, TextTable};

/// The oversubscribed AZ aggregate (bytes/sec) every flow crosses: one
/// 1 Gbit uplink for the whole backup tier.
const AZ_UPLINK_BPS: f64 = 125e6;

/// When the storm's price spike revokes the entire fleet.
const STORM_AT_SECS: u64 = 3_600;

/// Simulation horizon: long enough for every storm casualty to restore,
/// re-protect, and return to spot.
const HORIZON_SECS: u64 = 10_800;

/// One spot market whose price spikes far above the on-demand bid at
/// [`STORM_AT_SECS`], revoking every spot host at once.
fn storm_trace() -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(STORM_AT_SECS), 0.90),
        (SimTime::from_secs(90_000), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.070, s)
}

/// Runs one storm of `n` VMs under `contention` and returns the sim.
fn run_storm(n: usize, contention: ContentionConfig) -> SpotCheckSim {
    let cfg = SpotCheckConfig {
        zone: "us-east-1a".to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        contention,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(vec![storm_trace()], cfg);
    for _ in 0..n {
        let customer = sim.create_customer();
        sim.request_server(customer, WorkloadKind::TpcW);
    }
    sim.run_until(SimTime::from_secs(HORIZON_SECS));
    sim
}

/// The three defense configurations, each pinned to the oversubscribed
/// AZ uplink.
fn configurations() -> [(&'static str, ContentionConfig); 3] {
    let pin = |base: ContentionConfig| ContentionConfig {
        az_uplink_bps: AZ_UPLINK_BPS,
        ..base
    };
    [
        ("off", ContentionConfig::default()),
        ("undefended", pin(ContentionConfig::enabled_undefended())),
        ("defended", pin(ContentionConfig::enabled_defended())),
    ]
}

/// Runs the contention-storm sweep.
pub fn run(scale: Scale) -> String {
    let storm_sizes: &[usize] = match scale {
        Scale::Full => &[10, 25, 60, 150],
        Scale::Quick => &[10, 25, 60],
    };

    let mut t = TextTable::new(&[
        "storm",
        "defenses",
        "violations",
        "rate",
        "contention",
        "queue_wait",
        "residue_lost",
        "yanks",
        "queued",
        "avg queue (s)",
        "unavail",
    ]);
    for &n in storm_sizes {
        for (name, cc) in configurations() {
            let sim = run_storm(n, cc);
            let r = sim.violation_report();
            let avail = sim.availability_report();
            let avg_queue_s = if r.commits_queued > 0 {
                r.queue_wait_ms as f64 / 1000.0 / r.commits_queued as f64
            } else {
                0.0
            };
            t.row(vec![
                n.to_string(),
                name.into(),
                r.violations.to_string(),
                f(r.violation_rate(), 3),
                r.contention.to_string(),
                r.queue_wait.to_string(),
                r.residue_lost.to_string(),
                r.fallback_yanks.to_string(),
                r.commits_queued.to_string(),
                f(avg_queue_s, 1),
                f(avail.unavailability, 6),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "\nstorm size x defenses over a shared 1 Gbit AZ aggregate (fluid\n\
         max-min fairness): `off` is the closed-form model whose guarantee\n\
         cannot break; `undefended` shows the storm's honest violation rate;\n\
         `defended` adds EDF admission, load-aware spreading, and the\n\
         pause-and-flush fallback (yanks are journaled and charged to\n\
         availability, never silent)\n",
    );
    out
}
