//! Figures 10-12, Table 3, and the headline numbers: the six-month
//! trace-driven policy evaluation.
//!
//! Each cell runs the policy simulator (`spotcheck_core::sim`) over the
//! same generated six-month m3-family traces, exactly one run per
//! (mapping policy x mechanism) pair.

use std::sync::{Arc, OnceLock};

use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::{run_policy, standard_traces, PolicyExperiment, PolicyReport};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::SimDuration;
use spotcheck_spotmarket::trace::PriceTrace;

use super::Scale;
use crate::table::{f, sci, TextTable};

const SEED: u64 = 0x5EED_2015;

/// Returns (generating and caching on first use) the shared six-month
/// m3-family traces for a scale. The `Arc` lets every policy experiment —
/// and any caller running cells on worker threads — share one generated
/// copy instead of cloning per call.
pub fn traces(scale: Scale) -> Arc<[PriceTrace]> {
    static FULL: OnceLock<Arc<[PriceTrace]>> = OnceLock::new();
    static QUICK: OnceLock<Arc<[PriceTrace]>> = OnceLock::new();
    let cell = match scale {
        Scale::Full => &FULL,
        Scale::Quick => &QUICK,
    };
    cell.get_or_init(|| {
        standard_traces(
            "us-east-1a",
            SimDuration::from_days(scale.horizon_days()),
            SEED,
        )
        .into()
    })
    .clone()
}

/// The `(mapping, mechanism)` cells of the policy grid, in presentation
/// order (row-major over `MappingPolicy::ALL` x `MechanismKind::FIGURE_GRID`).
pub fn grid_cells() -> Vec<(MappingPolicy, MechanismKind)> {
    let mut cells = Vec::new();
    for mapping in MappingPolicy::ALL {
        for mechanism in MechanismKind::FIGURE_GRID {
            cells.push((mapping, mechanism));
        }
    }
    cells
}

/// Computes the full policy x mechanism grid over `ts` on up to `threads`
/// workers.
///
/// Every cell runs on its own RNG stream derived from `(SEED, cell index)`,
/// so the grid is a pure function of `(ts, scale)`: the worker count can
/// only change wall-clock time, never a single reported number. This is the
/// property the determinism tests pin down.
pub fn compute_grid(ts: &[PriceTrace], scale: Scale, threads: usize) -> Vec<PolicyReport> {
    let root = SimRng::seed(SEED);
    spotcheck_simcore::parallel::parallel_map_indexed(
        threads,
        grid_cells(),
        |cell_id, (mapping, mechanism)| {
            let cell_seed = root.fork(cell_id as u64).next_u64();
            let mut exp = PolicyExperiment::paper_default(mapping, mechanism, cell_seed);
            exp.horizon = SimDuration::from_days(scale.horizon_days());
            run_policy(ts, &exp)
        },
    )
}

/// Runs (and caches per scale) the full policy x mechanism grid, using the
/// process-wide configured worker count.
pub fn grid(scale: Scale) -> Arc<[PolicyReport]> {
    static FULL: OnceLock<Arc<[PolicyReport]>> = OnceLock::new();
    static QUICK: OnceLock<Arc<[PolicyReport]>> = OnceLock::new();
    let cell = match scale {
        Scale::Full => &FULL,
        Scale::Quick => &QUICK,
    };
    cell.get_or_init(|| {
        let ts = traces(scale);
        let threads = spotcheck_simcore::parallel::configured_threads();
        compute_grid(&ts, scale, threads).into()
    })
    .clone()
}

fn cell(grid: &[PolicyReport], mapping: MappingPolicy, mech: MechanismKind) -> &PolicyReport {
    grid.iter()
        .find(|r| r.mapping == mapping && r.mechanism == mech)
        .expect("grid covers all cells")
}

fn grid_table(scale: Scale, value: impl Fn(&PolicyReport) -> String, unit: &str) -> String {
    let g = grid(scale);
    let mut header = vec!["policy".to_string()];
    header.extend(MechanismKind::FIGURE_GRID.iter().map(|m| m.label().to_string()));
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&hdr);
    for mapping in MappingPolicy::ALL {
        let mut row = vec![mapping.label().to_string()];
        for mech in MechanismKind::FIGURE_GRID {
            row.push(value(cell(&g, mapping, mech)));
        }
        t.row(row);
    }
    format!("{} ({unit})\n{}", "policy x mechanism", t.render())
}

/// Figure 10.
pub fn run_fig10(scale: Scale) -> String {
    let mut out = grid_table(scale, |r| f(r.avg_cost_per_vm_hr, 4), "average $/VM-hr");
    let g = grid(scale);
    let lazy_1pm = cell(&g, MappingPolicy::OneM, MechanismKind::SpotCheckLazy);
    out.push_str(&format!(
        "\n1P-M SpotCheck-lazy cost: ${:.4}/hr vs m3.medium on-demand $0.0700/hr -> {:.1}x savings\n\
         paper shape: ~$0.015/hr for the m3.medium-equivalent, ~5x cheaper than on-demand;\n\
         live migration cheapest (no backup servers); pool spreading adds marginal cost\n",
        lazy_1pm.avg_cost_per_vm_hr,
        0.07 / lazy_1pm.avg_cost_per_vm_hr
    ));
    out
}

/// Figure 11.
pub fn run_fig11(scale: Scale) -> String {
    let mut out = grid_table(scale, |r| f(r.unavailability_pct, 4), "unavailability %");
    let g = grid(scale);
    let lazy_1pm = cell(&g, MappingPolicy::OneM, MechanismKind::SpotCheckLazy);
    out.push_str(&format!(
        "\n1P-M SpotCheck-lazy availability: {:.4}%\n\
         paper shape: live < lazy < optimized-full < unoptimized-full unavailability;\n\
         1P-M highest availability (~99.999%), 4P-ED lowest (~99.8%); all <= 0.25%\n",
        lazy_1pm.availability_pct
    ));
    out
}

/// Figure 12.
pub fn run_fig12(scale: Scale) -> String {
    let mut out = grid_table(scale, |r| f(r.degradation_pct, 4), "time degraded %");
    out.push_str(
        "\npaper shape: lazy restore trades its availability win for the longest degraded\n\
         windows; 1P-M ~0.02%, worst (4P-ED) ~0.25%\n",
    );
    out
}

/// Table 3.
pub fn run_table3(scale: Scale) -> String {
    let g = grid(scale);
    let mut t = TextTable::new(&["policy", "N/4", "N/2", "3N/4", "N"]);
    for (mapping, label) in [
        (MappingPolicy::OneM, "1-Pool"),
        (MappingPolicy::TwoML, "2-Pool"),
        (MappingPolicy::FourEd, "4-Pool"),
    ] {
        let r = cell(&g, mapping, MechanismKind::SpotCheckLazy);
        let mut row = vec![label.to_string()];
        for (_, p) in &r.storms.buckets {
            row.push(sci(*p));
        }
        t.row(row);
    }
    let mut out = t.render();
    out.push_str(
        "\nprobabilities are per 1-minute interval over the horizon; N = 40 VMs per backup server\n\
         paper shape: 1-Pool concentrates all mass at N (full storms); 2-Pool mostly N/2 with\n\
         rare coincident N; 4-Pool mostly N/4 with full storms (N) never observed\n",
    );
    out
}

/// Headline numbers.
pub fn run_headline(scale: Scale) -> String {
    let g = grid(scale);
    let r = cell(&g, MappingPolicy::OneM, MechanismKind::SpotCheckLazy);
    let mut t = TextTable::new(&["metric", "measured", "paper"]);
    t.row(vec![
        "cost ($/VM-hr)".into(),
        f(r.avg_cost_per_vm_hr, 4),
        "~0.015".into(),
    ]);
    t.row(vec![
        "savings vs on-demand".into(),
        format!("{:.1}x", 0.07 / r.avg_cost_per_vm_hr),
        "~5x".into(),
    ]);
    t.row(vec![
        "availability (%)".into(),
        f(r.availability_pct, 4),
        "99.9989".into(),
    ]);
    t.row(vec![
        "degraded time (%)".into(),
        f(r.degradation_pct, 4),
        "~0.02".into(),
    ]);
    t.row(vec![
        "revocations per VM (6 mo)".into(),
        f(r.revocations_per_vm, 1),
        "(rare; m3.medium highly stable)".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_cost_savings_hold() {
        let g = grid(Scale::Quick);
        let r = cell(&g, MappingPolicy::OneM, MechanismKind::SpotCheckLazy);
        // Quick scale still shows the headline economics: several-fold
        // cheaper than the $0.07 on-demand price.
        assert!(
            r.avg_cost_per_vm_hr < 0.03,
            "cost {}",
            r.avg_cost_per_vm_hr
        );
        // Live is cheapest (no backup).
        let live = cell(&g, MappingPolicy::OneM, MechanismKind::XenLive);
        assert!(live.avg_cost_per_vm_hr < r.avg_cost_per_vm_hr);
    }

    #[test]
    fn fig11_availability_ordering() {
        let g = grid(Scale::Quick);
        for mapping in MappingPolicy::ALL {
            let live = cell(&g, mapping, MechanismKind::XenLive);
            let lazy = cell(&g, mapping, MechanismKind::SpotCheckLazy);
            let full = cell(&g, mapping, MechanismKind::SpotCheckFull);
            let yank = cell(&g, mapping, MechanismKind::UnoptimizedFull);
            assert!(live.unavailability_pct <= lazy.unavailability_pct);
            assert!(lazy.unavailability_pct <= full.unavailability_pct);
            assert!(full.unavailability_pct <= yank.unavailability_pct);
        }
    }

    #[test]
    fn fig11_one_pool_most_available() {
        let g = grid(Scale::Quick);
        let one = cell(&g, MappingPolicy::OneM, MechanismKind::SpotCheckLazy);
        let four = cell(&g, MappingPolicy::FourEd, MechanismKind::SpotCheckLazy);
        assert!(one.unavailability_pct < four.unavailability_pct);
        assert!(one.availability_pct > 99.9);
    }

    #[test]
    fn fig12_lazy_degrades_longest() {
        let g = grid(Scale::Quick);
        let lazy = cell(&g, MappingPolicy::FourEd, MechanismKind::SpotCheckLazy);
        let full = cell(&g, MappingPolicy::FourEd, MechanismKind::SpotCheckFull);
        assert!(lazy.degradation_pct > full.degradation_pct);
    }

    #[test]
    fn table3_spreading_eliminates_full_storms() {
        let g = grid(Scale::Quick);
        let one = cell(&g, MappingPolicy::OneM, MechanismKind::SpotCheckLazy);
        let four = cell(&g, MappingPolicy::FourEd, MechanismKind::SpotCheckLazy);
        // 1-Pool: every storm is full-N.
        if one.revocations_per_vm > 0.0 {
            assert!(one.storms.p_full() > 0.0);
        }
        // 4-Pool: full storms require 4 simultaneous independent spikes —
        // never observed.
        assert_eq!(four.storms.p_full(), 0.0);
        // But 4-Pool sees (many) quarter storms.
        assert!(four.storms.buckets[0].1 > 0.0);
    }

    #[test]
    fn output_renders() {
        for id in ["fig10", "fig11", "fig12", "table3", "headline"] {
            let r = super::super::run(id, Scale::Quick).unwrap();
            assert!(!r.output.is_empty());
        }
    }
}
