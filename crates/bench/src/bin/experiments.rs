//! CLI that regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--quick] [--list] [--json] [--out PATH] [--journal PATH] [--threads N] [--shards N] [--queue B] [--no-pool] [--no-fast-forward] [--scaling] [id ...]
//! ```
//!
//! - `--quick` shrinks horizons for smoke tests.
//! - `--threads N` caps the worker count (0 or absent: auto-detect). The
//!   worker count never changes any reported number, only wall-clock time.
//! - `--shards N` caps the worker threads sharded simulations (the
//!   `fleet_sharded` experiment) use per epoch window (0 or absent: follow
//!   `--threads`). The logical shard topology is fixed by the scenario, so
//!   like `--threads` this flag never changes any reported number.
//! - `--queue heap|wheel` selects the event-queue backend (default: wheel).
//!   Both backends pop in an identical order, so reported numbers never
//!   change — the flag exists for differential testing and benchmarking.
//! - `--no-pool` runs multi-worker epoch windows with per-window scoped
//!   spawns instead of the persistent worker pool; `--no-fast-forward`
//!   executes empty epoch windows one by one instead of jumping over them.
//!   Both are performance ablations: reported numbers never change.
//! - `--scaling` additionally runs the `fleet_scaling` sweep (a
//!   reduced-scale `fleet_sharded` at 1/2/4/8 workers) after the selected
//!   experiments, printing a measured scaling table (and, with `--json`,
//!   a `fleet_scaling` block with detected host parallelism).
//! - `--json` emits a machine-readable performance report (wall-clock,
//!   simulation events, throughput per experiment) instead of the human
//!   tables; with `--out PATH` the JSON goes to the file and the tables
//!   still print to stdout.
//! - `--journal PATH` runs the canonical revocation-spike scenario and
//!   dumps its structured controller journal (typed records + counters) as
//!   JSON to PATH. With no experiment ids, the dump is all that runs.

use std::process::ExitCode;

use spotcheck_bench::{all_ids, run_many, PerfReport, Scale};
use spotcheck_simcore::queue::QueueBackend;

struct Args {
    scale: Scale,
    list: bool,
    json: bool,
    out: Option<String>,
    journal: Option<String>,
    threads: usize,
    shards: usize,
    queue: Option<QueueBackend>,
    pool: bool,
    fast_forward: bool,
    scaling: bool,
    ids: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        scale: Scale::Full,
        list: false,
        json: false,
        out: None,
        journal: None,
        threads: 0,
        shards: 0,
        queue: None,
        pool: true,
        fast_forward: true,
        scaling: false,
        ids: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.scale = Scale::Quick,
            "--list" => args.list = true,
            "--json" => args.json = true,
            "--out" => {
                args.out = Some(
                    it.next()
                        .ok_or("--out requires a file path")?
                        .clone(),
                );
            }
            "--journal" => {
                args.journal = Some(
                    it.next()
                        .ok_or("--journal requires a file path")?
                        .clone(),
                );
            }
            "--threads" => {
                let n = it.next().ok_or("--threads requires a count")?;
                args.threads = n
                    .parse()
                    .map_err(|e| format!("bad --threads value {n:?}: {e}"))?;
            }
            "--shards" => {
                let n = it.next().ok_or("--shards requires a count")?;
                args.shards = n
                    .parse()
                    .map_err(|e| format!("bad --shards value {n:?}: {e}"))?;
            }
            "--queue" => {
                let b = it.next().ok_or("--queue requires 'heap' or 'wheel'")?;
                args.queue = Some(b.parse()?);
            }
            "--no-pool" => args.pool = false,
            "--no-fast-forward" => args.fast_forward = false,
            "--scaling" => args.scaling = true,
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag: {flag}"));
            }
            id => args.ids.push(id.to_string()),
        }
    }
    if args.out.is_some() && !args.json {
        return Err("--out requires --json".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    if args.list {
        for id in all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    spotcheck_simcore::parallel::set_max_threads(args.threads);
    spotcheck_simcore::shard::set_shard_workers(args.shards);
    spotcheck_simcore::shard::set_pool_enabled(args.pool);
    spotcheck_simcore::shard::set_fast_forward(args.fast_forward);
    if let Some(backend) = args.queue {
        spotcheck_simcore::queue::set_default_backend(backend);
    }

    if let Some(path) = &args.journal {
        let json = spotcheck_bench::experiments::ablations::journal_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("failed to write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if args.ids.is_empty() {
            return ExitCode::SUCCESS;
        }
    }

    let selected: Vec<&str> = if args.ids.is_empty() {
        all_ids()
    } else {
        args.ids.iter().map(String::as_str).collect()
    };

    let start = std::time::Instant::now();
    let results = match run_many(&selected, args.scale) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e} (try --list)");
            return ExitCode::FAILURE;
        }
    };
    let total_wall = start.elapsed();

    // The sweep runs after the registry fan-out (it twiddles the shard
    // worker knob, which must not race with concurrent experiments).
    let scaling = args
        .scaling
        .then(|| spotcheck_bench::run_scaling(args.scale));

    // Deposited by the `trace_library` experiment when it ran (its
    // throughput is measured inside the run, like the scaling sweep's).
    let ingest = spotcheck_bench::experiments::trace_library::last_report();

    if args.json {
        let report = PerfReport {
            scale: args.scale,
            threads: spotcheck_simcore::parallel::configured_threads(),
            shards: args.shards,
            queue: spotcheck_simcore::queue::default_backend(),
            pool: args.pool,
            fast_forward: args.fast_forward,
            total_wall,
            scaling: scaling.as_ref(),
            trace_library: ingest.as_ref(),
            results: &results,
        };
        let json = report.to_json();
        match &args.out {
            Some(path) => {
                if let Err(e) = std::fs::write(path, &json) {
                    eprintln!("failed to write {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            None => {
                print!("{json}");
                return ExitCode::SUCCESS;
            }
        }
    }

    for result in &results {
        println!("==============================================================");
        println!(
            "[{}] {}  ({:.3}s, {} events)",
            result.id,
            result.title,
            result.wall.as_secs_f64(),
            result.events
        );
        println!("==============================================================");
        println!("{}", result.output);
    }
    if let Some(scaling) = &scaling {
        println!("==============================================================");
        println!("[fleet_scaling] measured worker-count sweep");
        println!("==============================================================");
        println!("{}", scaling.render());
    }
    ExitCode::SUCCESS
}
