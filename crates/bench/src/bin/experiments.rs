//! CLI that regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--quick] [--list] [id ...]
//! ```

use std::process::ExitCode;

use spotcheck_bench::{all_ids, run, Scale};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let list = args.iter().any(|a| a == "--list");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let ids: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    if list {
        for id in all_ids() {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&str> = if ids.is_empty() { all_ids() } else { ids };
    for id in &selected {
        match run(id, scale) {
            Some(result) => {
                println!("==============================================================");
                println!("[{}] {}", result.id, result.title);
                println!("==============================================================");
                println!("{}", result.output);
            }
            None => {
                eprintln!("unknown experiment id: {id} (try --list)");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
