//! Spot-price trace tooling.
//!
//! ```text
//! tracegen generate --days 183 --seed 42 --out traces/     # write CSVs
//! tracegen stats traces/m3.medium@us-east-1a.csv           # inspect one
//! tracegen policy traces/                                  # run the Table-2
//!                                                          # policies on CSVs
//! tracegen pack traces/ archive.stl [--threads N]          # CSVs -> columnar
//! tracegen unpack archive.stl traces/                      # columnar -> CSVs
//! tracegen info archive.stl                                # index summary
//! ```
//!
//! The CSV format is the library's own (`PriceTrace::to_csv`): a
//! `# market=<type>@<zone> od=<price>` header plus `time_secs,price`
//! lines. Real archives (e.g. scraped EC2 history) can be converted to
//! this format and fed straight into the policy simulator. `pack` bundles
//! a CSV directory into the digest-protected `.stl` columnar format
//! (`spotmarket::archive`), which reloads an order of magnitude faster;
//! `unpack` reverses it byte-exactly.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::{run_policy, standard_traces, PolicyExperiment};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::archive::{read_index, TraceLibrary};
use spotcheck_spotmarket::trace::PriceTrace;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("generate") => generate(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("policy") => policy(&args[1..]),
        Some("pack") => pack(&args[1..]),
        Some("unpack") => unpack(&args[1..]),
        Some("info") => info(&args[1..]),
        _ => {
            eprintln!(
                "usage: tracegen generate [--days N] [--seed N] [--out DIR]\n\
                 |      tracegen stats FILE.csv\n\
                 |      tracegen policy DIR\n\
                 |      tracegen pack DIR OUT.stl [--threads N]\n\
                 |      tracegen unpack IN.stl DIR\n\
                 |      tracegen info IN.stl"
            );
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn generate(args: &[String]) -> ExitCode {
    let days: u64 = flag(args, "--days").and_then(|s| s.parse().ok()).unwrap_or(183);
    let seed: u64 = flag(args, "--seed").and_then(|s| s.parse().ok()).unwrap_or(42);
    let out = PathBuf::from(flag(args, "--out").unwrap_or_else(|| "traces".to_string()));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create {}: {e}", out.display());
        return ExitCode::FAILURE;
    }
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), seed);
    for t in &traces {
        let path = out.join(format!("{}.csv", t.market));
        if let Err(e) = std::fs::write(&path, t.to_csv()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "{}: {} change points over {days} days",
            path.display(),
            t.prices.len()
        );
    }
    ExitCode::SUCCESS
}

fn load(path: &Path) -> Result<PriceTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    PriceTrace::from_csv(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn stats(args: &[String]) -> ExitCode {
    let Some(file) = args.first() else {
        eprintln!("usage: tracegen stats FILE.csv");
        return ExitCode::FAILURE;
    };
    let trace = match load(Path::new(file)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let end = trace.end().unwrap_or(SimTime::ZERO);
    println!("market:        {}", trace.market);
    println!("on-demand:     ${:.4}/hr", trace.on_demand_price);
    println!("change points: {}", trace.prices.len());
    println!("span:          {}", end);
    if let Some(mean) = trace.mean_price(SimTime::ZERO, end) {
        println!("mean price:    ${mean:.4}/hr ({:.2}x od)", mean / trace.on_demand_price);
    }
    if let Some(avail) = trace.availability_at_bid(trace.on_demand_price, SimTime::ZERO, end) {
        println!("avail @ bid=od: {:.4}%", avail * 100.0);
    }
    println!(
        "revocations @ bid=od: {}",
        trace.revocations_at_bid(trace.on_demand_price, SimTime::ZERO, end)
    );
    ExitCode::SUCCESS
}

fn policy(args: &[String]) -> ExitCode {
    let dir = PathBuf::from(args.first().cloned().unwrap_or_else(|| "traces".to_string()));
    let mut traces = Vec::new();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("cannot read {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().map(|e| e == "csv").unwrap_or(false) {
            match load(&path) {
                Ok(t) => traces.push(t),
                Err(e) => {
                    eprintln!("skipping {e}");
                }
            }
        }
    }
    if traces.is_empty() {
        eprintln!("no traces loaded from {}", dir.display());
        return ExitCode::FAILURE;
    }
    let horizon = traces
        .iter()
        .filter_map(|t| t.end())
        .max()
        .unwrap_or(SimTime::ZERO)
        .saturating_since(SimTime::ZERO);
    println!(
        "loaded {} markets; horizon {}\n",
        traces.len(),
        horizon
    );
    println!(
        "{:<8} {:>10} {:>12} {:>10}",
        "policy", "$/VM-hr", "avail (%)", "revs/VM"
    );
    for mapping in MappingPolicy::ALL {
        // Skip policies whose markets are not all present.
        let zone = traces[0].market.zone.as_str();
        let have_all = mapping
            .markets(zone)
            .iter()
            .all(|m| traces.iter().any(|t| &t.market == m));
        if !have_all {
            println!("{:<8} (markets missing)", mapping.label());
            continue;
        }
        let mut exp =
            PolicyExperiment::paper_default(mapping, MechanismKind::SpotCheckLazy, 0);
        exp.horizon = horizon;
        let r = run_policy(&traces, &exp);
        println!(
            "{:<8} {:>10.4} {:>12.4} {:>10.1}",
            mapping.label(),
            r.avg_cost_per_vm_hr,
            r.availability_pct,
            r.revocations_per_vm
        );
    }
    ExitCode::SUCCESS
}

fn pack(args: &[String]) -> ExitCode {
    let (Some(dir), Some(out)) = (args.first(), args.get(1)) else {
        eprintln!("usage: tracegen pack DIR OUT.stl [--threads N]");
        return ExitCode::FAILURE;
    };
    if let Some(n) = flag(args, "--threads").and_then(|s| s.parse().ok()) {
        spotcheck_simcore::parallel::set_max_threads(n);
    }
    let lib = match TraceLibrary::ingest_csv_dir(Path::new(dir)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if lib.is_empty() {
        eprintln!("no .csv traces found in {dir}");
        return ExitCode::FAILURE;
    }
    let out = Path::new(out);
    if let Err(e) = lib.write_stl(out) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "packed {} markets, {} points -> {} ({} bytes)",
        lib.len(),
        lib.total_points(),
        out.display(),
        bytes
    );
    ExitCode::SUCCESS
}

fn unpack(args: &[String]) -> ExitCode {
    let (Some(input), Some(dir)) = (args.first(), args.get(1)) else {
        eprintln!("usage: tracegen unpack IN.stl DIR");
        return ExitCode::FAILURE;
    };
    let lib = match TraceLibrary::read_stl(Path::new(input)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let dir = PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    for t in lib.traces() {
        let path = dir.join(format!("{}.csv", t.market));
        if let Err(e) = std::fs::write(&path, t.to_csv()) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "unpacked {} markets, {} points -> {}",
        lib.len(),
        lib.total_points(),
        dir.display()
    );
    ExitCode::SUCCESS
}

fn info(args: &[String]) -> ExitCode {
    let Some(input) = args.first() else {
        eprintln!("usage: tracegen info IN.stl");
        return ExitCode::FAILURE;
    };
    // `read_index` verifies the integrity digest but decodes no blocks,
    // so this stays fast on multi-million-point archives.
    let summaries = match read_index(Path::new(input)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let total: usize = summaries.iter().map(|s| s.points).sum();
    println!("{}: {} markets, {} points, digest ok", input, summaries.len(), total);
    for s in &summaries {
        let span = s
            .span
            .map(|(a, b)| format!("{} .. {}", a, b))
            .unwrap_or_else(|| "(empty)".to_string());
        println!(
            "  {:<28} {:>9} points  od ${:<8} {}",
            s.market.to_string(),
            s.points,
            s.on_demand_price,
            span
        );
    }
    ExitCode::SUCCESS
}
