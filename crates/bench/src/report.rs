//! Machine-readable performance reports (`BENCH_RESULTS.json`).
//!
//! The experiments CLI's `--json` mode serializes every
//! [`ExperimentResult`](crate::ExperimentResult)'s timing instrumentation —
//! wall-clock, simulation-event count, and throughput — so CI can track the
//! harness's performance over time without parsing the human tables. The
//! writer is hand-rolled (the build environment carries no serde); the
//! subset of JSON emitted is deliberately small: objects, arrays, strings,
//! finite numbers.

use spotcheck_simcore::queue::QueueBackend;

use crate::experiments::{ExperimentResult, Scale};

/// A performance report over one harness invocation.
#[derive(Debug, Clone)]
pub struct PerfReport<'a> {
    /// Scale the experiments ran at.
    pub scale: Scale,
    /// Worker count the harness was configured with.
    pub threads: usize,
    /// Shard-worker cap (`--shards`; 0 follows `--threads`).
    pub shards: usize,
    /// Event-queue backend the run used.
    pub queue: QueueBackend,
    /// End-to-end wall-clock for the whole invocation (includes registry
    /// fan-out overlap, so it is at most the sum of per-experiment walls).
    pub total_wall: std::time::Duration,
    /// The instrumented results, in registry order.
    pub results: &'a [ExperimentResult],
}

impl PerfReport<'_> {
    /// Renders the report as a JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.results.len());
        out.push_str("{\n");
        out.push_str("  \"suite\": \"spotcheck-experiments\",\n");
        out.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            match self.scale {
                Scale::Full => "full",
                Scale::Quick => "quick",
            }
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        // The run configuration, so consumers (the CI throughput guard)
        // can refuse to compare unlike-configured runs.
        out.push_str(&format!(
            "  \"config\": {{\"queue\": \"{}\", \"threads\": {}, \"shards\": {}}},\n",
            self.queue.label(),
            self.threads,
            self.shards
        ));
        out.push_str(&format!(
            "  \"total_wall_secs\": {},\n",
            json_f64(self.total_wall.as_secs_f64())
        ));
        let total_events: u64 = self.results.iter().map(|r| r.events).sum();
        out.push_str(&format!("  \"total_events\": {total_events},\n"));
        out.push_str("  \"experiments\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"id\": {}, ", json_str(r.id)));
            out.push_str(&format!("\"title\": {}, ", json_str(r.title)));
            out.push_str(&format!(
                "\"wall_secs\": {}, ",
                json_f64(r.wall.as_secs_f64())
            ));
            out.push_str(&format!("\"events\": {}, ", r.events));
            out.push_str(&format!(
                "\"events_per_sec\": {}, ",
                json_f64(r.events_per_sec())
            ));
            out.push_str(&format!("\"peak_queue_depth\": {}", r.peak_queue_depth));
            out.push_str(if i + 1 < self.results.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` as a JSON number (non-finite values map to 0).
fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{}` on f64 is shortest-roundtrip and always contains a digit;
        // values like `1e300` are valid JSON numbers too.
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &'static str, events: u64, millis: u64) -> ExperimentResult {
        ExperimentResult {
            id,
            title: "a \"quoted\"\ttitle",
            output: String::new(),
            wall: std::time::Duration::from_millis(millis),
            events,
            peak_queue_depth: 7,
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_numbers_always_carry_a_fraction_or_exponent() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn report_renders_every_result() {
        let results = vec![result("fig1", 100, 10), result("fig6a", 0, 0)];
        let report = PerfReport {
            scale: Scale::Quick,
            threads: 4,
            shards: 8,
            queue: QueueBackend::Wheel,
            total_wall: std::time::Duration::from_millis(12),
            results: &results,
        };
        let json = report.to_json();
        assert!(json.contains("\"suite\": \"spotcheck-experiments\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"config\": {\"queue\": \"wheel\", \"threads\": 4, \"shards\": 8}"));
        assert!(json.contains("\"id\": \"fig1\""));
        assert!(json.contains("\"id\": \"fig6a\""));
        assert!(json.contains("\"total_events\": 100"));
        // Balanced braces/brackets (a cheap well-formedness check; the CI
        // smoke job does a real parse with python).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn zero_wall_run_reports_zero_throughput() {
        let r = result("x", 50, 0);
        assert_eq!(r.events_per_sec(), 0.0);
    }
}
