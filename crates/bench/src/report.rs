//! Machine-readable performance reports (`BENCH_RESULTS.json`).
//!
//! The experiments CLI's `--json` mode serializes every
//! [`ExperimentResult`](crate::ExperimentResult)'s timing instrumentation —
//! wall-clock, simulation-event count, and throughput — so CI can track the
//! harness's performance over time without parsing the human tables. The
//! writer is hand-rolled (the build environment carries no serde); the
//! subset of JSON emitted is deliberately small: objects, arrays, strings,
//! finite numbers.

use spotcheck_simcore::queue::QueueBackend;

use crate::experiments::fleet_sharded::ScalingReport;
use crate::experiments::trace_library::IngestReport;
use crate::experiments::{ExperimentResult, Scale};

/// A performance report over one harness invocation.
#[derive(Debug, Clone)]
pub struct PerfReport<'a> {
    /// Scale the experiments ran at.
    pub scale: Scale,
    /// Worker count the harness was configured with.
    pub threads: usize,
    /// Shard-worker cap (`--shards`; 0 follows `--threads`).
    pub shards: usize,
    /// Event-queue backend the run used.
    pub queue: QueueBackend,
    /// Whether multi-worker epoch windows used the persistent pool
    /// (`false` under `--no-pool`).
    pub pool: bool,
    /// Whether idle-epoch fast-forward was enabled (`false` under
    /// `--no-fast-forward`).
    pub fast_forward: bool,
    /// End-to-end wall-clock for the whole invocation (includes registry
    /// fan-out overlap, so it is at most the sum of per-experiment walls).
    pub total_wall: std::time::Duration,
    /// The measured `fleet_scaling` sweep, when `--scaling` ran one.
    pub scaling: Option<&'a ScalingReport>,
    /// The archive-ingest measurements, when the `trace_library`
    /// experiment ran.
    pub trace_library: Option<&'a IngestReport>,
    /// The instrumented results, in registry order.
    pub results: &'a [ExperimentResult],
}

impl PerfReport<'_> {
    /// Renders the report as a JSON document (trailing newline included).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.results.len());
        out.push_str("{\n");
        out.push_str("  \"suite\": \"spotcheck-experiments\",\n");
        out.push_str(&format!(
            "  \"scale\": \"{}\",\n",
            match self.scale {
                Scale::Full => "full",
                Scale::Quick => "quick",
            }
        ));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        // The run configuration, so consumers (the CI throughput guard)
        // can refuse to compare unlike-configured runs.
        out.push_str(&format!(
            "  \"config\": {{\"queue\": \"{}\", \"threads\": {}, \"shards\": {}, \
             \"pool\": {}, \"fast_forward\": {}}},\n",
            self.queue.label(),
            self.threads,
            self.shards,
            self.pool,
            self.fast_forward
        ));
        out.push_str(&format!(
            "  \"total_wall_secs\": {},\n",
            json_f64(self.total_wall.as_secs_f64())
        ));
        if let Some(scaling) = self.scaling {
            out.push_str("  \"fleet_scaling\": {\n");
            out.push_str(&format!(
                "    \"host_parallelism\": {},\n",
                scaling.host_parallelism
            ));
            out.push_str(&format!("    \"shards\": {},\n", scaling.shards));
            out.push_str(&format!("    \"nested_vms\": {},\n", scaling.nested_vms));
            out.push_str(&format!(
                "    \"horizon_days\": {},\n",
                json_f64(scaling.horizon_days)
            ));
            out.push_str("    \"rows\": [\n");
            for (i, row) in scaling.rows.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"workers\": {}, \"wall_secs\": {}, \"events\": {}, \
                     \"events_per_sec\": {}, \"speedup\": {}}}{}\n",
                    row.workers,
                    json_f64(row.wall.as_secs_f64()),
                    row.events,
                    json_f64(row.events_per_sec()),
                    json_f64(scaling.speedup(row)),
                    if i + 1 < scaling.rows.len() { "," } else { "" }
                ));
            }
            out.push_str("    ]\n  },\n");
        }
        if let Some(ingest) = self.trace_library {
            out.push_str("  \"trace_library\": {\n");
            out.push_str(&format!("    \"markets\": {},\n", ingest.markets));
            out.push_str(&format!("    \"points\": {},\n", ingest.points));
            out.push_str(&format!("    \"csv_bytes\": {},\n", ingest.csv_bytes));
            out.push_str(&format!("    \"stl_bytes\": {},\n", ingest.stl_bytes));
            out.push_str(&format!(
                "    \"csv_reference_secs\": {},\n",
                json_f64(ingest.csv_reference_secs)
            ));
            out.push_str(&format!(
                "    \"csv_ingest_secs\": {},\n",
                json_f64(ingest.csv_ingest_secs)
            ));
            out.push_str(&format!(
                "    \"stl_write_secs\": {},\n",
                json_f64(ingest.stl_write_secs)
            ));
            out.push_str(&format!(
                "    \"stl_load_secs\": {},\n",
                json_f64(ingest.stl_load_secs)
            ));
            out.push_str(&format!(
                "    \"stl_load_speedup\": {}\n",
                json_f64(ingest.stl_speedup())
            ));
            out.push_str("  },\n");
        }
        let total_events: u64 = self.results.iter().map(|r| r.events).sum();
        out.push_str(&format!("  \"total_events\": {total_events},\n"));
        out.push_str("  \"experiments\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"id\": {}, ", json_str(r.id)));
            out.push_str(&format!("\"title\": {}, ", json_str(r.title)));
            out.push_str(&format!(
                "\"wall_secs\": {}, ",
                json_f64(r.wall.as_secs_f64())
            ));
            out.push_str(&format!("\"events\": {}, ", r.events));
            out.push_str(&format!(
                "\"events_per_sec\": {}, ",
                json_f64(r.events_per_sec())
            ));
            out.push_str(&format!("\"peak_queue_depth\": {}", r.peak_queue_depth));
            out.push_str(if i + 1 < self.results.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Escapes a string as a JSON string literal (quotes included).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite `f64` as a JSON number (non-finite values map to 0).
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        // `{}` on f64 is shortest-roundtrip and always contains a digit;
        // values like `1e300` are valid JSON numbers too.
        let s = format!("{x}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(id: &'static str, events: u64, millis: u64) -> ExperimentResult {
        ExperimentResult {
            id,
            title: "a \"quoted\"\ttitle",
            output: String::new(),
            wall: std::time::Duration::from_millis(millis),
            events,
            peak_queue_depth: 7,
        }
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("plain"), "\"plain\"");
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn json_numbers_always_carry_a_fraction_or_exponent() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(2.0), "2.0");
        assert_eq!(json_f64(f64::NAN), "0.0");
        assert_eq!(json_f64(f64::INFINITY), "0.0");
    }

    #[test]
    fn report_renders_every_result() {
        let results = vec![result("fig1", 100, 10), result("fig6a", 0, 0)];
        let report = PerfReport {
            scale: Scale::Quick,
            threads: 4,
            shards: 8,
            queue: QueueBackend::Wheel,
            pool: true,
            fast_forward: true,
            total_wall: std::time::Duration::from_millis(12),
            scaling: None,
            trace_library: None,
            results: &results,
        };
        let json = report.to_json();
        assert!(json.contains("\"suite\": \"spotcheck-experiments\""));
        assert!(json.contains("\"scale\": \"quick\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains(
            "\"config\": {\"queue\": \"wheel\", \"threads\": 4, \"shards\": 8, \
             \"pool\": true, \"fast_forward\": true}"
        ));
        assert!(json.contains("\"id\": \"fig1\""));
        assert!(json.contains("\"id\": \"fig6a\""));
        assert!(json.contains("\"total_events\": 100"));
        assert!(!json.contains("fleet_scaling"));
        // Balanced braces/brackets (a cheap well-formedness check; the CI
        // smoke job does a real parse with python).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn scaling_block_renders_when_present() {
        use crate::experiments::fleet_sharded::{ScalingReport, ScalingRow};
        let scaling = ScalingReport {
            host_parallelism: 8,
            shards: 8,
            nested_vms: 20_000,
            horizon_days: 28.0,
            rows: vec![
                ScalingRow {
                    workers: 1,
                    wall: std::time::Duration::from_millis(4000),
                    events: 1_000_000,
                },
                ScalingRow {
                    workers: 2,
                    wall: std::time::Duration::from_millis(2100),
                    events: 1_000_000,
                },
            ],
        };
        let results = vec![result("fleet_sharded", 100, 10)];
        let report = PerfReport {
            scale: Scale::Full,
            threads: 1,
            shards: 0,
            queue: QueueBackend::Wheel,
            pool: false,
            fast_forward: false,
            total_wall: std::time::Duration::from_millis(12),
            scaling: Some(&scaling),
            trace_library: Some(&IngestReport {
                markets: 216,
                points: 9_000_000,
                csv_bytes: 220_000_000,
                stl_bytes: 100_000_000,
                csv_reference_secs: 10.0,
                csv_ingest_secs: 1.5,
                stl_write_secs: 0.5,
                stl_load_secs: 0.4,
            }),
            results: &results,
        };
        let json = report.to_json();
        assert!(json.contains("\"pool\": false, \"fast_forward\": false"));
        assert!(json.contains("\"fleet_scaling\": {"));
        assert!(json.contains("\"trace_library\": {"));
        assert!(json.contains("\"stl_load_speedup\": 25.0"));
        assert!(json.contains("\"host_parallelism\": 8"));
        assert!(json.contains("\"workers\": 2"));
        assert!(json.contains("\"speedup\": 1."));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn zero_wall_run_reports_zero_throughput() {
        let r = result("x", 50, 0);
        assert_eq!(r.events_per_sec(), 0.0);
    }
}
