//! Minimal fixed-width text tables for experiment output.

/// A simple left-padded text table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self
            .header
            .len()
            .max(self.rows.iter().map(Vec::len).max().unwrap_or(0));
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}  ", w = w));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a probability in scientific notation like the paper's Table 3.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else {
        format!("{v:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1.74e-4), "1.74e-4");
    }
}
