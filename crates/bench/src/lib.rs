//! # spotcheck-bench
//!
//! The experiment harness: regenerates every table and figure of the
//! paper's evaluation (and a set of ablations) from the reproduction's
//! models. Run via:
//!
//! ```text
//! cargo run -p spotcheck-bench --release --bin experiments            # everything
//! cargo run -p spotcheck-bench --release --bin experiments fig10 t3   # a subset
//! cargo run -p spotcheck-bench --release --bin experiments --list
//! ```
//!
//! Each experiment prints the same rows/series the paper reports, plus the
//! paper's published values where applicable, so shapes can be compared
//! directly. `EXPERIMENTS.md` records a paper-vs-measured index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod table;

pub use experiments::fleet_sharded::{run_scaling, ScalingReport, ScalingRow};
pub use experiments::{all_ids, run, run_all, run_many, ExperimentResult, Scale};
pub use report::PerfReport;
