//! The parallel harness's determinism contract: worker counts change
//! wall-clock time only, never a reported number.
//!
//! Three layers are pinned down:
//! 1. the policy grid as a pure function (`compute_grid` at 1 vs N workers),
//! 2. repeated in-process runs of registry experiments,
//! 3. the `experiments` binary end-to-end at `--threads 1` vs `--threads 4`
//!    (fresh processes, so the grid cache cannot mask a divergence).

use std::process::Command;

use spotcheck_bench::experiments::policy::{compute_grid, traces};
use spotcheck_bench::experiments::Scale;
use spotcheck_bench::run_many;

#[test]
fn policy_grid_is_identical_at_any_worker_count() {
    let ts = traces(Scale::Quick);
    let serial = compute_grid(&ts, Scale::Quick, 1);
    for threads in [2, 4, 8] {
        let parallel = compute_grid(&ts, Scale::Quick, threads);
        assert_eq!(
            parallel, serial,
            "grid diverged at {threads} workers"
        );
    }
}

#[test]
fn repeated_experiment_runs_are_bit_identical() {
    // Ids chosen to recompute from scratch on every call (no shared cache).
    for id in ["fig1", "fig6b", "table1", "ablation_bid"] {
        let a = spotcheck_bench::run(id, Scale::Quick).unwrap();
        let b = spotcheck_bench::run(id, Scale::Quick).unwrap();
        assert_eq!(a.output, b.output, "{id} output drifted between runs");
        assert_eq!(a.events, b.events, "{id} event count drifted");
    }
}

#[test]
fn run_many_preserves_requested_order() {
    let ids = ["fig9", "fig1", "table1"];
    let results = run_many(&ids, Scale::Quick).unwrap();
    let got: Vec<&str> = results.iter().map(|r| r.id).collect();
    assert_eq!(got, ids);
    for r in &results {
        let solo = spotcheck_bench::run(r.id, Scale::Quick).unwrap();
        assert_eq!(r.output, solo.output);
    }
}

#[test]
fn run_many_rejects_unknown_ids() {
    let err = run_many(&["fig1", "nope"], Scale::Quick).unwrap_err();
    assert!(err.contains("nope"), "{err}");
}

/// Masks the wall-clock field of `[id] title  (0.123s, 456 events)` header
/// lines, keeping the event counts — those must match across worker counts.
/// Also masks report rows marked `(run config)`: those surface execution
/// configuration (pool worker count, fast-forward split) that legitimately
/// varies with the knobs under test, same as wall-clock does.
fn mask_wall(stdout: &str) -> String {
    stdout
        .lines()
        .map(|l| {
            if l.contains("(run config)") {
                return "(run config masked)".to_string();
            }
            if l.starts_with('[') && l.ends_with("events)") {
                if let Some(pos) = l.rfind("  (") {
                    if let Some(comma) = l[pos..].find(", ") {
                        return format!("{}  (X, {}", &l[..pos], &l[pos + comma + 2..]);
                    }
                }
            }
            l.to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn cli_output_is_byte_identical_across_thread_counts() {
    let run = |threads: &str| {
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(["--quick", "--threads", threads])
            .output()
            .expect("experiments binary runs");
        assert!(out.status.success(), "--threads {threads} exited nonzero");
        mask_wall(&String::from_utf8(out.stdout).expect("utf-8 output"))
    };
    let serial = run("1");
    let parallel = run("4");
    assert_eq!(
        serial, parallel,
        "CLI output (including event counts) must not depend on --threads"
    );
}

#[test]
fn fleet_is_identical_across_threads_and_queue_backends() {
    // The fleet experiment drives the full controller at scale; its report
    // (including event counts and peak queue depth) must not depend on the
    // worker count or on which event-queue backend ran the simulation.
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(["--quick", "fleet"])
            .args(args)
            .output()
            .expect("experiments binary runs");
        assert!(out.status.success(), "{args:?} exited nonzero");
        mask_wall(&String::from_utf8(out.stdout).expect("utf-8 output"))
    };
    let baseline = run(&["--threads", "1", "--queue", "wheel"]);
    for args in [
        &["--threads", "4", "--queue", "wheel"][..],
        &["--threads", "1", "--queue", "heap"][..],
        &["--threads", "4", "--queue", "heap"][..],
        // --shards is a pure worker knob; a non-sharded experiment must
        // not even notice it.
        &["--shards", "2", "--queue", "wheel"][..],
        &["--shards", "8", "--queue", "heap"][..],
    ] {
        assert_eq!(run(args), baseline, "fleet diverged under {args:?}");
    }
}

#[test]
fn fleet_sharded_is_identical_across_shards_threads_and_queue_backends() {
    // The sharded fleet's logical shard topology is fixed by the scenario;
    // --shards only chooses worker threads for the epoch windows, so the
    // rendered table (counters, gossip totals, event counts) must be
    // byte-identical across every combination of shard workers, harness
    // threads, and queue backend.
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(["--quick", "fleet_sharded"])
            .args(args)
            .output()
            .expect("experiments binary runs");
        assert!(out.status.success(), "{args:?} exited nonzero");
        mask_wall(&String::from_utf8(out.stdout).expect("utf-8 output"))
    };
    let baseline = run(&["--shards", "1", "--queue", "wheel"]);
    for args in [
        &["--shards", "2", "--queue", "wheel"][..],
        &["--shards", "8", "--queue", "wheel"][..],
        &["--shards", "1", "--queue", "heap"][..],
        &["--shards", "2", "--queue", "heap"][..],
        &["--shards", "8", "--queue", "heap"][..],
        &["--shards", "8", "--threads", "4", "--queue", "wheel"][..],
    ] {
        assert_eq!(run(args), baseline, "fleet_sharded diverged under {args:?}");
    }
}

#[test]
fn fleet_sharded_is_identical_with_pool_and_fast_forward_toggled() {
    // The persistent worker pool and idle-epoch fast-forward are pure
    // performance paths: pool-vs-spawn execution and fast-forward on/off
    // must render the identical table at every shard-worker count and
    // queue backend. (The simcore property suite additionally pins both
    // against a flat single-queue reference engine.)
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(["--quick", "fleet_sharded"])
            .args(args)
            .output()
            .expect("experiments binary runs");
        assert!(out.status.success(), "{args:?} exited nonzero");
        mask_wall(&String::from_utf8(out.stdout).expect("utf-8 output"))
    };
    let baseline = run(&["--shards", "1", "--queue", "wheel"]);
    for args in [
        &["--shards", "1", "--queue", "wheel", "--no-fast-forward"][..],
        &["--shards", "2", "--queue", "wheel", "--no-pool"][..],
        &["--shards", "2", "--queue", "heap", "--no-fast-forward"][..],
        &["--shards", "8", "--queue", "wheel", "--no-pool", "--no-fast-forward"][..],
        &["--shards", "8", "--queue", "heap", "--no-pool"][..],
        &["--shards", "8", "--queue", "heap", "--no-pool", "--no-fast-forward"][..],
    ] {
        assert_eq!(run(args), baseline, "fleet_sharded diverged under {args:?}");
    }
}

#[test]
fn contention_storm_is_identical_across_threads_and_queue_backends() {
    // The fluid-coupled fleet runs: flow completion instants emerge from
    // the shared max-min model, and every map it iterates is ordered, so
    // the violation table (and event counts) must be byte-identical
    // whatever the worker count or event-queue backend.
    let run = |args: &[&str]| {
        let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
            .args(["--quick", "contention_storm"])
            .args(args)
            .output()
            .expect("experiments binary runs");
        assert!(out.status.success(), "{args:?} exited nonzero");
        mask_wall(&String::from_utf8(out.stdout).expect("utf-8 output"))
    };
    let baseline = run(&["--threads", "1", "--queue", "wheel"]);
    for args in [
        &["--threads", "4", "--queue", "wheel"][..],
        &["--threads", "1", "--queue", "heap"][..],
        &["--threads", "4", "--queue", "heap"][..],
        &["--shards", "2", "--queue", "wheel"][..],
        &["--shards", "8", "--queue", "heap"][..],
    ] {
        assert_eq!(run(args), baseline, "contention_storm diverged under {args:?}");
    }
}

#[test]
fn cli_json_covers_every_registry_id() {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["--quick", "--json"])
        .output()
        .expect("experiments binary runs");
    assert!(out.status.success());
    let json = String::from_utf8(out.stdout).expect("utf-8 output");
    for id in spotcheck_bench::all_ids() {
        assert!(
            json.contains(&format!("\"id\": \"{id}\"")),
            "JSON report missing {id}"
        );
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
}
