//! End-to-end `tracegen` archive round-trip: CSV traces pack into a
//! `.stl` library and unpack back byte-identically, the packed bytes are
//! independent of the ingest worker count, and the in-process loader
//! agrees with the CLI point-for-point.

use std::path::{Path, PathBuf};
use std::process::Command;

use spotcheck_spotmarket::archive::{read_index, TraceLibrary};
use spotcheck_spotmarket::trace::PriceTrace;

fn tracegen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tracegen"))
}

/// A scratch directory unique to this test binary invocation.
fn scratch(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spotcheck-archive-roundtrip-{}-{label}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn tracegen");
    assert!(
        out.status.success(),
        "tracegen failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 stdout")
}

/// Every `*.csv` in `dir`, sorted by file name, as `(name, bytes)`.
fn csv_files(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read scratch dir")
        .flatten()
        .filter(|e| e.path().extension().map(|x| x == "csv").unwrap_or(false))
        .map(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(e.path()).expect("read csv"))
        })
        .collect();
    out.sort();
    out
}

#[test]
fn pack_unpack_roundtrips_csv_byte_identically() {
    let root = scratch("roundtrip");
    let src = root.join("src");
    let back = root.join("back");
    let stl = root.join("lib.stl");

    run_ok(tracegen().args([
        "generate",
        "--days",
        "3",
        "--seed",
        "7",
        "--out",
        src.to_str().unwrap(),
    ]));
    let packed = run_ok(tracegen().args([
        "pack",
        src.to_str().unwrap(),
        stl.to_str().unwrap(),
    ]));
    assert!(packed.contains("packed 4 markets"), "{packed}");
    run_ok(tracegen().args([
        "unpack",
        stl.to_str().unwrap(),
        back.to_str().unwrap(),
    ]));

    let a = csv_files(&src);
    let b = csv_files(&back);
    assert_eq!(a.len(), 4, "expected the m3 family");
    assert_eq!(
        a.iter().map(|(n, _)| n).collect::<Vec<_>>(),
        b.iter().map(|(n, _)| n).collect::<Vec<_>>()
    );
    for ((name, orig), (_, rt)) in a.iter().zip(&b) {
        assert_eq!(orig, rt, "{name} changed across pack/unpack");
    }

    // The in-process loader agrees with the CLI, point for point.
    let lib = TraceLibrary::read_stl(&stl).expect("read_stl");
    assert_eq!(lib.len(), 4);
    for (name, bytes) in &a {
        let parsed = PriceTrace::from_csv(std::str::from_utf8(bytes).unwrap()).unwrap();
        let loaded = lib.get(&parsed.market).unwrap_or_else(|| {
            panic!("{name}: market missing from library")
        });
        assert_eq!(loaded.on_demand_price.to_bits(), parsed.on_demand_price.to_bits());
        assert_eq!(loaded.prices.points(), parsed.prices.points(), "{name}");
    }

    // `info` verifies the digest without decoding blocks.
    let info = run_ok(tracegen().args(["info", stl.to_str().unwrap()]));
    assert!(info.contains("4 markets"), "{info}");
    assert!(info.contains("digest ok"), "{info}");
    let summaries = read_index(&stl).expect("read_index");
    assert_eq!(summaries.len(), 4);
    assert_eq!(
        summaries.iter().map(|s| s.points).sum::<usize>(),
        lib.total_points()
    );

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn pack_is_byte_identical_across_worker_counts() {
    let root = scratch("threads");
    let src = root.join("src");
    run_ok(tracegen().args([
        "generate",
        "--days",
        "2",
        "--seed",
        "11",
        "--out",
        src.to_str().unwrap(),
    ]));
    let mut archives = Vec::new();
    for threads in ["1", "4"] {
        let stl = root.join(format!("lib-{threads}.stl"));
        run_ok(tracegen().args([
            "pack",
            src.to_str().unwrap(),
            stl.to_str().unwrap(),
            "--threads",
            threads,
        ]));
        archives.push(std::fs::read(&stl).expect("read archive"));
    }
    assert_eq!(
        archives[0], archives[1],
        "packed archive differs between --threads 1 and --threads 4"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn corrupted_archive_is_rejected_by_the_cli() {
    let root = scratch("corrupt");
    let src = root.join("src");
    let stl = root.join("lib.stl");
    run_ok(tracegen().args([
        "generate",
        "--days",
        "1",
        "--seed",
        "3",
        "--out",
        src.to_str().unwrap(),
    ]));
    run_ok(tracegen().args([
        "pack",
        src.to_str().unwrap(),
        stl.to_str().unwrap(),
    ]));
    let mut bytes = std::fs::read(&stl).expect("read archive");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&stl, &bytes).expect("rewrite corrupted");
    let out = tracegen()
        .args(["info", stl.to_str().unwrap()])
        .output()
        .expect("spawn tracegen");
    assert!(
        !out.status.success(),
        "tracegen info accepted a corrupted archive"
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("digest"), "unexpected error: {err}");
    let _ = std::fs::remove_dir_all(&root);
}
