//! Criterion benchmarks of the simulation core: event-queue throughput and
//! the fluid max-min-fair solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotcheck_simcore::fluid::{max_min_rates, FlowSpec, FluidSim, Network};
use spotcheck_simcore::queue::EventQueue;
use spotcheck_simcore::time::{SimDuration, SimTime};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue_push_pop");
    for n in [1_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                for i in 0..n {
                    q.push(SimTime::from_micros(((i * 7919) % n) as u64), i);
                }
                let mut acc = 0usize;
                while let Some((_, e)) = q.pop() {
                    acc = acc.wrapping_add(e);
                }
                acc
            });
        });
    }
    g.finish();
}

fn bench_max_min(c: &mut Criterion) {
    let mut g = c.benchmark_group("max_min_rates");
    for n in [10usize, 100, 500] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut net = Network::new();
            let l1 = net.add_link(125e6);
            let l2 = net.add_link(110e6);
            let flows: Vec<FlowSpec> = (0..n)
                .map(|i| {
                    FlowSpec::new(vec![l1, l2], 1e9).with_cap(1e6 + (i as f64) * 1e5)
                })
                .collect();
            b.iter(|| max_min_rates(&net, &flows));
        });
    }
    g.finish();
}

fn bench_fluid_drain(c: &mut Criterion) {
    c.bench_function("fluid_drain_100_flows", |b| {
        b.iter(|| {
            let mut net = Network::new();
            let l = net.add_link(125e6);
            let mut sim = FluidSim::new(net);
            for i in 0..100 {
                sim.add_flow(FlowSpec::new(vec![l], 1e6 * (i + 1) as f64));
            }
            sim.advance(SimDuration::from_secs(3_600));
            sim.active_flows()
        });
    });
}

criterion_group!(benches, bench_event_queue, bench_max_min, bench_fluid_drain);
criterion_main!(benches);
