//! Criterion microbenchmarks of the migration mechanisms: the hot inner
//! loops behind Figures 7-9 (pre-copy simulation, bounded-time final
//! commits, restore contention, checkpoint-stream fair sharing).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotcheck_backup::server::BackupServerConfig;
use spotcheck_migrate::bounded::{simulate_final_commit, BoundedTimeConfig, RampPolicy};
use spotcheck_migrate::precopy::{simulate_precopy, PreCopyConfig};
use spotcheck_migrate::restore::{simulate_concurrent_restores, ReadPath, RestoreMode};
use spotcheck_migrate::scenario::checkpoint_contention;
use spotcheck_nestedvm::memory::DirtyModel;
use spotcheck_nestedvm::vm::NestedVmSpec;

fn bench_precopy(c: &mut Criterion) {
    let dirty = DirtyModel::new(50_000, 700.0, 0.01);
    let mut g = c.benchmark_group("precopy");
    for gib in [1u64, 4, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(gib), &gib, |b, &gib| {
            b.iter(|| simulate_precopy(gib << 30, &dirty, &PreCopyConfig::default()));
        });
    }
    g.finish();
}

fn bench_final_commit(c: &mut Criterion) {
    let dirty = DirtyModel::new(50_000, 700.0, 0.01);
    let mut g = c.benchmark_group("final_commit");
    for (name, ramp) in [
        ("yank", RampPolicy::None),
        ("spotcheck_ramp", RampPolicy::spotcheck_default()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                simulate_final_commit(
                    96e6,
                    &dirty,
                    786_432,
                    32e6,
                    &BoundedTimeConfig {
                        ramp,
                        ..BoundedTimeConfig::default()
                    },
                )
            });
        });
    }
    g.finish();
}

fn bench_restores(c: &mut Criterion) {
    let spec = NestedVmSpec::medium();
    let cfg = BackupServerConfig::default();
    let mut g = c.benchmark_group("concurrent_restores");
    g.sample_size(20).measurement_time(Duration::from_secs(5));
    for n in [1usize, 10, 40] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                simulate_concurrent_restores(
                    n,
                    spec.mem_bytes,
                    spec.skeleton_bytes(),
                    RestoreMode::Lazy,
                    ReadPath::Optimized,
                    &cfg,
                    None,
                )
            });
        });
    }
    g.finish();
}

fn bench_checkpoint_contention(c: &mut Criterion) {
    let cfg = BackupServerConfig::default();
    let mut g = c.benchmark_group("checkpoint_contention");
    for n in [10usize, 40, 100] {
        let demands = vec![3.2e6; n];
        g.bench_with_input(BenchmarkId::from_parameter(n), &demands, |b, demands| {
            b.iter(|| checkpoint_contention(demands, &cfg, None));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_precopy,
    bench_final_commit,
    bench_restores,
    bench_checkpoint_contention
);
criterion_main!(benches);
