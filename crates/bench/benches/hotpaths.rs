//! Micro-benchmarks of the harness hot paths, self-hosted on `std::time`
//! (the build environment carries no external crates, so this is a
//! `harness = false` stand-in for criterion with the same shape: named
//! benchmarks, warmup, and median-of-samples reporting).
//!
//! ```text
//! cargo bench -p spotcheck-bench --bench hotpaths            # everything
//! cargo bench -p spotcheck-bench --bench hotpaths stepseries # filtered
//! ```
//!
//! Covered (the paths the harness spends its time in):
//! - `StepSeries` window statistics over a six-month generated trace
//!   (`mean_over`, `fraction_where`, `resample`)
//! - `PriceTrace::mean_capped_price` / `revocations_at_bid`
//! - `DirtyModel::sample_dirty` (one checkpoint epoch of page writes)
//! - one quick-scale `run_policy` cell (Figure 10/11/12 inner loop)
//! - `EventQueue` steady-state churn, heap vs timing-wheel backend, under
//!   three deadline distributions: uniform near-future, bursty same-instant
//!   batches, and far-future pushes that land in the wheel's overflow level
//! - the sharded engine's cross-shard channel: epoch barrier + Lamport
//!   flush cost at rising message volume (idle barriers vs flooded ones)
//! - trace-archive ingest on a million-point trace: the historical
//!   line-at-a-time CSV parser vs the byte scanner vs the columnar `.stl`
//!   decoder, plus `TraceCursor` vs per-lookup binary search on the
//!   monotone price-query stream the simulation issues

use std::hint::black_box;
use std::time::{Duration, Instant};

use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::{run_policy, standard_traces, PolicyExperiment};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_nestedvm::memory::{DirtyModel, MemoryImage, PAGE_SIZE};
use spotcheck_simcore::queue::{EventQueue, QueueBackend};
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::shard::{
    set_pool_enabled, set_shard_workers, ShardCtx, ShardId, ShardWorld, ShardedSim,
};
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_bench::experiments::trace_library::reference_from_csv;
use spotcheck_simcore::series::StepSeries;
use spotcheck_spotmarket::archive::{TraceCursor, TraceLibrary};
use spotcheck_spotmarket::generator::TraceGenerator;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::profiles::profile_for;
use spotcheck_spotmarket::trace::PriceTrace;

/// Number of timed samples per benchmark (the median is reported).
const SAMPLES: usize = 15;
/// Minimum wall-clock per sample; iterations are batched up to this.
const MIN_SAMPLE: Duration = Duration::from_millis(20);

struct Report {
    name: &'static str,
    median_ns: f64,
    min_ns: f64,
    iters_per_sample: u64,
}

/// Times `f`, batching iterations so each sample runs at least
/// [`MIN_SAMPLE`], and returns per-iteration medians.
fn bench<R>(name: &'static str, mut f: impl FnMut() -> R) -> Report {
    // Warmup + calibration: how many iterations fill MIN_SAMPLE?
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= MIN_SAMPLE {
            break;
        }
        let grow = if elapsed.is_zero() {
            16
        } else {
            ((MIN_SAMPLE.as_secs_f64() / elapsed.as_secs_f64()).ceil() as u64).clamp(2, 64)
        };
        iters = iters.saturating_mul(grow);
    }
    let mut per_iter_ns: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    Report {
        name,
        median_ns: per_iter_ns[per_iter_ns.len() / 2],
        min_ns: per_iter_ns[0],
        iters_per_sample: iters,
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Steady-state event-queue churn: keep ~1024 events pending; each step
/// pops the earliest event and pushes a replacement `dt` past the popped
/// deadline, with `dt` drawn by `next_dt` (same seed for both backends, so
/// the workloads are identical). Returns a checksum so the work cannot be
/// optimized away.
fn queue_churn(
    backend: QueueBackend,
    pending: usize,
    steps: usize,
    mut next_dt: impl FnMut(&mut SimRng) -> u64,
) -> u64 {
    let mut rng = SimRng::seed(0x0E11_BEEF);
    let mut q: EventQueue<u64> = EventQueue::with_backend(backend);
    let mut now = 0u64;
    for i in 0..pending {
        let dt = next_dt(&mut rng);
        q.push(SimTime::from_micros(now + dt), i as u64);
    }
    let mut sum = 0u64;
    for i in 0..steps {
        let (t, e) = q.pop().expect("queue stays non-empty");
        now = t.as_micros();
        sum = sum.wrapping_add(now).wrapping_add(e);
        let dt = next_dt(&mut rng);
        q.push(SimTime::from_micros(now + dt), (pending + i) as u64);
    }
    sum
}

/// Uniform near-future deadlines (the common simulation regime: cloud-op
/// latencies, migration phases, trace change points).
fn dt_uniform(rng: &mut SimRng) -> u64 {
    rng.gen_range(1, 3_600_000_000) // up to one hour out
}

/// Bursty same-instant deadlines: revocation storms schedule whole fleets
/// at identical times, so most pushes collide on a handful of instants.
fn dt_bursty(rng: &mut SimRng) -> u64 {
    // 1 ms quantum: all events inside a quantum share one deadline.
    rng.gen_range(1, 64) * 1_000
}

/// Far-future deadlines beyond the wheel's 2^36 us (~19 h) span, forcing
/// the sorted-overflow level (price changes days out, horizon guards).
fn dt_far_future(rng: &mut SimRng) -> u64 {
    (1 << 36) + rng.gen_range(0, 86_400_000_000 * 6)
}

/// One shard of the cross-shard channel benchmark: every epoch it ticks
/// once and sends `per_tick` messages round-robin across the fleet, so the
/// barrier exchange flushes `shards x per_tick` envelopes per epoch.
struct Flooder {
    shards: u16,
    per_tick: usize,
    lookahead: SimDuration,
    sent: u64,
    received: u64,
}

impl ShardWorld for Flooder {
    type Event = ();
    type Msg = u64;

    fn handle(&mut self, _e: (), ctx: &mut ShardCtx<'_, '_, (), u64>) {
        let now = ctx.now();
        for k in 0..self.per_tick as u64 {
            let dst = ((self.sent + k) % self.shards as u64) as u16;
            ctx.send(ShardId(dst), now + self.lookahead, self.sent + k);
        }
        self.sent += self.per_tick as u64;
        ctx.after(self.lookahead, ());
    }

    fn on_message(&mut self, _src: ShardId, msg: u64, _ctx: &mut ShardCtx<'_, '_, (), u64>) {
        self.received = self.received.wrapping_add(msg);
    }
}

/// Runs `epochs` barrier rounds over `shards` shards, `per_tick` messages
/// per shard per epoch, on one worker (so the numbers isolate the channel
/// itself: outbox drain, Lamport sort, routed inbound merge — not thread
/// spawn). Returns a checksum.
fn shard_flush(shards: u16, per_tick: usize, epochs: u64) -> u64 {
    shard_flush_cfg(shards, per_tick, epochs, 1, true)
}

/// [`shard_flush`] with explicit worker count and pool selection: the
/// `pool_window_*` rows run `workers = 4` through the persistent pool,
/// the `spawn_window_*` rows force the legacy scoped-spawn-per-window
/// path, so the two directly price one epoch barrier under each regime.
/// Every shard ticks every epoch, so idle-epoch fast-forward never fires
/// and the numbers isolate the barrier itself.
fn shard_flush_cfg(shards: u16, per_tick: usize, epochs: u64, workers: usize, pool: bool) -> u64 {
    let lookahead = SimDuration::from_secs(60);
    set_shard_workers(workers);
    set_pool_enabled(pool);
    let worlds: Vec<Flooder> = (0..shards)
        .map(|_| Flooder {
            shards,
            per_tick,
            lookahead,
            sent: 0,
            received: 0,
        })
        .collect();
    let mut sim = ShardedSim::new(worlds, lookahead);
    for s in 0..shards as usize {
        sim.schedule_at(s, SimTime::ZERO, ());
    }
    sim.run_until(SimTime::ZERO + lookahead * epochs);
    set_shard_workers(0);
    set_pool_enabled(true);
    sim.worlds().map(|w| w.received).sum()
}

/// A synthetic million-point trace (generator profiles top out around
/// tens of thousands of change points per market, so the archive rows
/// build their own). Prices are quantized to 4 decimals like the
/// generator's, so the CSV fast path is representative.
fn million_point_trace() -> PriceTrace {
    let mut rng = SimRng::seed(0xA2C4);
    let mut s = StepSeries::new();
    let mut t = 0u64;
    for _ in 0..1_000_000 {
        t += rng.gen_range(1_000_000, 600_000_000); // 1 s .. 10 min apart
        let p = rng.gen_range(1, 100_000) as f64 / 10_000.0;
        s.push(SimTime::from_micros(t), p);
    }
    PriceTrace::new(MarketId::new("m3.large", "us-east-1a"), 0.14, s)
}

fn six_month_trace() -> PriceTrace {
    let profile = profile_for("m3.large").expect("catalog").profile;
    let mut rng = SimRng::seed(0xBEEF);
    TraceGenerator::new(profile).generate(
        MarketId::new("m3.large", "us-east-1a"),
        SimDuration::from_days(183),
        &mut rng,
    )
}

fn main() {
    let filter = std::env::args().nth(1).unwrap_or_default();
    let filter = if filter == "--bench" {
        String::new()
    } else {
        filter
    };

    let trace = six_month_trace();
    let end = SimTime::ZERO + SimDuration::from_days(183);
    let od = trace.on_demand_price;
    println!(
        "trace: m3.large 183d, {} change points; filter={:?}",
        trace.prices.len(),
        filter
    );

    let quick_traces = standard_traces("us-east-1a", SimDuration::from_days(14), 0x5EED_2015);

    let mut reports: Vec<Report> = Vec::new();
    let wanted = |name: &str| name.contains(filter.as_str());

    if wanted("stepseries_mean_over") {
        reports.push(bench("stepseries_mean_over", || {
            trace.prices.mean_over(SimTime::ZERO, end)
        }));
    }
    if wanted("stepseries_fraction_where") {
        reports.push(bench("stepseries_fraction_where", || {
            trace.prices.fraction_where(SimTime::ZERO, end, |p| p <= od)
        }));
    }
    if wanted("stepseries_resample_hourly") {
        reports.push(bench("stepseries_resample_hourly", || {
            trace.resample(SimTime::ZERO, end, SimDuration::from_hours(1))
        }));
    }
    if wanted("trace_mean_capped_price") {
        reports.push(bench("trace_mean_capped_price", || {
            trace.mean_capped_price(od, SimTime::ZERO, end)
        }));
    }
    if wanted("trace_revocations_at_bid") {
        reports.push(bench("trace_revocations_at_bid", || {
            trace.revocations_at_bid(od, SimTime::ZERO, end)
        }));
    }
    if wanted("dirty_sample_epoch") {
        let dirty = DirtyModel::new(50_000, 50_000.0, 0.02);
        let pages = 1 << 18; // 1 GiB at 4 KiB pages
        reports.push(bench("dirty_sample_epoch", || {
            let mut img = MemoryImage::new(pages * PAGE_SIZE);
            let mut rng = SimRng::seed(7);
            dirty.sample_dirty(&mut img, SimDuration::from_secs(1), &mut rng)
        }));
    }
    const QUEUE_STEPS: usize = 65_536;
    // (name, backend, pending depth, deadline distribution). The `storm`
    // rows model a fleet-wide revocation: 64k events pending at once, all
    // clustered on millisecond instants.
    type QueueBench = (&'static str, QueueBackend, usize, fn(&mut SimRng) -> u64);
    let queue_benches: [QueueBench; 8] = [
        ("queue_uniform_heap", QueueBackend::Heap, 1024, dt_uniform),
        ("queue_uniform_wheel", QueueBackend::Wheel, 1024, dt_uniform),
        ("queue_bursty_heap", QueueBackend::Heap, 1024, dt_bursty),
        ("queue_bursty_wheel", QueueBackend::Wheel, 1024, dt_bursty),
        ("queue_far_future_heap", QueueBackend::Heap, 1024, dt_far_future),
        ("queue_far_future_wheel", QueueBackend::Wheel, 1024, dt_far_future),
        ("queue_storm_heap", QueueBackend::Heap, 65_536, dt_bursty),
        ("queue_storm_wheel", QueueBackend::Wheel, 65_536, dt_bursty),
    ];
    for (name, backend, pending, next_dt) in queue_benches {
        if wanted(name) {
            reports.push(bench(name, || {
                queue_churn(backend, pending, QUEUE_STEPS, next_dt)
            }));
        }
    }

    // Cross-shard channel: 8 shards, 256 epoch barriers per iteration.
    // `idle` prices the pure barrier (exchange with empty outboxes);
    // the flooded rows add 8x64 and 8x1024 envelopes per epoch flush.
    const SHARD_EPOCHS: u64 = 256;
    let shard_benches: [(&'static str, usize); 3] = [
        ("shard_flush_idle", 0),
        ("shard_flush_64", 64),
        ("shard_flush_1024", 1024),
    ];
    for (name, per_tick) in shard_benches {
        if wanted(name) {
            reports.push(bench(name, || shard_flush(8, per_tick, SHARD_EPOCHS)));
        }
    }

    // Same workload at 4 workers: `pool_window_*` pays one persistent-pool
    // barrier per epoch, `spawn_window_*` pays the legacy scope-spawn (plus
    // per-item slot allocation and result re-collection) per epoch. The
    // delta is the pool's per-window saving; compare against the serial
    // `shard_flush_*` rows to see the residual coordination cost.
    let window_benches: [(&'static str, usize, bool); 6] = [
        ("pool_window_idle", 0, true),
        ("pool_window_64", 64, true),
        ("pool_window_1024", 1024, true),
        ("spawn_window_idle", 0, false),
        ("spawn_window_64", 64, false),
        ("spawn_window_1024", 1024, false),
    ];
    for (name, per_tick, pool) in window_benches {
        if wanted(name) {
            reports.push(bench(name, || {
                shard_flush_cfg(8, per_tick, SHARD_EPOCHS, 4, pool)
            }));
        }
    }

    // Archive ingest: one million-point trace through the three loaders.
    // The inputs are built lazily so cheap filtered runs skip the setup.
    let archive_wanted = ["csv_parse_reference_1m", "csv_parse_scanner_1m", "stl_load_1m"]
        .iter()
        .any(|n| wanted(n));
    if archive_wanted {
        let big = million_point_trace();
        let csv = big.to_csv();
        let stl = TraceLibrary::new(vec![big])
            .expect("single market")
            .to_bytes();
        println!(
            "archive input: 1M points, csv {} bytes, stl {} bytes",
            csv.len(),
            stl.len()
        );
        if wanted("csv_parse_reference_1m") {
            reports.push(bench("csv_parse_reference_1m", || {
                reference_from_csv(&csv).expect("reference parse")
            }));
        }
        if wanted("csv_parse_scanner_1m") {
            reports.push(bench("csv_parse_scanner_1m", || {
                PriceTrace::from_csv(&csv).expect("scanner parse")
            }));
        }
        if wanted("stl_load_1m") {
            reports.push(bench("stl_load_1m", || {
                TraceLibrary::from_bytes(&stl).expect("stl decode")
            }));
        }
    }

    // Price lookups on the monotone query stream the simulation issues:
    // the cursor's amortized-O(1) walk vs a fresh binary search per call.
    if wanted("price_at_cursor_monotone") || wanted("price_at_bsearch_monotone") {
        let big = million_point_trace();
        let start = big.prices.start().expect("non-empty").as_micros();
        let end = big.prices.end().expect("non-empty").as_micros();
        let step = (end - start) / 200_000;
        let queries: Vec<SimTime> = (0..200_000u64)
            .map(|i| SimTime::from_micros(start + i * step))
            .collect();
        if wanted("price_at_cursor_monotone") {
            reports.push(bench("price_at_cursor_monotone", || {
                let cursor = TraceCursor::new();
                let mut sum = 0.0;
                for &t in &queries {
                    sum += cursor.price_at(&big, t).unwrap_or(0.0);
                }
                sum
            }));
        }
        if wanted("price_at_bsearch_monotone") {
            reports.push(bench("price_at_bsearch_monotone", || {
                let mut sum = 0.0;
                for &t in &queries {
                    sum += big.prices.value_at(t).unwrap_or(0.0);
                }
                sum
            }));
        }
    }

    if wanted("policy_cell_quick") {
        reports.push(bench("policy_cell_quick", || {
            let mut exp = PolicyExperiment::paper_default(
                MappingPolicy::FourEd,
                MechanismKind::SpotCheckLazy,
                5,
            );
            exp.horizon = SimDuration::from_days(14);
            run_policy(&quick_traces, &exp)
        }));
    }

    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "benchmark", "median/iter", "min/iter", "batch"
    );
    println!("{}", "-".repeat(64));
    for r in &reports {
        println!(
            "{:<28} {:>12} {:>12} {:>8}",
            r.name,
            fmt_ns(r.median_ns),
            fmt_ns(r.min_ns),
            r.iters_per_sample
        );
    }
}
