//! Criterion benchmarks of the spot-market substrate: trace generation and
//! the Figure 6 statistics.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::generator::TraceGenerator;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::profiles::profile_for;
use spotcheck_spotmarket::stats::{availability_curve, correlation_matrix, hourly_jumps};

fn bench_generation(c: &mut Criterion) {
    let profile = profile_for("m3.large").unwrap().profile;
    let mut g = c.benchmark_group("trace_generation");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for days in [7u64, 30, 183] {
        g.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, &days| {
            b.iter(|| {
                let mut rng = SimRng::seed(1);
                TraceGenerator::new(profile.clone()).generate(
                    MarketId::new("m3.large", "z"),
                    SimDuration::from_days(days),
                    &mut rng,
                )
            });
        });
    }
    g.finish();
}

fn bench_stats(c: &mut Criterion) {
    let profile = profile_for("m3.large").unwrap().profile;
    let mut rng = SimRng::seed(2);
    let trace = TraceGenerator::new(profile.clone()).generate(
        MarketId::new("m3.large", "z"),
        SimDuration::from_days(183),
        &mut rng,
    );
    let end = SimTime::from_days(183);
    let ratios: Vec<f64> = (0..=20).map(|i| i as f64 / 20.0).collect();
    c.bench_function("availability_curve_183d", |b| {
        b.iter(|| availability_curve(&trace, &ratios, SimTime::ZERO, end));
    });
    c.bench_function("hourly_jumps_183d", |b| {
        b.iter(|| hourly_jumps(&trace, SimTime::ZERO, end));
    });

    // Correlation over a smaller fleet (dominated by resampling).
    let traces: Vec<_> = (0..6)
        .map(|i| {
            let mut rng = SimRng::seed(100 + i);
            TraceGenerator::new(profile.clone()).generate(
                MarketId::new("m3.large", &format!("z{i}")),
                SimDuration::from_days(30),
                &mut rng,
            )
        })
        .collect();
    c.bench_function("correlation_6x6_30d", |b| {
        let refs: Vec<_> = traces.iter().collect();
        b.iter(|| {
            correlation_matrix(
                &refs,
                SimTime::ZERO,
                SimTime::from_days(30),
                SimDuration::from_hours(1),
            )
        });
    });
}

criterion_group!(benches, bench_generation, bench_stats);
criterion_main!(benches);
