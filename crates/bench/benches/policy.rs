//! Criterion benchmarks of the policy layer: the trace-driven policy
//! simulator (one Figure 10/11/12 cell) and the end-to-end event-driven
//! controller.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::sim::{run_policy, standard_traces, PolicyExperiment};
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_workloads::WorkloadKind;

fn bench_policy_cell(c: &mut Criterion) {
    let days = 30;
    let traces = standard_traces("us-east-1a", SimDuration::from_days(days), 5);
    let mut g = c.benchmark_group("policy_cell_30d");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    for mapping in [MappingPolicy::OneM, MappingPolicy::FourEd] {
        g.bench_with_input(
            BenchmarkId::from_parameter(mapping.label()),
            &mapping,
            |b, &mapping| {
                b.iter(|| {
                    let mut exp = PolicyExperiment::paper_default(
                        mapping,
                        MechanismKind::SpotCheckLazy,
                        5,
                    );
                    exp.horizon = SimDuration::from_days(days);
                    run_policy(&traces, &exp)
                });
            },
        );
    }
    g.finish();
}

fn bench_controller_week(c: &mut Criterion) {
    let mut g = c.benchmark_group("controller");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    g.bench_function("controller_e2e_1vm_7d", |b| {
        b.iter(|| {
            let traces = standard_traces("us-east-1a", SimDuration::from_days(7), 9);
            let mut sim = SpotCheckSim::new(traces, SpotCheckConfig::default());
            let cust = sim.create_customer();
            let _vm = sim.request_server(cust, WorkloadKind::TpcW);
            sim.run_until(SimTime::from_days(7));
            sim.availability_report()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_policy_cell, bench_controller_week);
criterion_main!(benches);
