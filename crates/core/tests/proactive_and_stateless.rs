//! Controller tests for the §4.3 proactive-migration optimization and the
//! §4.2 stateless-service mode.

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::{BiddingPolicy, MappingPolicy};
use spotcheck_core::types::VmStatus;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

const ZONE: &str = "us-east-1a";

/// A medium market whose price crosses above on-demand (0.07) at
/// `cross_at` — but stays below 2x on-demand, so a 2x bidder is never
/// actually revoked.
fn creeping_medium(cross_at: u64, fall_at: u64) -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(cross_at), 0.095), // above od, below 2x od
        (SimTime::from_secs(fall_at), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

/// A market that spikes far above any bid.
fn spiky_medium(spike_at: u64, spike_end: u64) -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(spike_at), 5.0),
        (SimTime::from_secs(spike_end), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

fn proactive_config() -> SpotCheckConfig {
    SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        bidding: BiddingPolicy::KTimesOnDemand {
            k: 2.0,
            proactive: true,
        },
        ..SpotCheckConfig::default()
    }
}

#[test]
fn price_crossing_triggers_proactive_live_migration() {
    let mut sim = SpotCheckSim::new(vec![creeping_medium(3_600, 90_000)], proactive_config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(7_200));

    let report = sim.availability_report();
    // No revocation ever happened (the price never crossed the 2x bid)...
    assert_eq!(report.revocations, 0);
    // ...but the controller proactively moved the VM to on-demand.
    assert_eq!(report.proactive_migrations, 1, "proactive move expected");
    assert_eq!(report.migrations, 1);
    // Live migration: zero downtime, zero degradation.
    assert_eq!(report.total_downtime, SimDuration::ZERO);
    assert_eq!(report.total_degraded, SimDuration::ZERO);
    // The VM survived with its IP and now sits on on-demand (no backup).
    let record = sim.controller().vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running);
    assert!(record.backup.is_none());
}

#[test]
fn proactive_vm_returns_to_spot_when_price_falls() {
    let mut sim = SpotCheckSim::new(vec![creeping_medium(3_600, 10_000)], proactive_config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(15_000));
    let report = sim.availability_report();
    assert_eq!(report.proactive_migrations, 1);
    // Proactive move out + return-to-spot back.
    assert_eq!(report.migrations, 2);
    // Re-protected on spot.
    assert!(sim.controller().vm(vm).unwrap().backup.is_some());
}

#[test]
fn without_proactive_flag_the_vm_stays_and_pays() {
    let cfg = SpotCheckConfig {
        bidding: BiddingPolicy::KTimesOnDemand {
            k: 2.0,
            proactive: false,
        },
        ..proactive_config()
    };
    let mut sim = SpotCheckSim::new(vec![creeping_medium(3_600, 90_000)], cfg);
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(7_200));
    let report = sim.availability_report();
    assert_eq!(report.proactive_migrations, 0);
    assert_eq!(report.migrations, 0);
    // The VM stays on spot, paying 0.095/hr (above od) — the k-bid
    // trade-off the paper describes.
    let record = sim.controller().vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running);
    assert!(record.backup.is_some(), "still protected on spot");
}

#[test]
fn stateless_vm_skips_backup_and_live_migrates_on_revocation() {
    let cfg = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], cfg);
    let cust = sim.create_customer();
    let stateful = sim.request_server(cust, WorkloadKind::TpcW);
    let stateless = sim.request_server_opts(cust, WorkloadKind::TpcW, true);
    sim.run_until(SimTime::from_secs(3_000));
    // Protection: only the stateful VM gets a backup server.
    assert!(sim.controller().vm(stateful).unwrap().backup.is_some());
    assert!(sim.controller().vm(stateless).unwrap().backup.is_none());

    sim.run_until(SimTime::from_secs(7_200));
    // Both survive the revocation.
    assert_eq!(sim.controller().vm(stateful).unwrap().status, VmStatus::Running);
    assert_eq!(sim.controller().vm(stateless).unwrap().status, VmStatus::Running);
    let report = sim.availability_report();
    assert_eq!(report.revocations, 2);
    // Downtime comes only from the stateful VM's bounded-time migration;
    // the stateless one live-migrated. Total is therefore well below two
    // migrations' worth of EC2 ops.
    assert!(report.total_downtime.as_secs_f64() < 30.0);
    assert!(report.total_downtime.as_secs_f64() > 1.0);
}

#[test]
fn stateless_fleet_has_zero_backup_cost() {
    let cfg = SpotCheckConfig {
        zone: ZONE.to_string(),
        ..SpotCheckConfig::default()
    };
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 5_000)], cfg);
    let cust = sim.create_customer();
    for _ in 0..3 {
        sim.request_server_opts(cust, WorkloadKind::TpcW, true);
    }
    sim.run_until(SimTime::from_secs(10_000));
    let cost = sim.cost_report();
    assert_eq!(cost.backup_cost, 0.0, "stateless VMs must not pay for backup");
}
