//! End-to-end controller tests: provisioning, revocation fail-over,
//! IP/volume transparency, hot spares, return-to-spot, and slicing.

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::policy::{MappingPolicy, PlacementPolicy};
use spotcheck_core::types::VmStatus;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

const ZONE: &str = "us-east-1a";

/// A calm medium market plus a spike window `[spike_at, spike_end)`.
fn spiky_medium(spike_at: u64, spike_end: u64) -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(spike_at), 0.90),
        (SimTime::from_secs(spike_end), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

/// A flat (never-spiking) medium market.
fn calm_medium() -> PriceTrace {
    let s = StepSeries::from_points(vec![(SimTime::ZERO, 0.014)]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

/// A flat large market at the given price.
fn flat_large(price: f64) -> PriceTrace {
    let s = StepSeries::from_points(vec![(SimTime::ZERO, price)]);
    PriceTrace::new(MarketId::new("m3.large", ZONE), 0.140, s)
}

fn config() -> SpotCheckConfig {
    SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        ..SpotCheckConfig::default()
    }
}

#[test]
fn vm_provisions_on_spot_within_minutes() {
    let mut sim = SpotCheckSim::new(vec![calm_medium()], config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(600));
    let record = sim.controller().vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running);
    assert!(record.host.is_some());
    assert!(record.eni.is_some());
    // Spot boots take 100-409 s (Table 1) plus attach ops.
    let up = record.first_running_at.unwrap();
    assert!(up > SimTime::from_secs(100), "up={up}");
    assert!(up < SimTime::from_secs(500), "up={up}");
    // The VM is protected by a backup server (SpotCheckLazy on spot).
    assert!(record.backup.is_some());
    // The host is a spot instance in the home market.
    assert_eq!(
        record.home_market,
        Some(MarketId::new("m3.medium", ZONE))
    );
}

#[test]
fn revocation_fails_over_to_on_demand_with_bounded_downtime() {
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(3_000));
    let before = sim.controller().vm(vm).unwrap().clone();
    assert_eq!(before.status, VmStatus::Running);

    // Run through the spike.
    sim.run_until(SimTime::from_secs(7_200));
    let record = sim.controller().vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running, "VM must survive the revocation");
    // The VM moved hosts but kept its private IP.
    assert_ne!(record.host, before.host);
    assert_eq!(record.ip, before.ip);
    // It now sits on on-demand (no backup needed there).
    assert!(record.backup.is_none());

    let report = sim.availability_report();
    assert_eq!(report.revocations, 1);
    assert_eq!(report.migrations, 1);
    // Downtime: a handful of seconds of EC2 ops + subsecond mechanism
    // pause — well under a minute, and nonzero.
    let down = report.total_downtime.as_secs_f64();
    assert!(down > 1.0, "downtime={down}");
    assert!(down < 60.0, "downtime={down}");
    // Lazy restoration causes a degraded window.
    assert!(report.total_degraded.as_secs_f64() > 1.0);
}

#[test]
fn vm_returns_to_spot_after_spike_abates() {
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 7_200)], config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    // Through the spike and well past its end.
    sim.run_until(SimTime::from_secs(12_000));
    let record = sim.controller().vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running);
    // Back under spot pricing: the host's market is the home market again
    // and backup protection is re-established.
    assert!(record.backup.is_some(), "returned VM must be re-protected");
    let report = sim.availability_report();
    // One revocation migration + one return migration.
    assert_eq!(report.revocations, 1);
    assert_eq!(report.migrations, 2);

    // Cost sanity: native spend (spot + the spike hour on on-demand) per
    // VM-hour stays below pure on-demand. (The raw report also carries a
    // whole backup server; in production that amortizes over 40 VMs to
    // $0.007/hr — see `BackupServer::amortized_cost_per_vm`.)
    let cost = sim.cost_report();
    assert!(cost.vm_hours > 2.0);
    let native_per_hr = cost.native_cost / cost.vm_hours;
    assert!(native_per_hr < 0.07, "native/hr={native_per_hr}");
    assert!(native_per_hr + 0.007 < 0.07);
    assert!(cost.backup_cost > 0.0, "a backup server was provisioned");
}

#[test]
fn hot_spares_receive_revoked_vms() {
    let cfg = SpotCheckConfig {
        hot_spares: 1,
        ..config()
    };
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], cfg);
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(3_500));
    assert_eq!(sim.controller().idle_spares(), 1);
    sim.run_until(SimTime::from_secs(7_200));
    let record = sim.controller().vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running);
    // The spare was consumed and replenished.
    assert_eq!(sim.controller().idle_spares(), 1);
    // With a spare, the destination is instantly ready: the migration
    // completes quickly after the warning (no ~60 s on-demand boot on the
    // critical path). Downtime is just the EC2 ops.
    let report = sim.availability_report();
    assert!(report.total_downtime.as_secs_f64() < 45.0);
}

#[test]
fn greedy_placement_slices_a_cheap_large_server() {
    // Large at 0.016 total = 0.008/slot vs medium 0.014/slot.
    let cfg = SpotCheckConfig {
        mapping: MappingPolicy::TwoML,
        placement: PlacementPolicy::GreedyCheapest,
        ..config()
    };
    let mut sim = SpotCheckSim::new(vec![calm_medium(), flat_large(0.016)], cfg);
    let cust = sim.create_customer();
    let a = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(600));
    // Second VM should land on the same sliced large host.
    let b = sim.request_server(cust, WorkloadKind::SpecJbb);
    sim.run_until(SimTime::from_secs(1_200));
    let ra = sim.controller().vm(a).unwrap();
    let rb = sim.controller().vm(b).unwrap();
    assert_eq!(ra.status, VmStatus::Running);
    assert_eq!(rb.status, VmStatus::Running);
    assert_eq!(ra.home_market, Some(MarketId::new("m3.large", ZONE)));
    assert_eq!(
        ra.host, rb.host,
        "both VMs should share the sliced m3.large host"
    );
}

#[test]
fn sliced_host_revocation_migrates_all_residents() {
    // Both VMs on one large host; the large market spikes.
    let large = {
        let s = StepSeries::from_points(vec![
            (SimTime::ZERO, 0.016),
            (SimTime::from_secs(3_600), 2.0),
            (SimTime::from_secs(90_000), 0.016),
        ]);
        PriceTrace::new(MarketId::new("m3.large", ZONE), 0.140, s)
    };
    // Medium priced high so greedy picks large.
    let medium = {
        let s = StepSeries::from_points(vec![(SimTime::ZERO, 0.050)]);
        PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
    };
    let cfg = SpotCheckConfig {
        mapping: MappingPolicy::TwoML,
        ..config()
    };
    let mut sim = SpotCheckSim::new(vec![medium, large], cfg);
    let cust = sim.create_customer();
    let a = sim.request_server(cust, WorkloadKind::TpcW);
    let b = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(3_000));
    let host_a = sim.controller().vm(a).unwrap().host;
    assert_eq!(host_a, sim.controller().vm(b).unwrap().host);
    sim.run_until(SimTime::from_secs(7_200));
    let report = sim.availability_report();
    assert_eq!(report.revocations, 2, "both residents revoked together");
    assert_eq!(report.migrations, 2);
    assert_eq!(sim.controller().vm(a).unwrap().status, VmStatus::Running);
    assert_eq!(sim.controller().vm(b).unwrap().status, VmStatus::Running);
    // They land on separate on-demand mediums.
    assert_ne!(
        sim.controller().vm(a).unwrap().host,
        sim.controller().vm(b).unwrap().host
    );
}

#[test]
fn vm_provisioning_during_return_precopy_joins_the_return_host() {
    // Regression test for the free-slot placement index: a return's
    // destination host must become a first-fit candidate the moment it
    // boots — while the live pre-copy is still in flight — exactly as the
    // pre-index full-map scan behaved.
    let large = {
        let s = StepSeries::from_points(vec![
            (SimTime::ZERO, 0.016),
            (SimTime::from_secs(3_600), 2.0),
            (SimTime::from_secs(7_200), 0.016),
        ]);
        PriceTrace::new(MarketId::new("m3.large", ZONE), 0.140, s)
    };
    // Medium priced high so greedy slices the large.
    let medium = {
        let s = StepSeries::from_points(vec![(SimTime::ZERO, 0.050)]);
        PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
    };
    let cfg = SpotCheckConfig {
        mapping: MappingPolicy::TwoML,
        placement: PlacementPolicy::GreedyCheapest,
        ..config()
    };
    let mut sim = SpotCheckSim::new(vec![medium, large], cfg);
    let cust = sim.create_customer();
    let a = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(3_000));
    assert_eq!(
        sim.controller().vm(a).unwrap().home_market,
        Some(MarketId::new("m3.large", ZONE))
    );
    // Ride the spike onto the on-demand refuge.
    sim.run_until(SimTime::from_secs(7_200));

    // Step until the return's spot destination has booted while the VM
    // still sits on on-demand: the pre-copy window (tens of seconds for a
    // 3 GiB image, so second-granularity stepping lands well inside it).
    let mut dest = None;
    for t in 7_201..9_000 {
        sim.run_until(SimTime::from_secs(t));
        let rec = sim.controller().vm(a).unwrap();
        let on_od = rec
            .host
            .and_then(|h| sim.controller().cloud().instance(h).ok())
            .map(|i| i.market().is_none())
            .unwrap_or(false);
        if !on_od {
            continue;
        }
        dest = sim
            .controller()
            .cloud()
            .instances()
            .find(|i| i.market().is_some() && i.is_usable())
            .map(|i| i.id);
        if dest.is_some() {
            break;
        }
    }
    let dest = dest.expect("return destination must boot while the VM is still on-demand");

    // A VM provisioned inside the window must reuse the return host's
    // free slot rather than buying a fresh server.
    let b = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(10_800));
    let rb = sim.controller().vm(b).unwrap();
    assert_eq!(rb.status, VmStatus::Running);
    assert_eq!(
        rb.host,
        Some(dest),
        "B must join the mid-transfer return host"
    );
    // The return completes onto the same (now sliced) host.
    let ra = sim.controller().vm(a).unwrap();
    assert_eq!(ra.status, VmStatus::Running);
    assert_eq!(ra.host, Some(dest));
}

#[test]
fn xen_live_mechanism_counts_no_downtime() {
    let cfg = SpotCheckConfig {
        mechanism: MechanismKind::XenLive,
        ..config()
    };
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], cfg);
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(7_200));
    assert_eq!(sim.controller().vm(vm).unwrap().status, VmStatus::Running);
    let report = sim.availability_report();
    assert_eq!(report.revocations, 1);
    assert_eq!(report.total_downtime, SimDuration::ZERO);
    // Live-only protection means no backup servers at all.
    assert!(sim.controller().vm(vm).unwrap().backup.is_none());
    let cost = sim.cost_report();
    assert_eq!(cost.backup_cost, 0.0);
}

#[test]
fn release_server_terminates_empty_host() {
    let mut sim = SpotCheckSim::new(vec![calm_medium()], config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(600));
    sim.release_server(vm).unwrap();
    sim.run_until(SimTime::from_secs(1_200));
    assert_eq!(sim.controller().vm(vm).unwrap().status, VmStatus::Released);
    // All native instances wind down.
    let usable = sim
        .controller()
        .cloud()
        .instances()
        .filter(|i| i.is_usable())
        .count();
    assert_eq!(usable, 0);
}

#[test]
fn full_restore_mechanism_pays_more_downtime_than_lazy() {
    let run = |mech: MechanismKind| {
        let cfg = SpotCheckConfig {
            mechanism: mech,
            ..config()
        };
        let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], cfg);
        let cust = sim.create_customer();
        let _vm = sim.request_server(cust, WorkloadKind::TpcW);
        sim.run_until(SimTime::from_secs(7_200));
        sim.availability_report().total_downtime
    };
    let lazy = run(MechanismKind::SpotCheckLazy);
    let full = run(MechanismKind::SpotCheckFull);
    let yank = run(MechanismKind::UnoptimizedFull);
    assert!(full > lazy, "full {full} vs lazy {lazy}");
    assert!(yank > full, "yank {yank} vs full {full}");
    // Full restore of a 3 GiB image takes tens of seconds.
    assert!(full.as_secs_f64() > 25.0, "full={full}");
}

#[test]
fn many_customers_provision_and_survive_a_storm() {
    let mut sim = SpotCheckSim::new(vec![spiky_medium(7_200, 90_000)], config());
    let mut vms = Vec::new();
    for _ in 0..4 {
        let cust = sim.create_customer();
        for _ in 0..3 {
            vms.push(sim.request_server(cust, WorkloadKind::TpcW));
        }
    }
    sim.run_until(SimTime::from_secs(14_400));
    for vm in &vms {
        assert_eq!(
            sim.controller().vm(*vm).unwrap().status,
            VmStatus::Running,
            "{vm} must survive"
        );
    }
    let report = sim.availability_report();
    assert_eq!(report.vms, 12);
    assert_eq!(report.revocations, 12, "all VMs hit by the storm");
    assert_eq!(report.migrations, 12);
    // Every VM kept its distinct private IP.
    let mut ips: Vec<_> = vms
        .iter()
        .map(|v| sim.controller().vm_ip(*v).unwrap())
        .collect();
    ips.sort();
    ips.dedup();
    assert_eq!(ips.len(), 12);
}
