//! End-to-end journal test: a revocation → bounded-time migration →
//! lazy-restore run must leave the expected ordered trail of structured
//! records in the (always-on) journal, and the counters must agree with
//! the availability report.

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::journal::{Entry, Record, Subsystem};
use spotcheck_core::policy::MappingPolicy;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

const ZONE: &str = "us-east-1a";

fn spiky_medium(spike_at: u64, spike_end: u64) -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(spike_at), 0.90),
        (SimTime::from_secs(spike_end), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

fn config() -> SpotCheckConfig {
    SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        ..SpotCheckConfig::default()
    }
}

/// A named journal predicate for [`assert_ordered_subsequence`].
type Step = (&'static str, Box<dyn Fn(&Entry) -> bool>);

/// Asserts that `entries` contains the `expected` records as an ordered
/// subsequence (other records may be interleaved between them).
fn assert_ordered_subsequence(entries: &[Entry], expected: &[Step]) {
    let mut want = expected.iter();
    let mut current = want.next();
    for e in entries {
        if let Some((_, pred)) = current {
            if pred(e) {
                current = want.next();
            }
        }
    }
    if let Some((name, _)) = current {
        let kinds: Vec<_> = entries.iter().map(|e| e.record.kind()).collect();
        panic!("journal never reached expected record {name:?}; kinds seen: {kinds:?}");
    }
}

#[test]
fn revocation_migration_leaves_ordered_journal_trail() {
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(7_200));

    let journal = sim.journal();
    assert!(!journal.is_empty(), "journal must be on by default");

    // The canonical trail of a revocation handled by bounded-time
    // migration: provision completes, the warning lands, the migration's
    // state machine walks prep → detaching → attaching → completed, and
    // the VM is running again.
    let steps: Vec<Step> = vec![
        ("vm provisioning→running", Box::new(move |e: &Entry| {
            matches!(
                e.record,
                Record::VmStatus { vm: v, from: "provisioning", to: "running" } if v == vm
            )
        })),
        ("revocation warning", Box::new(move |e: &Entry| {
            e.subsystem == Subsystem::Recovery && matches!(e.record, Record::Warning { .. })
        })),
        ("vm running→migrating", Box::new(move |e: &Entry| {
            matches!(
                e.record,
                Record::VmStatus { vm: v, from: "running", to: "migrating" } if v == vm
            )
        })),
        ("mig_started", Box::new(move |e: &Entry| {
            matches!(
                e.record,
                Record::MigStarted { vm: v, live: false, proactive: false, .. } if v == vm
            )
        })),
        ("mig prep→detaching", Box::new(move |e: &Entry| {
            e.subsystem == Subsystem::Migration
                && matches!(
                    e.record,
                    Record::MigPhase { from: "prep", to: "detaching", .. }
                )
        })),
        ("mig detaching→attaching", Box::new(move |e: &Entry| {
            matches!(
                e.record,
                Record::MigPhase { from: "detaching", to: "attaching", .. }
            )
        })),
        ("mig attaching→completed", Box::new(move |e: &Entry| {
            matches!(
                e.record,
                Record::MigPhase { from: "attaching", to: "completed", .. }
            )
        })),
        ("mig_completed", Box::new(move |e: &Entry| {
            matches!(e.record, Record::MigCompleted { vm: v, .. } if v == vm)
        })),
        ("vm migrating→running", Box::new(move |e: &Entry| {
            matches!(
                e.record,
                Record::VmStatus { vm: v, from: "migrating", to: "running" } if v == vm
            )
        })),
    ];
    assert_ordered_subsequence(journal.entries(), &steps);

    // Timestamps never run backwards.
    for pair in journal.entries().windows(2) {
        assert!(pair[0].at <= pair[1].at, "journal times must be monotone");
    }

    // Counters agree with the simulated outcome.
    let c = sim.journal().counters();
    assert_eq!(c.migrations_started, 1);
    assert_eq!(c.migrations_completed, 1);
    assert_eq!(c.migrations_aborted, 0);
    assert_eq!(c.revocation_warnings, 1);
    assert_eq!(c.illegal_transitions, 0, "healthy runs take no illegal transitions");
    assert!(c.spot_requests >= 1, "initial provision buys spot");
    assert!(c.on_demand_requests >= 1, "fail-over buys on-demand");
    assert!(c.attaches >= 4, "provision + migration each attach ENI and volume");
    assert!(c.effects > 0 && c.schedules > 0);

    // And with the availability report (the report is derived from the
    // accounting ledger, the counters from the journal: two independent
    // paths to the same facts).
    let report = sim.availability_report();
    assert_eq!(report.revocations, c.revocation_warnings);
    assert_eq!(report.migrations, c.migrations_completed);

    // The JSON dump carries every stored entry with the documented shape.
    let json = sim.journal().to_json();
    assert!(json.contains("\"counters\""));
    assert!(json.contains("\"kind\": \"mig_completed\""));
    assert_eq!(json.matches("\"t\": ").count(), journal.len());
}

#[test]
fn lazy_restore_window_is_journaled_as_degraded_lifecycle() {
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], config());
    let cust = sim.create_customer();
    let vm = sim.request_server(cust, WorkloadKind::TpcW);
    sim.run_until(SimTime::from_secs(7_200));

    // SpotCheckLazy restores lazily: after the migration completes the VM
    // re-enters service degraded, then returns to normal. The journal
    // records both the backup-protection lifecycle and the completed
    // migration for the same VM.
    let j = sim.journal();
    assert!(
        j.of_kind("backup_assigned")
            .any(|e| matches!(e.record, Record::BackupAssigned { vm: v } if v == vm)),
        "spot placement must assign a backup"
    );
    assert!(
        j.of_kind("checkpoint_acked").count() >= 1,
        "backup must ack a checkpoint"
    );
    let migration_records = j.of_subsystem(Subsystem::Migration).count();
    assert!(migration_records >= 4, "got {migration_records}");
}
