//! End-to-end tests of the fleet-wide bandwidth contention model: a solo
//! revocation must still meet the 30 s guarantee, a revocation storm must
//! genuinely violate it when undefended, and the defenses must measurably
//! reduce the violation rate (with every fallback journaled and charged).

use spotcheck_core::config::{ContentionConfig, SpotCheckConfig};
use spotcheck_core::driver::SpotCheckSim;
use spotcheck_core::journal::Record;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

const ZONE: &str = "us-east-1a";

fn spiky_medium(spike_at: u64, spike_end: u64) -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(spike_at), 0.90),
        (SimTime::from_secs(spike_end), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

fn config(contention: ContentionConfig) -> SpotCheckConfig {
    SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        contention,
        ..SpotCheckConfig::default()
    }
}

/// A pathologically oversubscribed backup-tier aggregate: 1 Gbit of AZ
/// uplink shared by the whole fleet. Sixty concurrent ~99 MB final
/// commits plus their checkpoint streams genuinely overrun it — the
/// aggregate residue alone needs ~48 s of drain, so fair sharing
/// stretches the ~0.8 s solo flush far past the 30 s bound.
fn oversubscribed(base: ContentionConfig) -> ContentionConfig {
    ContentionConfig {
        az_uplink_bps: 125e6,
        ..base
    }
}

/// Runs `n` VMs into a fleet-wide revocation storm at hour one and
/// returns the finished simulation.
fn run_storm(n: usize, contention: ContentionConfig) -> SpotCheckSim {
    let mut sim = SpotCheckSim::new(vec![spiky_medium(3_600, 90_000)], config(contention));
    for _ in 0..n {
        let cust = sim.create_customer();
        sim.request_server(cust, WorkloadKind::TpcW);
    }
    sim.run_until(SimTime::from_secs(7_200));
    sim
}

#[test]
fn solo_revocation_meets_the_guarantee_under_contention() {
    let sim = run_storm(1, ContentionConfig::enabled_undefended());
    let report = sim.violation_report();
    assert_eq!(report.migrations_started, 1);
    assert_eq!(
        report.violations, 0,
        "an uncontended commit must reproduce the closed-form timing and land in time"
    );
    let c = sim.journal().counters();
    assert_eq!(c.migrations_completed, 1);
}

#[test]
fn storm_blows_the_guarantee_undefended_and_defenses_reduce_it() {
    const STORM: usize = 60;
    let undefended = run_storm(STORM, oversubscribed(ContentionConfig::enabled_undefended()));
    let defended = run_storm(STORM, oversubscribed(ContentionConfig::enabled_defended()));

    let u = undefended.violation_report();
    let d = defended.violation_report();
    assert!(
        u.violations > 0,
        "a {STORM}-VM storm must overrun the shared links and violate the bound: {u:?}"
    );
    assert!(
        d.violations < u.violations,
        "defenses must measurably lower the violation count: defended {d:?} vs undefended {u:?}"
    );

    // The violations carry a cause taxonomy that adds up.
    assert_eq!(
        u.violations,
        u.contention + u.queue_wait + u.residue_lost,
        "every violation must be attributed to a cause: {u:?}"
    );
    assert_eq!(d.violations, d.contention + d.queue_wait + d.residue_lost);

    // Every storm VM still ends up running: violations cost availability
    // (stale restores, honest downtime), never correctness.
    for sim in [&undefended, &defended] {
        let counts = sim.controller().status_counts();
        assert_eq!(counts.get("running").copied().unwrap_or(0), STORM);
    }
}

#[test]
fn fallback_yanks_are_journaled_and_charged() {
    const STORM: usize = 60;
    let fallback_only = oversubscribed(ContentionConfig {
        fallback: true,
        ..ContentionConfig::enabled_undefended()
    });
    let sim = run_storm(STORM, fallback_only);
    let report = sim.violation_report();
    assert!(
        report.fallback_yanks > 0,
        "a storm this size must trip the pause-and-flush fallback: {report:?}"
    );
    // Each yank leaves a journal record naming its migration and VM.
    let yanks = sim
        .journal()
        .entries()
        .iter()
        .filter(|e| matches!(e.record, Record::FallbackYank { .. }))
        .count() as u64;
    assert_eq!(yanks, report.fallback_yanks);
    // Pause-and-flush charges real downtime: the availability report must
    // show strictly more downtime than a run that never pauses early.
    let avail = sim.availability_report();
    assert!(
        !avail.total_downtime.is_zero(),
        "yanked VMs must be charged their pause"
    );
}

#[test]
fn disabled_contention_leaves_the_closed_form_model_untouched() {
    let sim = run_storm(10, ContentionConfig::default());
    let report = sim.violation_report();
    assert_eq!(report.violations, 0);
    assert_eq!(report.fallback_yanks, 0);
    assert_eq!(report.commits_queued, 0);
    let c = sim.journal().counters();
    assert_eq!(c.migrations_started, 10);
    assert_eq!(c.migrations_completed, 10);
}

/// Diagnostic (not part of the suite): prints the violation reports of
/// all three defense configurations for the standard 60-VM storm.
#[test]
#[ignore]
fn storm_defense_matrix() {
    for (name, cc) in [
        ("undefended", oversubscribed(ContentionConfig::enabled_undefended())),
        ("defended", oversubscribed(ContentionConfig::enabled_defended())),
        ("fallback-only", oversubscribed(ContentionConfig {
            fallback: true,
            ..ContentionConfig::enabled_undefended()
        })),
    ] {
        let sim = run_storm(60, cc);
        println!("{name:>14}: {:?}", sim.violation_report());
    }
}
