//! Seeded property test for the migration state machine.
//!
//! Drives long random operation sequences through [`MigrationFsm`] and
//! checks every outcome against an independent model of the legal
//! transition relation: every transition the model says is reachable must
//! be accepted, every other attempt must come back as a typed
//! [`IllegalTransition`] naming the phase and the refused operation — and
//! must leave the machine bit-for-bit untouched.

use spotcheck_core::{IllegalTransition, MigPhase, MigrationFsm};

/// Deterministic splitmix64-style generator; no external crates needed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// The operations a driver can attempt, with their journal/error names.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)]
enum Op {
    StartCommit,
    NoteCommitDone,
    NoteDestReady,
    DestLost,
    BeginDetach(u8),
    OpDone,
    BeginAttach(u8),
    Complete,
    Abort,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::StartCommit => "start_commit",
            Op::NoteCommitDone => "note_commit_done",
            Op::NoteDestReady => "note_dest_ready",
            Op::DestLost => "dest_lost",
            Op::BeginDetach(_) => "begin_detach",
            Op::OpDone => "op_done",
            Op::BeginAttach(_) => "begin_attach",
            Op::Complete => "complete",
            Op::Abort => "abort",
        }
    }
}

/// An independent re-statement of the transition relation, kept
/// deliberately separate from the implementation in `controller::fsm`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Model {
    phase: MigPhase,
    commit_started: bool,
    commit_done: bool,
    dest_ready: bool,
    pending: u8,
}

impl Model {
    fn fresh() -> Self {
        Model {
            phase: MigPhase::Prep,
            commit_started: false,
            commit_done: false,
            dest_ready: false,
            pending: 0,
        }
    }

    fn recovered() -> Self {
        Model {
            commit_started: true,
            commit_done: true,
            ..Model::fresh()
        }
    }

    /// Applies `op` if the relation allows it; returns whether it was legal.
    fn apply(&mut self, op: Op) -> bool {
        let terminal = matches!(self.phase, MigPhase::Completed | MigPhase::Aborted);
        match op {
            Op::StartCommit => {
                if terminal {
                    return false;
                }
                self.commit_started = true;
                true
            }
            Op::NoteCommitDone => {
                if terminal || !self.commit_started || self.commit_done {
                    return false;
                }
                self.commit_done = true;
                true
            }
            Op::NoteDestReady => {
                if self.phase != MigPhase::Prep || self.dest_ready {
                    return false;
                }
                self.dest_ready = true;
                true
            }
            Op::DestLost => {
                if self.phase != MigPhase::Prep {
                    return false;
                }
                self.dest_ready = false;
                true
            }
            Op::BeginDetach(p) => {
                if self.phase != MigPhase::Prep || !self.commit_done || !self.dest_ready {
                    return false;
                }
                self.phase = MigPhase::Detaching;
                self.pending = p;
                true
            }
            Op::OpDone => {
                if !matches!(self.phase, MigPhase::Detaching | MigPhase::Attaching)
                    || self.pending == 0
                {
                    return false;
                }
                self.pending -= 1;
                true
            }
            Op::BeginAttach(p) => {
                if self.phase != MigPhase::Detaching || self.pending != 0 {
                    return false;
                }
                self.phase = MigPhase::Attaching;
                self.pending = p;
                true
            }
            Op::Complete => {
                if self.phase != MigPhase::Attaching || self.pending != 0 {
                    return false;
                }
                self.phase = MigPhase::Completed;
                true
            }
            Op::Abort => {
                if terminal {
                    return false;
                }
                self.phase = MigPhase::Aborted;
                true
            }
        }
    }
}

fn snapshot(f: &MigrationFsm) -> (MigPhase, bool, bool, bool, u8) {
    (
        f.phase(),
        f.commit_started(),
        f.commit_done(),
        f.dest_ready(),
        f.pending(),
    )
}

fn model_snapshot(m: &Model) -> (MigPhase, bool, bool, bool, u8) {
    (
        m.phase,
        m.commit_started,
        m.commit_done,
        m.dest_ready,
        m.pending,
    )
}

fn op_from_index(idx: u64, rng: &mut Rng) -> Op {
    match idx {
        0 => Op::StartCommit,
        1 => Op::NoteCommitDone,
        2 => Op::NoteDestReady,
        3 => Op::DestLost,
        4 => Op::BeginDetach(rng.below(4) as u8),
        5 => Op::OpDone,
        6 => Op::BeginAttach(rng.below(4) as u8),
        7 => Op::Complete,
        _ => Op::Abort,
    }
}

/// Half the time a uniformly random operation (probing the illegal side of
/// the relation), half the time one the model says is currently legal
/// (so walks actually make progress to the terminal phases — a pure
/// uniform walk aborts long before ever completing). Abort is excluded
/// from the guided picks except on a rare roll, or the walk would still
/// almost never survive nine guided steps.
fn random_op(rng: &mut Rng, m: &Model) -> Op {
    if rng.below(2) == 0 {
        return op_from_index(rng.below(9), rng);
    }
    let mut legal = Vec::new();
    for idx in 0..9u64 {
        let op = op_from_index(idx, rng);
        let mut probe = *m;
        if probe.apply(op) && (idx != 8 || rng.below(32) == 0) {
            legal.push(op);
        }
    }
    if legal.is_empty() {
        op_from_index(rng.below(9), rng)
    } else {
        legal[rng.below(legal.len() as u64) as usize]
    }
}

/// Attempts `op` on both machine and model and cross-checks the verdicts.
/// Returns `(legal, step_error)`.
fn step(f: &mut MigrationFsm, m: &mut Model, op: Op) -> (bool, Option<IllegalTransition>) {
    let before = snapshot(f);
    let expect_legal = {
        let mut probe = *m;
        probe.apply(op)
    };
    let result: Result<(), IllegalTransition> = match op {
        Op::StartCommit => f.start_commit().map(|_| ()),
        Op::NoteCommitDone => f.note_commit_done(),
        Op::NoteDestReady => f.note_dest_ready(),
        Op::DestLost => f.dest_lost(),
        Op::BeginDetach(p) => f.begin_detach(p),
        Op::OpDone => f.op_done().map(|_| ()),
        Op::BeginAttach(p) => f.begin_attach(p),
        Op::Complete => f.complete(),
        Op::Abort => f.abort(),
    };
    match result {
        Ok(()) => {
            assert!(
                expect_legal,
                "machine accepted {:?} which the model says is unreachable from {:?}",
                op, before
            );
            m.apply(op);
            assert_eq!(
                snapshot(f),
                model_snapshot(m),
                "machine and model diverged after legal {:?}",
                op
            );
            (true, None)
        }
        Err(e) => {
            assert!(
                !expect_legal,
                "machine refused {:?} which the model says is reachable from {:?}: {}",
                op, before, e
            );
            assert_eq!(e.from, before.0, "error must name the refusing phase");
            assert_eq!(e.attempted, op.name(), "error must name the refused op");
            assert_eq!(
                snapshot(f),
                before,
                "a refused transition must not mutate the machine"
            );
            (false, Some(e))
        }
    }
}

#[test]
fn random_sequences_match_the_model() {
    let mut legal_seen = [false; 9];
    let mut illegal_seen = [false; 9];
    for seed in 0..64u64 {
        let mut rng = Rng::new(0x5eed_0000 + seed);
        let (mut f, mut m) = if seed % 4 == 0 {
            (MigrationFsm::recovered(), Model::recovered())
        } else {
            (MigrationFsm::new(), Model::fresh())
        };
        for _ in 0..512 {
            let op = random_op(&mut rng, &m);
            let idx = op_index(op);
            let (legal, _) = step(&mut f, &mut m, op);
            if legal {
                legal_seen[idx] = true;
            } else {
                illegal_seen[idx] = true;
            }
            // Terminal machines refuse everything; after a few probes of
            // that, restart the walk so the seed keeps earning coverage.
            if matches!(m.phase, MigPhase::Completed | MigPhase::Aborted) && rng.below(4) == 0 {
                if rng.below(4) == 0 {
                    f = MigrationFsm::recovered();
                    m = Model::recovered();
                } else {
                    f = MigrationFsm::new();
                    m = Model::fresh();
                }
            }
        }
    }
    // The walk must actually exercise the relation from both sides: every
    // operation observed at least once legal and at least once refused
    // (start_commit and abort are legal from every non-terminal phase, so
    // only their refusals depend on reaching a terminal phase first).
    for (i, (l, il)) in legal_seen.iter().zip(illegal_seen.iter()).enumerate() {
        assert!(*l, "operation #{i} was never exercised legally");
        assert!(*il, "operation #{i} was never exercised illegally");
    }
}

fn op_index(op: Op) -> usize {
    match op {
        Op::StartCommit => 0,
        Op::NoteCommitDone => 1,
        Op::NoteDestReady => 2,
        Op::DestLost => 3,
        Op::BeginDetach(_) => 4,
        Op::OpDone => 5,
        Op::BeginAttach(_) => 6,
        Op::Complete => 7,
        Op::Abort => 8,
    }
}

#[test]
fn every_reachable_happy_path_interleaving_is_legal() {
    // The three Prep-phase gates (commit start, commit done after start,
    // dest ready) commute: any interleaving must reach ready_to_detach.
    let orders: [[usize; 3]; 3] = [[0, 1, 2], [2, 0, 1], [0, 2, 1]];
    for order in orders {
        let mut f = MigrationFsm::new();
        for gate in order {
            match gate {
                0 => assert_eq!(f.start_commit(), Ok(true)),
                1 => f.note_commit_done().expect("commit_done after start"),
                2 => f.note_dest_ready().expect("dest_ready in Prep"),
                _ => unreachable!(),
            }
        }
        assert!(f.ready_to_detach());
        f.begin_detach(2).unwrap();
        f.op_done().unwrap();
        f.op_done().unwrap();
        f.begin_attach(1).unwrap();
        f.op_done().unwrap();
        f.complete().unwrap();
        assert_eq!(f.phase(), MigPhase::Completed);
    }
}

#[test]
fn dest_flapping_in_prep_is_legal_and_gates_detach() {
    let mut f = MigrationFsm::new();
    f.start_commit().unwrap();
    f.note_commit_done().unwrap();
    f.note_dest_ready().unwrap();
    f.dest_lost().unwrap();
    assert!(!f.ready_to_detach());
    assert_eq!(
        f.begin_detach(1),
        Err(IllegalTransition {
            from: MigPhase::Prep,
            attempted: "begin_detach",
        })
    );
    f.note_dest_ready().unwrap();
    assert!(f.ready_to_detach());
}
