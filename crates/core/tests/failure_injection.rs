//! Failure-injection tests: on-demand stockouts (§4.3 "requests for
//! on-demand servers fail because they are unavailable"), forced
//! termination racing the migration pipeline, and revocation storms while
//! other VMs are still provisioning.

use spotcheck_cloudsim::cloud::{CloudConfig, CloudSim};
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::controller::Controller;
use spotcheck_core::events::Event;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::types::VmStatus;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_simcore::engine::{Scheduler, Simulation, World};
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

const ZONE: &str = "us-east-1a";

fn spiky_medium(spike_at: u64, spike_end: u64) -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(spike_at), 0.90),
        (SimTime::from_secs(spike_end), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

/// A driver that lets tests build the cloud with custom failure knobs.
struct Driver {
    controller: Controller,
}

impl World for Driver {
    type Event = Event;
    fn handle(&mut self, event: Event, sched: &mut Scheduler<'_, Event>) {
        for (t, e) in self.controller.handle_event(event, sched.now()) {
            sched.at(t, e);
        }
    }
}

impl Driver {
    fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }
}

fn sim_with_stockouts(
    trace: PriceTrace,
    stockout_prob: f64,
    config: SpotCheckConfig,
) -> Simulation<Driver> {
    let cloud = CloudSim::new(
        vec![trace],
        CloudConfig {
            on_demand_stockout_prob: stockout_prob,
            seed: config.seed,
            ..CloudConfig::default()
        },
    );
    let mut controller = Controller::new(cloud, config);
    let boot = controller.bootstrap(SimTime::ZERO);
    let mut sim = Simulation::new(Driver { controller });
    for (t, e) in boot {
        sim.schedule_at(t, e);
    }
    sim
}

#[test]
fn vm_survives_revocation_despite_on_demand_stockouts() {
    // 60% of on-demand requests fail. The controller must keep retrying
    // (the VM's state sits safely on the backup server) and eventually
    // land the VM.
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        seed: 3,
        ..SpotCheckConfig::default()
    };
    let mut sim = sim_with_stockouts(spiky_medium(3_600, 90_000), 0.6, config);
    let (vm, out) = {
        let c = sim.world_mut().controller_mut();
        let cust = c.create_customer();
        c.request_server(cust, WorkloadKind::TpcW, SimTime::ZERO)
            .unwrap()
    };
    for (t, e) in out {
        sim.schedule_at(t, e);
    }
    sim.run_until(SimTime::from_secs(10_800));
    let c = sim.world_mut().controller_mut();
    assert_eq!(
        c.vm(vm).unwrap().status,
        VmStatus::Running,
        "the VM must eventually land on an on-demand server"
    );
    let report = c.availability_report(SimTime::from_secs(10_800));
    assert_eq!(report.revocations, 1);
    assert_eq!(report.migrations, 1);
    // Retries cost time, but the VM never lost state: downtime is bounded
    // by minutes, not the whole spike.
    assert!(report.total_downtime < SimDuration::from_secs(600));
}

#[test]
fn hot_spare_bridges_total_stockout() {
    // On-demand requests *always* fail after bootstrap, but a pre-existing
    // hot spare absorbs the revoked VM.
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        hot_spares: 1,
        seed: 5,
        ..SpotCheckConfig::default()
    };
    // Stockout probability 0 during bootstrap is not separable here, so
    // use a seed where the single bootstrap spare request succeeds at
    // p=0.5 and later requests keep failing or not — the spare is what
    // guarantees the landing.
    let mut sim = sim_with_stockouts(spiky_medium(3_600, 90_000), 0.5, config);
    let (vm, out) = {
        let c = sim.world_mut().controller_mut();
        let cust = c.create_customer();
        c.request_server(cust, WorkloadKind::TpcW, SimTime::ZERO)
            .unwrap()
    };
    for (t, e) in out {
        sim.schedule_at(t, e);
    }
    sim.run_until(SimTime::from_secs(10_800));
    let c = sim.world_mut().controller_mut();
    assert_eq!(c.vm(vm).unwrap().status, VmStatus::Running);
}

#[test]
fn revocation_during_provisioning_retries_cleanly() {
    // The spike hits while the VM is still attaching its ENI/volume on the
    // doomed spot host: the attach fails, provisioning restarts, and the
    // VM comes up (on on-demand, since the spot market is under water).
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        seed: 11,
        ..SpotCheckConfig::default()
    };
    // Spike at t=150s: spot boots take 100-409 s, so the revocation
    // usually lands mid-boot or mid-attach (and occasionally just after
    // the VM came up — also a valid race to survive).
    let mut sim = sim_with_stockouts(spiky_medium(150, 90_000), 0.0, config);
    let (vm, out) = {
        let c = sim.world_mut().controller_mut();
        let cust = c.create_customer();
        c.request_server(cust, WorkloadKind::TpcW, SimTime::ZERO)
            .unwrap()
    };
    for (t, e) in out {
        sim.schedule_at(t, e);
    }
    sim.run_until(SimTime::from_secs(3_600));
    let c = sim.world_mut().controller_mut();
    let record = c.vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running, "provisioning must recover");
    let report = c.availability_report(SimTime::from_secs(3_600));
    if report.migrations == 0 {
        // The attach failed on the dying host and provisioning restarted:
        // the VM was never up, so no downtime may be recorded.
        assert_eq!(report.total_downtime, SimDuration::ZERO);
    } else {
        // The VM won the race, came up, and was migrated normally.
        assert!(report.total_downtime < SimDuration::from_secs(60));
    }
}
