//! Failure-injection tests: on-demand stockouts (§4.3 "requests for
//! on-demand servers fail because they are unavailable"), forced
//! termination racing the migration pipeline, revocation storms while
//! other VMs are still provisioning, and seeded chaos plans mixing backup
//! failures, crashes, storms, and transient API errors.

use std::collections::BTreeMap;

use spotcheck_cloudsim::cloud::{CloudConfig, CloudSim};
use spotcheck_cloudsim::faults::{FaultEvent, FaultPlan};
use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::controller::Controller;
use spotcheck_core::events::Event;
use spotcheck_core::policy::MappingPolicy;
use spotcheck_core::retry::ResilienceConfig;
use spotcheck_core::sim::standard_traces;
use spotcheck_core::types::VmStatus;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::engine::{Scheduler, Simulation, World};
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

const ZONE: &str = "us-east-1a";

fn spiky_medium(spike_at: u64, spike_end: u64) -> PriceTrace {
    let s = StepSeries::from_points(vec![
        (SimTime::ZERO, 0.014),
        (SimTime::from_secs(spike_at), 0.90),
        (SimTime::from_secs(spike_end), 0.014),
    ]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

/// A driver that lets tests build the cloud with custom failure knobs.
struct Driver {
    controller: Controller,
}

impl World for Driver {
    type Event = Event;
    fn handle(&mut self, event: Event, sched: &mut Scheduler<'_, Event>) {
        for (t, e) in self.controller.handle_event(event, sched.now()) {
            sched.at(t, e);
        }
    }
}

impl Driver {
    fn controller(&self) -> &Controller {
        &self.controller
    }

    fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }
}

fn sim_with_faults(
    traces: Vec<PriceTrace>,
    stockout_prob: f64,
    config: SpotCheckConfig,
    faults: FaultPlan,
) -> Simulation<Driver> {
    let cloud = CloudSim::new(
        traces,
        CloudConfig {
            on_demand_stockout_prob: stockout_prob,
            seed: config.seed,
            faults,
            ..CloudConfig::default()
        },
    );
    let mut controller = Controller::new(cloud, config);
    let boot = controller.bootstrap(SimTime::ZERO);
    let mut sim = Simulation::new(Driver { controller });
    for (t, e) in boot {
        sim.schedule_at(t, e);
    }
    sim
}

fn sim_with_stockouts(
    trace: PriceTrace,
    stockout_prob: f64,
    config: SpotCheckConfig,
) -> Simulation<Driver> {
    sim_with_faults(vec![trace], stockout_prob, config, FaultPlan::none())
}

fn request_vms(sim: &mut Simulation<Driver>, n: usize, stateless_last: bool) -> Vec<NestedVmId> {
    let (vms, out) = {
        let c = sim.world_mut().controller_mut();
        let cust = c.create_customer();
        let mut vms = Vec::new();
        let mut out = Vec::new();
        for i in 0..n {
            let stateless = stateless_last && i == n - 1;
            let (vm, o) = c
                .request_server_opts(cust, WorkloadKind::TpcW, stateless, SimTime::ZERO)
                .unwrap();
            vms.push(vm);
            out.extend(o);
        }
        (vms, out)
    };
    for (t, e) in out {
        sim.schedule_at(t, e);
    }
    vms
}

#[test]
fn vm_survives_revocation_despite_on_demand_stockouts() {
    // 60% of on-demand requests fail. The controller must keep retrying
    // (the VM's state sits safely on the backup server) and eventually
    // land the VM.
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        seed: 3,
        ..SpotCheckConfig::default()
    };
    let mut sim = sim_with_stockouts(spiky_medium(3_600, 90_000), 0.6, config);
    let (vm, out) = {
        let c = sim.world_mut().controller_mut();
        let cust = c.create_customer();
        c.request_server(cust, WorkloadKind::TpcW, SimTime::ZERO)
            .unwrap()
    };
    for (t, e) in out {
        sim.schedule_at(t, e);
    }
    sim.run_until(SimTime::from_secs(10_800));
    let c = sim.world_mut().controller_mut();
    assert_eq!(
        c.vm(vm).unwrap().status,
        VmStatus::Running,
        "the VM must eventually land on an on-demand server"
    );
    let report = c.availability_report(SimTime::from_secs(10_800));
    assert_eq!(report.revocations, 1);
    assert_eq!(report.migrations, 1);
    // Retries cost time, but the VM never lost state: downtime is bounded
    // by minutes, not the whole spike.
    assert!(report.total_downtime < SimDuration::from_secs(600));
}

#[test]
fn hot_spare_bridges_total_stockout() {
    // On-demand requests *always* fail after bootstrap, but a pre-existing
    // hot spare absorbs the revoked VM.
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        hot_spares: 1,
        seed: 5,
        ..SpotCheckConfig::default()
    };
    // Stockout probability 0 during bootstrap is not separable here, so
    // use a seed where the single bootstrap spare request succeeds at
    // p=0.5 and later requests keep failing or not — the spare is what
    // guarantees the landing.
    let mut sim = sim_with_stockouts(spiky_medium(3_600, 90_000), 0.5, config);
    let (vm, out) = {
        let c = sim.world_mut().controller_mut();
        let cust = c.create_customer();
        c.request_server(cust, WorkloadKind::TpcW, SimTime::ZERO)
            .unwrap()
    };
    for (t, e) in out {
        sim.schedule_at(t, e);
    }
    sim.run_until(SimTime::from_secs(10_800));
    let c = sim.world_mut().controller_mut();
    assert_eq!(c.vm(vm).unwrap().status, VmStatus::Running);
}

#[test]
fn revocation_during_provisioning_retries_cleanly() {
    // The spike hits while the VM is still attaching its ENI/volume on the
    // doomed spot host: the attach fails, provisioning restarts, and the
    // VM comes up (on on-demand, since the spot market is under water).
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        seed: 11,
        ..SpotCheckConfig::default()
    };
    // Spike at t=150s: spot boots take 100-409 s, so the revocation
    // usually lands mid-boot or mid-attach (and occasionally just after
    // the VM came up — also a valid race to survive).
    let mut sim = sim_with_stockouts(spiky_medium(150, 90_000), 0.0, config);
    let (vm, out) = {
        let c = sim.world_mut().controller_mut();
        let cust = c.create_customer();
        c.request_server(cust, WorkloadKind::TpcW, SimTime::ZERO)
            .unwrap()
    };
    for (t, e) in out {
        sim.schedule_at(t, e);
    }
    sim.run_until(SimTime::from_secs(3_600));
    let c = sim.world_mut().controller_mut();
    let record = c.vm(vm).unwrap();
    assert_eq!(record.status, VmStatus::Running, "provisioning must recover");
    let report = c.availability_report(SimTime::from_secs(3_600));
    if report.migrations == 0 {
        // The attach failed on the dying host and provisioning restarted:
        // the VM was never up, so no downtime may be recorded.
        assert_eq!(report.total_downtime, SimDuration::ZERO);
    } else {
        // The VM won the race, came up, and was migrated normally.
        assert!(report.total_downtime < SimDuration::from_secs(60));
    }
}

fn flat_medium() -> PriceTrace {
    let s = StepSeries::from_points(vec![(SimTime::ZERO, 0.014)]);
    PriceTrace::new(MarketId::new("m3.medium", ZONE), 0.070, s)
}

#[test]
fn seeded_chaos_never_loses_a_vm() {
    // Randomized chaos plans (backup failures, revocation storms, instance
    // crashes, latency spikes, 5-15% transient API errors) on top of 30%
    // on-demand stockouts. Across seeds: no VM may ever end up Lost, and a
    // VM's last-acked checkpoint may only move forward in time — committed
    // state is never older than what the backup acked.
    for seed in [1u64, 2, 3, 5, 8] {
        let horizon = SimDuration::from_days(2);
        let traces = standard_traces(ZONE, horizon, seed);
        let markets: Vec<MarketId> = traces.iter().map(|t| t.market.clone()).collect();
        // Keep crashes at least 900 s clear of backup failures so every
        // crash is recoverable by construction (re-pushes take ~26 s).
        let plan = FaultPlan::randomized(seed, &markets, horizon, SimDuration::from_secs(900));
        let config = SpotCheckConfig {
            zone: ZONE.to_string(),
            mapping: MappingPolicy::OneM,
            mechanism: MechanismKind::SpotCheckLazy,
            seed,
            ..SpotCheckConfig::default()
        };
        let mut sim = sim_with_faults(traces, 0.3, config, plan);
        let vms = request_vms(&mut sim, 5, true);

        let end = SimTime::ZERO + horizon;
        let mut last_acked: BTreeMap<NestedVmId, SimTime> = BTreeMap::new();
        let mut t = SimTime::ZERO;
        while t < end {
            t = (t + SimDuration::from_hours(1)).min(end);
            sim.run_until(t);
            let c = sim.world().controller();
            for &vm in &vms {
                if let Some(acked) = c.vm(vm).unwrap().checkpoint_acked_at {
                    assert!(acked <= t, "seed {seed}: checkpoint acked in the future");
                    if let Some(prev) = last_acked.get(&vm) {
                        assert!(
                            acked >= *prev,
                            "seed {seed}: {vm:?} checkpoint ack moved backwards"
                        );
                    }
                    last_acked.insert(vm, acked);
                }
            }
        }

        let c = sim.world_mut().controller_mut();
        let counts = c.status_counts();
        assert_eq!(
            counts.get("lost").copied().unwrap_or(0),
            0,
            "seed {seed}: no VM may be lost under chaos with resilience on"
        );
        let report = c.availability_report(end);
        assert_eq!(report.lost_vms, 0, "seed {seed}");
        assert_eq!(report.vms, 5, "seed {seed}: {counts:?}");
        assert!(
            report.backup_failures >= 1,
            "seed {seed}: the plan guarantees at least one backup failure"
        );
    }
}

#[test]
fn backup_failure_storm_and_stockouts_recover_cleanly() {
    // The ISSUE acceptance scenario: a backup-server failure, then a
    // revocation storm across the whole pool, with 60% of on-demand
    // requests failing. Every VM must survive, the orphan must be
    // re-protected via re-replication, and the unprotected window must be
    // visible in the report (roughly one 3 GiB push over the 1 Gbps NIC).
    let market = MarketId::new("m3.medium", ZONE);
    let plan = FaultPlan::none()
        .at(SimTime::from_secs(7_200), FaultEvent::BackupFailure { pick: 0 })
        .at(
            SimTime::from_secs(10_800),
            FaultEvent::RevocationStorm { market },
        );
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        return_to_spot: false,
        seed: 17,
        ..SpotCheckConfig::default()
    };
    let mut sim = sim_with_faults(vec![flat_medium()], 0.6, config, plan);
    let vms = request_vms(&mut sim, 3, false);
    let end = SimTime::from_secs(21_600);
    sim.run_until(end);

    let c = sim.world_mut().controller_mut();
    for &vm in &vms {
        assert_eq!(
            c.vm(vm).unwrap().status,
            VmStatus::Running,
            "{vm:?} must land despite the storm and stockouts"
        );
    }
    assert_eq!(c.pending_rereplications(), 0, "no re-push may be left behind");
    let report = c.availability_report(end);
    assert_eq!(report.lost_vms, 0);
    assert_eq!(report.backup_failures, 1);
    assert!(
        report.rereplications >= 1,
        "the orphaned VM must be re-protected on a fresh server"
    );
    assert!(report.total_unprotected > SimDuration::ZERO);
    assert!(
        report.total_unprotected < SimDuration::from_secs(120),
        "unprotected window should be about one full-image push (~26 s), got {:?}",
        report.total_unprotected
    );
    assert_eq!(report.revocations, 3, "the storm sweeps all three spot VMs");
    assert_eq!(report.migrations, 3);
}

#[test]
fn disabling_resilience_loses_the_orphaned_vm() {
    // Same scenario as above with retries and re-replication switched off:
    // the orphan stays unprotected, so the storm strands or loses it. This
    // proves the resilience machinery is load-bearing, not decorative.
    let market = MarketId::new("m3.medium", ZONE);
    let plan = FaultPlan::none()
        .at(SimTime::from_secs(7_200), FaultEvent::BackupFailure { pick: 0 })
        .at(
            SimTime::from_secs(10_800),
            FaultEvent::RevocationStorm { market },
        );
    let config = SpotCheckConfig {
        zone: ZONE.to_string(),
        mapping: MappingPolicy::OneM,
        mechanism: MechanismKind::SpotCheckLazy,
        return_to_spot: false,
        resilience: ResilienceConfig {
            retry_enabled: false,
            rereplication_enabled: false,
            ..ResilienceConfig::default()
        },
        seed: 17,
        ..SpotCheckConfig::default()
    };
    let mut sim = sim_with_faults(vec![flat_medium()], 0.6, config, plan);
    let vms = request_vms(&mut sim, 3, false);
    let end = SimTime::from_secs(21_600);
    sim.run_until(end);

    let c = sim.world_mut().controller_mut();
    // vms[0] was the first VM protected, i.e. on bkp-0000 — the server the
    // `pick: 0` failure kills. Without re-replication its only checkpoint
    // is gone: the storm's migration either stalls (stockout, no retry) or
    // reaches attach with nothing to restore from.
    assert_ne!(
        c.vm(vms[0]).unwrap().status,
        VmStatus::Running,
        "the orphan must not survive with resilience off"
    );
    let stuck = c.active_migrations();
    let report = c.availability_report(end);
    assert!(
        report.lost_vms >= 1 || stuck > 0,
        "expected a lost or permanently stuck VM, got neither"
    );
    assert!(
        report.total_unprotected > SimDuration::from_secs(3_000),
        "the orphan stays unprotected from the failure onwards"
    );
}

#[test]
fn stale_degraded_end_events_are_ignored() {
    // A lazily-restored VM's degraded window is closed by a DegradedEnd
    // event guarded by a per-VM epoch. Blanket the post-revocation window
    // with forged stale events (epoch 999 never matches): the run must be
    // bit-for-bit identical to the unforged baseline — in particular the
    // degraded window must not be truncated early.
    let run = |forge: bool| {
        let config = SpotCheckConfig {
            zone: ZONE.to_string(),
            mapping: MappingPolicy::OneM,
            mechanism: MechanismKind::SpotCheckLazy,
            return_to_spot: false,
            seed: 21,
            ..SpotCheckConfig::default()
        };
        let mut sim = sim_with_stockouts(spiky_medium(3_600, 90_000), 0.0, config);
        let vms = request_vms(&mut sim, 1, false);
        sim.run_until(SimTime::from_secs(3_600));
        if forge {
            let mut t = 3_610;
            while t < 5_400 {
                sim.schedule_at(
                    SimTime::from_secs(t),
                    Event::DegradedEnd {
                        vm: vms[0],
                        epoch: 999,
                    },
                );
                t += 10;
            }
        }
        let end = SimTime::from_secs(7_200);
        sim.run_until(end);
        let c = sim.world_mut().controller_mut();
        let status = c.vm(vms[0]).unwrap().status;
        (c.availability_report(end), status)
    };

    let (baseline, s0) = run(false);
    let (forged, s1) = run(true);
    assert_eq!(s0, VmStatus::Running);
    assert_eq!(s1, VmStatus::Running);
    assert!(
        baseline.total_degraded > SimDuration::ZERO,
        "lazy restore must open a degraded window for this test to bite"
    );
    assert_eq!(
        forged, baseline,
        "stale DegradedEnd events must not perturb the run"
    );
}
