//! The end-to-end simulation driver: a synchronous façade for examples and
//! tests over the stepped [`Engine`](crate::engine::Engine).
//!
//! [`SpotCheckSim`] is intentionally thin: every mutation routes through
//! [`Engine::apply_quiet`](crate::engine::Engine::apply_quiet), so batch
//! runs exercise exactly the command path the `spotcheckd` daemon replays —
//! without adding command records to the journal (batch journal dumps stay
//! byte-identical to the pre-engine driver).

use spotcheck_cloudsim::cloud::CloudConfig;
use spotcheck_cloudsim::faults::FaultPlan;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::engine::StopReason;
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use crate::accounting::AvailabilityReport;
use crate::config::SpotCheckConfig;
use crate::controller::{Controller, ControllerError, CostReport};
use crate::engine::{Command, CommandOutcome, Engine};
use crate::journal::{Journal, ViolationReport};
use crate::types::CustomerId;

pub use crate::engine::Driver;

/// A complete SpotCheck deployment simulation.
///
/// # Examples
///
/// ```no_run
/// use spotcheck_core::driver::SpotCheckSim;
/// use spotcheck_core::config::SpotCheckConfig;
/// use spotcheck_core::sim::standard_traces;
/// use spotcheck_simcore::time::{SimDuration, SimTime};
/// use spotcheck_workloads::WorkloadKind;
///
/// let traces = standard_traces("us-east-1a", SimDuration::from_days(7), 42);
/// let mut sim = SpotCheckSim::new(traces, SpotCheckConfig::default());
/// let customer = sim.create_customer();
/// let vm = sim.request_server(customer, WorkloadKind::TpcW);
/// sim.run_until(SimTime::from_days(7));
/// println!("{:?}", sim.availability_report());
/// let _ = vm;
/// ```
pub struct SpotCheckSim {
    engine: Engine,
}

impl SpotCheckSim {
    /// Builds a deployment over the given market traces.
    pub fn new(traces: Vec<PriceTrace>, config: SpotCheckConfig) -> Self {
        SpotCheckSim::new_with_faults(traces, config, FaultPlan::none())
    }

    /// Builds a deployment whose native platform injects the given faults
    /// (transient API errors, latency spikes, crashes, backup-server
    /// failures, revocation storms).
    pub fn new_with_faults(
        traces: Vec<PriceTrace>,
        config: SpotCheckConfig,
        faults: FaultPlan,
    ) -> Self {
        let cloud_cfg = CloudConfig {
            seed: config.seed,
            faults,
            ..CloudConfig::default()
        };
        SpotCheckSim::new_with_cloud(traces, config, cloud_cfg)
    }

    /// Builds a deployment over a fully custom platform configuration
    /// (fault plan, on-demand stockout probability, latency model, ...).
    /// The platform keeps its own seed from `cloud_cfg`.
    pub fn new_with_cloud(
        traces: Vec<PriceTrace>,
        config: SpotCheckConfig,
        cloud_cfg: CloudConfig,
    ) -> Self {
        SpotCheckSim {
            engine: Engine::from_parts(traces, config, cloud_cfg),
        }
    }

    /// The underlying stepped engine (command injection, snapshots,
    /// signatures).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Exclusive access to the underlying engine.
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.engine.now()
    }

    /// Access to the controller.
    pub fn controller(&self) -> &Controller {
        self.engine.controller()
    }

    /// Registers a customer.
    pub fn create_customer(&mut self) -> CustomerId {
        match self.engine.apply_quiet(Command::CreateCustomer) {
            Ok(CommandOutcome::Customer(id)) => id,
            _ => unreachable!("create_customer is infallible"),
        }
    }

    /// Requests a nested VM for `customer`; provisioning proceeds as the
    /// simulation runs.
    pub fn request_server(&mut self, customer: CustomerId, workload: WorkloadKind) -> NestedVmId {
        self.request_server_opts(customer, workload, false)
    }

    /// Like [`SpotCheckSim::request_server`], optionally marking the VM as
    /// stateless (no backup protection; live migration on revocation).
    pub fn request_server_opts(
        &mut self,
        customer: CustomerId,
        workload: WorkloadKind,
        stateless: bool,
    ) -> NestedVmId {
        match self.engine.apply_quiet(Command::Provision {
            customer,
            workload,
            stateless,
        }) {
            Ok(CommandOutcome::Vm(vm)) => vm,
            Ok(_) => unreachable!("provision yields a VM on success"),
            Err(_) => panic!("request_server: customer must exist"),
        }
    }

    /// Releases a nested VM.
    ///
    /// # Errors
    ///
    /// Fails if the VM is unknown.
    pub fn release_server(&mut self, vm: NestedVmId) -> Result<(), ControllerError> {
        self.engine.apply_quiet(Command::Release { vm }).map(|_| ())
    }

    /// Runs the simulation up to `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        self.engine.step_until(horizon)
    }

    /// Availability/degradation report at the current time (read-only).
    pub fn availability_report(&self) -> AvailabilityReport {
        self.engine.availability_report()
    }

    /// Cost report at the current time.
    pub fn cost_report(&self) -> CostReport {
        self.engine.cost_report()
    }

    /// The structured event journal of this run (always on).
    pub fn journal(&self) -> &Journal {
        self.engine.journal()
    }

    /// Exclusive journal access (e.g. to open a JSONL spill sink).
    pub fn journal_mut(&mut self) -> &mut Journal {
        self.engine.journal_mut()
    }

    /// The 30 s-guarantee violation taxonomy of this run (derived from
    /// the journal's counters).
    pub fn violation_report(&self) -> ViolationReport {
        self.journal().violation_report()
    }
}
