//! The end-to-end simulation driver: wires the [`Controller`] into the
//! discrete-event engine and exposes a synchronous façade for examples and
//! tests.

use spotcheck_cloudsim::cloud::{CloudConfig, CloudSim};
use spotcheck_cloudsim::faults::FaultPlan;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::engine::{Scheduler, Simulation, StopReason, World};
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use crate::accounting::AvailabilityReport;
use crate::config::SpotCheckConfig;
use crate::controller::{Controller, ControllerError, CostReport};
use crate::events::Event;
use crate::journal::{Journal, ViolationReport};
use crate::types::CustomerId;

/// The [`World`] adapter around the controller.
pub struct Driver {
    controller: Controller,
}

impl World for Driver {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut Scheduler<'_, Event>) {
        let out = self.controller.handle_event(event, sched.now());
        for (t, e) in out {
            sched.at(t, e);
        }
    }
}

/// A complete SpotCheck deployment simulation.
///
/// # Examples
///
/// ```no_run
/// use spotcheck_core::driver::SpotCheckSim;
/// use spotcheck_core::config::SpotCheckConfig;
/// use spotcheck_core::sim::standard_traces;
/// use spotcheck_simcore::time::{SimDuration, SimTime};
/// use spotcheck_workloads::WorkloadKind;
///
/// let traces = standard_traces("us-east-1a", SimDuration::from_days(7), 42);
/// let mut sim = SpotCheckSim::new(traces, SpotCheckConfig::default());
/// let customer = sim.create_customer();
/// let vm = sim.request_server(customer, WorkloadKind::TpcW);
/// sim.run_until(SimTime::from_days(7));
/// println!("{:?}", sim.availability_report());
/// let _ = vm;
/// ```
pub struct SpotCheckSim {
    sim: Simulation<Driver>,
}

impl SpotCheckSim {
    /// Builds a deployment over the given market traces.
    pub fn new(traces: Vec<PriceTrace>, config: SpotCheckConfig) -> Self {
        SpotCheckSim::new_with_faults(traces, config, FaultPlan::none())
    }

    /// Builds a deployment whose native platform injects the given faults
    /// (transient API errors, latency spikes, crashes, backup-server
    /// failures, revocation storms).
    pub fn new_with_faults(
        traces: Vec<PriceTrace>,
        config: SpotCheckConfig,
        faults: FaultPlan,
    ) -> Self {
        let cloud_cfg = CloudConfig {
            seed: config.seed,
            faults,
            ..CloudConfig::default()
        };
        SpotCheckSim::new_with_cloud(traces, config, cloud_cfg)
    }

    /// Builds a deployment over a fully custom platform configuration
    /// (fault plan, on-demand stockout probability, latency model, ...).
    /// The platform keeps its own seed from `cloud_cfg`.
    pub fn new_with_cloud(
        traces: Vec<PriceTrace>,
        config: SpotCheckConfig,
        cloud_cfg: CloudConfig,
    ) -> Self {
        let cloud = CloudSim::new(traces, cloud_cfg);
        let mut controller = Controller::new(cloud, config);
        let boot = controller.bootstrap(SimTime::ZERO);
        let mut sim = Simulation::new(Driver { controller });
        for (t, e) in boot {
            sim.schedule_at(t, e);
        }
        SpotCheckSim { sim }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Access to the controller.
    pub fn controller(&self) -> &Controller {
        self.sim.world().controller()
    }

    /// Registers a customer.
    pub fn create_customer(&mut self) -> CustomerId {
        self.sim.world_mut().controller_mut().create_customer()
    }

    /// Requests a nested VM for `customer`; provisioning proceeds as the
    /// simulation runs.
    pub fn request_server(&mut self, customer: CustomerId, workload: WorkloadKind) -> NestedVmId {
        self.request_server_opts(customer, workload, false)
    }

    /// Like [`SpotCheckSim::request_server`], optionally marking the VM as
    /// stateless (no backup protection; live migration on revocation).
    pub fn request_server_opts(
        &mut self,
        customer: CustomerId,
        workload: WorkloadKind,
        stateless: bool,
    ) -> NestedVmId {
        let now = self.sim.now();
        let (vm, out) = self
            .sim
            .world_mut()
            .controller_mut()
            .request_server_opts(customer, workload, stateless, now)
            .expect("request_server: customer must exist");
        for (t, e) in out {
            self.sim.schedule_at(t, e);
        }
        vm
    }

    /// Releases a nested VM.
    ///
    /// # Errors
    ///
    /// Fails if the VM is unknown.
    pub fn release_server(&mut self, vm: NestedVmId) -> Result<(), ControllerError> {
        let now = self.sim.now();
        let out = self
            .sim
            .world_mut()
            .controller_mut()
            .release_server(vm, now)?;
        for (t, e) in out {
            self.sim.schedule_at(t, e);
        }
        Ok(())
    }

    /// Runs the simulation up to `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) -> StopReason {
        self.sim.run_until(horizon)
    }

    /// Availability/degradation report at the current time (read-only).
    pub fn availability_report(&self) -> AvailabilityReport {
        self.sim
            .world()
            .controller()
            .availability_report(self.sim.now())
    }

    /// Cost report at the current time.
    pub fn cost_report(&self) -> CostReport {
        self.sim.world().controller().cost_report(self.sim.now())
    }

    /// The structured event journal of this run (always on).
    pub fn journal(&self) -> &Journal {
        self.sim.world().controller().journal()
    }

    /// The 30 s-guarantee violation taxonomy of this run (derived from
    /// the journal's counters).
    pub fn violation_report(&self) -> ViolationReport {
        self.journal().violation_report()
    }
}

impl Driver {
    /// Shared controller access.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Exclusive controller access.
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }
}
