//! Per-VM availability, degradation, and event accounting.
//!
//! Tracks each nested VM's downtime and degraded-performance windows as
//! time-weighted condition clocks, plus migration/revocation counters —
//! the raw material for the paper's availability (Figure 11) and
//! degradation (Figure 12) metrics.

use spotcheck_simcore::slab::IdMap;

use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::stats::ConditionClock;
use spotcheck_simcore::time::{SimDuration, SimTime};

/// Counters and clocks for one VM.
#[derive(Debug, Clone)]
pub struct VmStats {
    /// When tracking started (the VM's first availability).
    pub since: SimTime,
    downtime: ConditionClock,
    degraded: ConditionClock,
    /// Windows during which the VM sat on revocable capacity with no
    /// complete checkpoint on any live backup server (e.g. between a
    /// backup-server failure and the end of re-replication).
    unprotected: ConditionClock,
    /// Revocation warnings that hit this VM.
    pub revocations: u32,
    /// Completed migrations (revocation, proactive, or return).
    pub migrations: u32,
    /// Proactive live migrations.
    pub proactive_migrations: u32,
    /// Completed backup re-replications after a backup-server failure.
    pub rereplications: u32,
}

impl VmStats {
    fn new(now: SimTime) -> Self {
        VmStats {
            since: now,
            downtime: ConditionClock::starting_at(now),
            degraded: ConditionClock::starting_at(now),
            unprotected: ConditionClock::starting_at(now),
            revocations: 0,
            migrations: 0,
            proactive_migrations: 0,
            rereplications: 0,
        }
    }

    /// Total time this VM spent unprotected (through the last recorded
    /// transition; use [`Accounting::report`] for a reading at an instant).
    pub fn total_unprotected(&self) -> SimDuration {
        self.unprotected.total_on()
    }
}

/// Aggregate availability/degradation report for a set of VMs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityReport {
    /// Number of VMs aggregated.
    pub vms: usize,
    /// Mean fraction of tracked time the VMs were down.
    pub unavailability: f64,
    /// Mean fraction of tracked time the VMs were degraded.
    pub degradation: f64,
    /// Total downtime across VMs.
    pub total_downtime: SimDuration,
    /// Total degraded time across VMs.
    pub total_degraded: SimDuration,
    /// Total revocations across VMs.
    pub revocations: u64,
    /// Total migrations across VMs.
    pub migrations: u64,
    /// Total proactive live migrations across VMs (subset of migrations).
    pub proactive_migrations: u64,
    /// Total time VMs spent with no complete checkpoint on a live backup.
    pub total_unprotected: SimDuration,
    /// Completed backup re-replications across VMs.
    pub rereplications: u64,
    /// Backup-server failures injected/observed.
    pub backup_failures: u64,
    /// Instance crash-stops observed.
    pub instance_crashes: u64,
    /// VMs lost unrecoverably (nonzero only when resilience is ablated or
    /// a crash strikes an unprotected window).
    pub lost_vms: u64,
}

impl AvailabilityReport {
    /// Availability in percent.
    pub fn availability_pct(&self) -> f64 {
        (1.0 - self.unavailability) * 100.0
    }
}

/// The accounting ledger across all VMs.
#[derive(Debug, Clone, Default)]
pub struct Accounting {
    per_vm: IdMap<NestedVmId, VmStats>,
    backup_failures: u64,
    instance_crashes: u64,
    lost_vms: u64,
}

impl Accounting {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Accounting::default()
    }

    /// Starts tracking a VM from `now` (its first availability).
    pub fn track(&mut self, vm: NestedVmId, now: SimTime) {
        self.per_vm.or_insert_with(vm, || VmStats::new(now));
    }

    /// Returns a VM's stats, if tracked.
    pub fn stats(&self, vm: NestedVmId) -> Option<&VmStats> {
        self.per_vm.get(&vm)
    }

    fn stats_mut(&mut self, vm: NestedVmId) -> &mut VmStats {
        self.per_vm
            .get_mut(&vm)
            .expect("accounting: VM must be tracked before events are recorded")
    }

    /// Records that the VM went down at `now`.
    pub fn mark_down(&mut self, vm: NestedVmId, now: SimTime) {
        self.stats_mut(vm).downtime.set(now, true);
    }

    /// Records that the VM came back up at `now`.
    pub fn mark_up(&mut self, vm: NestedVmId, now: SimTime) {
        self.stats_mut(vm).downtime.set(now, false);
    }

    /// Records the start of a degraded-performance window.
    pub fn mark_degraded(&mut self, vm: NestedVmId, now: SimTime) {
        self.stats_mut(vm).degraded.set(now, true);
    }

    /// Records the end of a degraded-performance window.
    pub fn mark_normal(&mut self, vm: NestedVmId, now: SimTime) {
        self.stats_mut(vm).degraded.set(now, false);
    }

    /// Counts a revocation warning against the VM.
    pub fn count_revocation(&mut self, vm: NestedVmId) {
        self.stats_mut(vm).revocations += 1;
    }

    /// Counts a completed migration.
    pub fn count_migration(&mut self, vm: NestedVmId) {
        self.stats_mut(vm).migrations += 1;
    }

    /// Counts a proactive live migration.
    pub fn count_proactive(&mut self, vm: NestedVmId) {
        let s = self.stats_mut(vm);
        s.proactive_migrations += 1;
        s.migrations += 1;
    }

    /// Records that the VM lost backup protection at `now` (its backup
    /// server died, or its state exists nowhere but the VM itself).
    pub fn mark_unprotected(&mut self, vm: NestedVmId, now: SimTime) {
        self.stats_mut(vm).unprotected.set(now, true);
    }

    /// Records that the VM is protected again at `now` (a complete
    /// checkpoint was acknowledged by a live backup server, or the VM
    /// moved to non-revocable capacity).
    pub fn mark_protected(&mut self, vm: NestedVmId, now: SimTime) {
        self.stats_mut(vm).unprotected.set(now, false);
    }

    /// Counts a completed backup re-replication for the VM.
    pub fn count_rereplication(&mut self, vm: NestedVmId) {
        self.stats_mut(vm).rereplications += 1;
    }

    /// Counts a backup-server failure.
    pub fn count_backup_failure(&mut self) {
        self.backup_failures += 1;
    }

    /// Counts an instance crash-stop.
    pub fn count_crash(&mut self) {
        self.instance_crashes += 1;
    }

    /// Counts a VM lost unrecoverably.
    pub fn count_lost(&mut self) {
        self.lost_vms += 1;
    }

    /// Reads every clock at `now` and aggregates, without mutating any
    /// clock — reporting is a pure inspection and can be repeated at any
    /// nondecreasing sequence of instants.
    pub fn report(&self, now: SimTime) -> AvailabilityReport {
        let mut unavail_sum = 0.0;
        let mut degr_sum = 0.0;
        let mut total_down = SimDuration::ZERO;
        let mut total_degraded = SimDuration::ZERO;
        let mut revocations = 0u64;
        let mut migrations = 0u64;
        let mut proactive = 0u64;
        let mut total_unprotected = SimDuration::ZERO;
        let mut rereplications = 0u64;
        let n = self.per_vm.len();
        for s in self.per_vm.values() {
            unavail_sum += s.downtime.fraction_on_at(now).unwrap_or(0.0);
            degr_sum += s.degraded.fraction_on_at(now).unwrap_or(0.0);
            total_down = total_down.saturating_add(s.downtime.total_on_at(now));
            total_degraded = total_degraded.saturating_add(s.degraded.total_on_at(now));
            total_unprotected = total_unprotected.saturating_add(s.unprotected.total_on_at(now));
            revocations += u64::from(s.revocations);
            migrations += u64::from(s.migrations);
            proactive += u64::from(s.proactive_migrations);
            rereplications += u64::from(s.rereplications);
        }
        AvailabilityReport {
            vms: n,
            unavailability: if n == 0 { 0.0 } else { unavail_sum / n as f64 },
            degradation: if n == 0 { 0.0 } else { degr_sum / n as f64 },
            total_downtime: total_down,
            total_degraded,
            revocations,
            migrations,
            proactive_migrations: proactive,
            total_unprotected,
            rereplications,
            backup_failures: self.backup_failures,
            instance_crashes: self.instance_crashes,
            lost_vms: self.lost_vms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn tracks_downtime_fraction() {
        let mut a = Accounting::new();
        let vm = NestedVmId(1);
        a.track(vm, t(0));
        a.mark_down(vm, t(100));
        a.mark_up(vm, t(123));
        let r = a.report(t(1_000));
        assert_eq!(r.vms, 1);
        assert!((r.unavailability - 0.023).abs() < 1e-9);
        assert!((r.availability_pct() - 97.7).abs() < 1e-9);
        assert_eq!(r.total_downtime, SimDuration::from_secs(23));
    }

    #[test]
    fn degradation_is_separate_from_downtime() {
        let mut a = Accounting::new();
        let vm = NestedVmId(1);
        a.track(vm, t(0));
        a.mark_degraded(vm, t(10));
        a.mark_normal(vm, t(110));
        let r = a.report(t(1_000));
        assert_eq!(r.unavailability, 0.0);
        assert!((r.degradation - 0.1).abs() < 1e-9);
    }

    #[test]
    fn counters_accumulate() {
        let mut a = Accounting::new();
        let vm = NestedVmId(1);
        a.track(vm, t(0));
        a.count_revocation(vm);
        a.count_migration(vm);
        a.count_proactive(vm);
        let r = a.report(t(10));
        assert_eq!(r.revocations, 1);
        assert_eq!(r.migrations, 2);
        assert_eq!(a.stats(vm).unwrap().proactive_migrations, 1);
    }

    #[test]
    fn aggregates_across_vms() {
        let mut a = Accounting::new();
        a.track(NestedVmId(1), t(0));
        a.track(NestedVmId(2), t(0));
        a.mark_down(NestedVmId(1), t(0));
        a.mark_up(NestedVmId(1), t(100));
        let r = a.report(t(1_000));
        // VM1 down 10% of the time, VM2 never: mean 5%.
        assert!((r.unavailability - 0.05).abs() < 1e-9);
    }

    #[test]
    fn vms_tracked_from_different_starts() {
        let mut a = Accounting::new();
        a.track(NestedVmId(1), t(500));
        a.mark_down(NestedVmId(1), t(500));
        a.mark_up(NestedVmId(1), t(550));
        let r = a.report(t(1_000));
        // Down 50 s of its own 500 s of tracked life.
        assert!((r.unavailability - 0.1).abs() < 1e-9);
    }

    #[test]
    fn empty_ledger_reports_zeroes() {
        let a = Accounting::new();
        let r = a.report(t(100));
        assert_eq!(r.vms, 0);
        assert_eq!(r.unavailability, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be tracked")]
    fn untracked_vm_panics() {
        let mut a = Accounting::new();
        a.mark_down(NestedVmId(9), t(0));
    }
}
