//! # spotcheck-core
//!
//! SpotCheck: a derivative IaaS cloud on the spot market (EuroSys 2015).
//!
//! This crate is the paper's primary contribution, built on the substrate
//! crates (`spotcheck-cloudsim`, `-nestedvm`, `-backup`, `-migrate`,
//! `-spotmarket`, `-workloads`):
//!
//! - [`policy`] — bidding (§4.3), customer-to-pool mapping (Table 2), and
//!   placement with slicing arbitrage (§4.2);
//! - [`controller`] + [`driver`] — the event-driven controller (§5): VM
//!   provisioning, backup assignment, revocation handling with
//!   bounded-time migration and IP/EBS transparency, hot spares, and
//!   return-to-spot allocation dynamics;
//! - [`engine`] + [`snapshot`] — the resumable stepped engine behind both
//!   the batch driver and the `spotcheckd` daemon: external command
//!   injection, deterministic command-log replay, and crash-consistent
//!   snapshot/restore;
//! - [`accounting`] — per-VM availability and degradation clocks;
//! - [`analysis`] — the §4.4 closed-form cost/availability model;
//! - [`sim`] — the trace-driven policy simulator behind Figures 10-12 and
//!   Table 3.
//!
//! ## Quick start
//!
//! ```
//! use spotcheck_core::config::SpotCheckConfig;
//! use spotcheck_core::driver::SpotCheckSim;
//! use spotcheck_core::sim::standard_traces;
//! use spotcheck_simcore::time::{SimDuration, SimTime};
//! use spotcheck_workloads::WorkloadKind;
//!
//! let traces = standard_traces("us-east-1a", SimDuration::from_days(1), 7);
//! let mut sim = SpotCheckSim::new(traces, SpotCheckConfig::default());
//! let customer = sim.create_customer();
//! let _vm = sim.request_server(customer, WorkloadKind::TpcW);
//! sim.run_until(SimTime::from_hours(2));
//! let report = sim.availability_report();
//! assert_eq!(report.vms, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod analysis;
pub mod config;
pub mod controller;
pub mod driver;
pub mod engine;
pub mod events;
pub mod journal;
pub mod policy;
pub mod retry;
pub mod shardsim;
pub mod sim;
pub mod snapshot;
pub mod types;

pub use accounting::{Accounting, AvailabilityReport};
pub use analysis::MarketModel;
pub use config::SpotCheckConfig;
pub use controller::{Controller, ControllerError, CostReport};
pub use controller::{IllegalTransition, MigPhase, MigrationFsm};
pub use driver::SpotCheckSim;
pub use engine::{Command, CommandOutcome, Engine, Scenario, TimedCommand};
pub use journal::{Journal, JournalCounters};
pub use snapshot::{RestoreError, Snapshot, SnapshotError};
pub use policy::{BiddingPolicy, MappingPolicy, PlacementPolicy};
pub use retry::{HealthConfig, MarketHealth, ResilienceConfig, RetryPolicy};
pub use sim::{run_policy, standard_traces, PolicyExperiment, PolicyReport};
pub use types::{CustomerId, MigrationId, VmRecord, VmStatus};
