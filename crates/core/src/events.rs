//! The event alphabet of the end-to-end SpotCheck simulation.

use spotcheck_cloudsim::faults::FaultEvent;
use spotcheck_cloudsim::ids::{InstanceId, OpId};
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_spotmarket::market::MarketId;

use crate::types::MigrationId;

/// Events driving the controller.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A spot market's price changed (from its trace).
    PriceChange(MarketId),
    /// An asynchronous cloud operation completed.
    CloudOp(OpId),
    /// The platform's forced termination of a revoked instance is due.
    ForcedTermination(InstanceId),
    /// Start (or retry) provisioning of a requested nested VM.
    ProvisionVm(NestedVmId),
    /// Deadline guard: begin the final commit now even if the destination
    /// is not ready (the state must reach the backup before termination).
    CommitStart(MigrationId),
    /// A migration's final-commit pause begins (the VM stops executing).
    PauseStart(MigrationId),
    /// A migration's checkpoint final-commit finished.
    CommitDone(MigrationId),
    /// A migration's memory restoration (skeleton or full image) finished.
    RestoreDone(MigrationId),
    /// A lazily-restored VM's degraded window ends.
    DegradedEnd {
        /// The VM.
        vm: NestedVmId,
        /// Guards against stale events after a newer migration.
        epoch: u32,
    },
    /// A return-to-spot live migration's memory transfer finished.
    ReturnTransferDone(NestedVmId),
    /// A scheduled injected fault is due (pulled from the platform's
    /// fault plan at bootstrap, re-armed after each delivery).
    Fault(FaultEvent),
    /// A backup re-replication push finished: the VM's full checkpoint is
    /// on its new backup server.
    ReplicationDone {
        /// The VM whose checkpoint was re-pushed.
        vm: NestedVmId,
        /// Guards against stale events after a newer re-replication or a
        /// migration that released the backup.
        epoch: u32,
    },
    /// Fluid-model alarm: re-sync flow completions. Stateless — the
    /// controller advances its fluid network to `now` before handling any
    /// event, so a stale or duplicate wake is harmless.
    FlowWake,
    /// Retry of a host termination that failed transiently.
    RetryTerminate {
        /// The instance to terminate.
        instance: InstanceId,
        /// Retry attempt number (1-based), for backoff.
        attempt: u32,
    },
}

impl Event {
    /// Stable lowercase name of the event variant (used in the journal).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::PriceChange(_) => "price_change",
            Event::CloudOp(_) => "cloud_op",
            Event::ForcedTermination(_) => "forced_termination",
            Event::ProvisionVm(_) => "provision_vm",
            Event::CommitStart(_) => "commit_start",
            Event::PauseStart(_) => "pause_start",
            Event::CommitDone(_) => "commit_done",
            Event::RestoreDone(_) => "restore_done",
            Event::DegradedEnd { .. } => "degraded_end",
            Event::ReturnTransferDone(_) => "return_transfer_done",
            Event::Fault(_) => "fault",
            Event::ReplicationDone { .. } => "replication_done",
            Event::FlowWake => "flow_wake",
            Event::RetryTerminate { .. } => "retry_terminate",
        }
    }
}
