//! Backup assignment and epoch-guarded re-replication.
//!
//! VMs on revocable spot hosts are protected by backup servers holding
//! their memory checkpoints (paper §4.2). When a backup server fails, its
//! orphans are re-protected by streaming a fresh full checkpoint to a
//! replacement; each push carries an epoch so a stale completion (one
//! superseded by a commit, a landing on on-demand, or a newer push) is
//! ignored instead of wrongly re-marking the VM protected.

use spotcheck_backup::pool::BackupServerId;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::time::{SimDuration, SimTime};

use crate::events::Event;
use crate::journal::{Record, Subsystem};

use super::{Controller, Outbox};

impl Controller {
    /// Assigns a backup server and treats the initial full checkpoint as
    /// immediately acked (modeling simplification: the first push completes
    /// well within the provisioning window). Re-replication after a backup
    /// failure goes through [`Controller::assign_backup_inner`] instead and
    /// acks only when the re-push finishes.
    pub(super) fn assign_backup(&mut self, vm: NestedVmId, now: SimTime) {
        if self.assign_backup_inner(vm, now) {
            if let Some(r) = self.vms.get_mut(&vm) {
                r.checkpoint_acked_at = Some(now);
            }
            self.journal
                .record(now, Subsystem::Replication, Record::CheckpointAcked { vm });
        }
    }

    /// Picks a backup server for `vm` (round-robin with same-pool
    /// spreading) without acking a checkpoint. Returns true on success.
    pub(super) fn assign_backup_inner(&mut self, vm: NestedVmId, now: SimTime) -> bool {
        if self.backups.server_of(vm).is_some() {
            return false;
        }
        // Spreading defense: also avoid backup servers whose NIC is
        // already hot (always empty unless the contention model and
        // `spread_by_load` are both on).
        let hot = self.net_hot_backups();
        // Spread VMs of the same spot pool across distinct backup servers
        // (§4.2): avoid servers already protecting same-market VMs.
        // `market_backup_refs` holds the per-market refcount of every
        // (home market, backup server) pair, so the avoid set is exactly
        // the servers the old full-VM scan collected — minus this VM's own
        // contribution, which that scan excluded via `r.id != vm`.
        let market = self.vms.get(&vm).and_then(|r| r.home_market.clone());
        let own = self.vms.get(&vm).and_then(|r| r.backup);
        let refs = market.as_ref().and_then(|m| self.market_backup_refs.get(m));
        let avoided = refs.map_or(0, |counts| {
            let mut k = counts.len();
            if let Some(s) = own {
                if counts.get(&s) == Some(&1) {
                    k -= 1;
                }
            }
            k
        });
        // Fast path: every live server is avoided (the common case under a
        // single-market mapping), so the round-robin scan cannot choose —
        // provision a fresh server directly, identically to `assign`.
        let provisioned_before = self.backups.provisioned_total();
        let assigned = if hot.is_empty() && avoided == self.backups.server_count() {
            self.backups.assign_fresh(vm, self.vm_spec.pages())
        } else {
            let in_refs = |id: BackupServerId| {
                refs.and_then(|counts| counts.get(&id))
                    .map(|&c| own != Some(id) || c > 1)
                    .unwrap_or(false)
            };
            // Avoidance stays a soft preference: with every server avoided
            // the pool provisions a fresh one, exactly like the fast path.
            self.backups
                .assign(vm, self.vm_spec.pages(), |id| in_refs(id) || hot.contains(&id))
        };
        if let Ok(server) = assigned {
            if self.backups.provisioned_total() > provisioned_before {
                // A freshly provisioned server starts billing now.
                self.backup_birth.insert(server, now);
            }
            if let Some(r) = self.vms.get_mut(&vm) {
                r.backup = Some(server);
            }
            self.backup_refs_add(vm);
            self.journal
                .record(now, Subsystem::Replication, Record::BackupAssigned { vm });
            true
        } else {
            false
        }
    }

    /// A non-live final commit landed: the VM's backup now holds a
    /// complete, current checkpoint, superseding any re-replication in
    /// flight.
    pub(super) fn ack_final_commit(&mut self, vm: NestedVmId, now: SimTime) {
        let has_backup = self
            .vms
            .get(&vm)
            .map(|r| r.backup.is_some())
            .unwrap_or(false);
        if has_backup {
            if let Some(r) = self.vms.get_mut(&vm) {
                r.checkpoint_acked_at = Some(now);
            }
            self.pending_rerepl.remove(&vm);
            self.accounting.mark_protected(vm, now);
            self.journal
                .record(now, Subsystem::Replication, Record::CheckpointAcked { vm });
        }
    }

    /// A backup server crash-stopped: every VM it protected is unprotected
    /// until its full checkpoint is re-pushed to a replacement server.
    pub(super) fn on_backup_failure(&mut self, pick: u64, now: SimTime, out: &mut Outbox) {
        let ids = self.backups.server_ids();
        if ids.is_empty() {
            return;
        }
        let victim = ids[(pick % ids.len() as u64) as usize];
        self.accounting.count_backup_failure();
        self.backup_death.insert(victim, now);
        let Ok(orphans) = self.backups.fail_server(victim) else {
            return;
        };
        self.journal.record(
            now,
            Subsystem::Replication,
            Record::BackupFailed {
                orphans: orphans.len() as u32,
            },
        );
        // Fluid model: the victim's NIC and disk die; streams and pushes
        // to it evaporate, commits crossing it lose their residue.
        self.net_on_backup_gone(victim, now, out);
        // Re-pushing a full image takes mem / NIC bandwidth (the VM itself
        // is the data source — its host streams the checkpoint afresh).
        let push = SimDuration::from_secs_f64(
            self.vm_spec.mem_bytes as f64 / self.cfg.backup.nic_bps,
        );
        for vm in orphans {
            self.backup_refs_sub(vm);
            if let Some(r) = self.vms.get_mut(&vm) {
                r.backup = None;
            }
            self.pending_rerepl.remove(&vm);
            self.accounting.mark_unprotected(vm, now);
            if !self.cfg.resilience.rereplication_enabled {
                continue;
            }
            if self.assign_backup_inner(vm, now) {
                self.repl_epoch += 1;
                let epoch = self.repl_epoch;
                self.pending_rerepl.insert(vm, epoch);
                self.journal.record(
                    now,
                    Subsystem::Replication,
                    Record::RereplicationStarted { vm, epoch },
                );
                // Fluid model: the push is a flow contending with every
                // other recovery transfer; otherwise it is a solo timer.
                if !self.net_add_rerepl(vm, epoch, push) {
                    self.schedule(
                        Subsystem::Replication,
                        now,
                        now + push,
                        Event::ReplicationDone { vm, epoch },
                        out,
                    );
                }
            }
        }
    }

    /// A re-replication push finished: the replacement backup now holds a
    /// complete, current checkpoint (unless a newer event superseded it).
    pub(super) fn on_replication_done(&mut self, vm: NestedVmId, epoch: u32, now: SimTime) {
        if self.pending_rerepl.get(&vm) != Some(&epoch) {
            return; // Stale: superseded by a commit, landing, or newer push.
        }
        self.pending_rerepl.remove(&vm);
        let protected = self
            .vms
            .get(&vm)
            .map(|r| r.backup.is_some())
            .unwrap_or(false);
        if protected {
            if let Some(r) = self.vms.get_mut(&vm) {
                r.checkpoint_acked_at = Some(now);
            }
            self.accounting.mark_protected(vm, now);
            self.accounting.count_rereplication(vm);
            self.journal.record(
                now,
                Subsystem::Replication,
                Record::RereplicationDone { vm, epoch },
            );
            // Back under protection: the background stream resumes.
            self.net_refresh_stream(vm);
        }
    }
}
