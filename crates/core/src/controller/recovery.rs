//! Crash taxonomy, forced termination, and revocation warnings.
//!
//! The recovery subsystem owns every path where capacity disappears: the
//! platform's forced termination at a warning's deadline, injected
//! instance crash-stops (no warning, memory lost), backup-server failures
//! (relayed to [`super::replication`]), and the triage of each affected
//! VM — recover from the backup checkpoint, re-provision from scratch, or
//! declare it lost.

use spotcheck_cloudsim::cloud::Notification;
use spotcheck_cloudsim::faults::FaultEvent;
use spotcheck_cloudsim::ids::InstanceId;
use spotcheck_migrate::restore::simulate_concurrent_restores;
use spotcheck_nestedvm::vm::{NestedVmId, NestedVmState};
use spotcheck_simcore::time::{SimDuration, SimTime};

use crate::events::Event;
use crate::journal::{Record, Subsystem};
use crate::types::{MigrationId, VmStatus};

use super::fsm::{MigPhase, MigrationFsm};
use super::migration::Migration;
use super::{Controller, Outbox};

impl Controller {
    /// A revocation warning arrived for `instance` (terminates at
    /// `deadline`): start a bounded-time migration for every running
    /// resident.
    pub(super) fn on_warning(
        &mut self,
        instance: InstanceId,
        deadline: SimTime,
        now: SimTime,
        out: &mut Outbox,
    ) {
        self.journal
            .record(now, Subsystem::Recovery, Record::Warning { instance });
        let residents: Vec<NestedVmId> = self
            .hosts
            .get(&instance)
            .map(|i| i.hv.resident_ids())
            .unwrap_or_default();
        let concurrent = residents.len().max(1);
        for vm in residents {
            // Skip VMs already mid-migration or being returned.
            if self.vms.get(&vm).map(|r| r.status) == Some(VmStatus::Running)
                && !self.returns.contains_key(&vm)
            {
                self.accounting.count_revocation(vm);
                self.start_migration(vm, instance, deadline, concurrent, now, out);
            }
        }
    }

    /// The platform reclaims a revoked spot instance at its deadline.
    pub(super) fn on_forced_termination(
        &mut self,
        instance: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        // Fluid model first: the host's NIC dies, and every commit still
        // crossing it (or still waiting in the admission queue) is a
        // violated guarantee — journaled by cause before the closed-form
        // teardown below runs.
        self.net_on_host_gone(instance, true, now, out);
        // Carry still-resident VM objects into their LIVE migrations before
        // the host record disappears: a live transfer streams memory
        // source-to-destination, so the object survives the termination.
        // Non-live (bounded-time) migrations restore strictly from the
        // backup server's last acked checkpoint — carrying the object would
        // smuggle state that never reached the backup.
        if let Some(info) = self.hosts.get_mut(&instance) {
            let residents = info.hv.resident_ids();
            for vm in residents {
                if let Some((_, m)) = self
                    .migrations
                    .iter_mut()
                    .find(|(_, m)| m.vm == vm && m.source == instance)
                {
                    if m.live {
                        if let Ok(obj) = info.hv.evict(vm) {
                            m.vm_obj = Some(obj);
                        }
                    }
                }
            }
        }
        let reclaimed = self.eff_force_terminate(Subsystem::Recovery, instance, now);
        if reclaimed {
            self.hosts.remove(&instance);
        }
        self.note_host_slots(instance);
        let _ = out;
    }

    /// Delivers one scheduled platform fault.
    pub(super) fn on_fault(&mut self, event: &FaultEvent, now: SimTime, out: &mut Outbox) {
        // Re-arm the next scheduled fault before reacting to this one.
        if let Some((t, f)) = self.cloud.next_scheduled_fault() {
            self.schedule(Subsystem::Recovery, now, t.max(now), Event::Fault(f), out);
        }
        let impact = self.cloud.apply_fault(event, now);
        let crashes = impact
            .notifications
            .iter()
            .filter(|n| matches!(n, Notification::InstanceCrashed { .. }))
            .count() as u32;
        self.journal.record(
            now,
            Subsystem::Recovery,
            Record::Fault {
                kind: event.kind(),
                warnings: impact.warnings.len() as u32,
                crashes,
            },
        );
        // Revocation storms: ordinary warnings, just many at once.
        for w in &impact.warnings {
            self.schedule(
                Subsystem::Recovery,
                now,
                w.terminate_at,
                Event::ForcedTermination(w.instance),
                out,
            );
            self.on_warning(w.instance, w.terminate_at, now, out);
        }
        for n in &impact.notifications {
            if let Notification::InstanceCrashed { instance } = n {
                self.on_instance_crash(*instance, now, out);
            }
        }
        if let Some(pick) = impact.backup_pick {
            self.on_backup_failure(pick, now, out);
        }
    }

    /// A native instance crash-stopped: no warning, memory lost. Each
    /// resident VM recovers from its backup's last acked checkpoint,
    /// re-provisions from scratch (stateless), or — if its state existed
    /// nowhere but the dead host — is lost.
    pub(super) fn on_instance_crash(
        &mut self,
        instance: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        self.net_on_host_gone(instance, false, now, out);
        self.accounting.count_crash();
        self.spares.retain(|s| *s != instance);
        let (residents, was_spot) = self
            .hosts
            .remove(&instance)
            .map(|i| (i.hv.resident_ids(), i.market.is_some()))
            .unwrap_or((Vec::new(), false));
        self.note_host_slots(instance);
        // Migrations streaming their final commit FROM the crashed host die
        // mid-push: the backup must not be credited with a fresh ack.
        for m in self.migrations.values_mut() {
            if m.source == instance && !m.fsm.commit_done() {
                m.commit_aborted = true;
            }
        }
        // Migrations targeting the crashed host as destination must
        // re-acquire one; their VM state is still safe on the backup.
        let orphaned_dests: Vec<MigrationId> = self
            .migrations
            .iter_mut()
            .filter(|(_, m)| m.dest == Some(instance) && m.fsm.phase() == MigPhase::Prep)
            .map(|(id, m)| {
                m.dest = None;
                let _ = m.fsm.dest_lost();
                id
            })
            .collect();
        for mig in orphaned_dests {
            self.schedule(Subsystem::Recovery, now, now, Event::CommitStart(mig), out);
        }
        for vm in residents {
            let Some(record) = self.vms.get(&vm) else {
                continue;
            };
            match record.status {
                VmStatus::Running => {}
                // In-flight migrations handle the missing source themselves
                // (begin_attach); provisioning retries via AttachFailed.
                _ => continue,
            }
            let stateless = record.stateless;
            self.accounting.mark_down(vm, now);
            if self.returns.remove(&vm).is_some() {
                self.journal
                    .record(now, Subsystem::Recovery, Record::ReturnAbandoned { vm });
            }
            let recoverable = self.vms.get(&vm).map(|r| r.backup.is_some()).unwrap_or(false)
                && !self.pending_rerepl.contains_key(&vm);
            if recoverable {
                self.start_crash_recovery(vm, instance, now, out);
            } else if stateless || !was_spot {
                // Stateless replicas tolerate memory loss by design; a
                // stateful VM on non-revocable capacity reboots from its
                // persistent EBS volume. Either way the VM reincarnates
                // (downtime runs until provisioning completes).
                if let Some(r) = self.vms.get_mut(&vm) {
                    r.host = None;
                    r.eni = None;
                }
                self.note_vm_placement(vm);
                self.set_status(Subsystem::Recovery, vm, VmStatus::Provisioning, now);
                self.schedule(Subsystem::Recovery, now, now, Event::ProvisionVm(vm), out);
            } else {
                // A spot-hosted stateful VM whose memory existed only on
                // the dead host: no backup (resilience ablated), or the
                // backup's image was still incomplete mid-re-replication.
                self.accounting.count_lost();
                self.backup_refs_sub(vm);
                if let Some(r) = self.vms.get_mut(&vm) {
                    if r.backup.is_some() {
                        let _ = self.backups.release(vm);
                        r.backup = None;
                    }
                    r.host = None;
                }
                self.note_vm_placement(vm);
                self.set_status(Subsystem::Recovery, vm, VmStatus::Lost, now);
                self.journal
                    .record(now, Subsystem::Recovery, Record::VmLost { vm });
                self.pending_rerepl.remove(&vm);
            }
        }
    }

    /// Restores a crashed VM from its backup's last acked checkpoint: a
    /// migration with a zero-length commit (there is no source to commit
    /// from; the residue since the last ack is lost) that pays downtime
    /// from the crash instant until the restore completes.
    pub(super) fn start_crash_recovery(
        &mut self,
        vm: NestedVmId,
        source: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        if !self.vms.contains_key(&vm) {
            return;
        }
        self.set_status(Subsystem::Recovery, vm, VmStatus::Migrating, now);
        let id = MigrationId(self.next_migration);
        self.next_migration += 1;
        let (restore_gate, degraded) = match self.cfg.mechanism.restore() {
            None => (SimDuration::ZERO, SimDuration::ZERO),
            Some((mode, path)) => {
                let outs = simulate_concurrent_restores(
                    1,
                    self.vm_spec.mem_bytes,
                    self.vm_spec.skeleton_bytes(),
                    mode,
                    path,
                    &self.cfg.backup,
                    None,
                );
                let worst = &outs[outs.len() - 1];
                (worst.downtime, worst.degraded)
            }
        };
        self.migrations.insert(
            id,
            Migration {
                vm,
                source,
                dest: None,
                fsm: MigrationFsm::recovered(),
                commit_duration: SimDuration::ZERO,
                commit_pause: SimDuration::ZERO,
                paused_at: Some(now),
                pays_downtime: true,
                proactive: false,
                live: false,
                started_at: now,
                dest_attempts: 0,
                commit_aborted: false,
                vm_obj: None,
                degraded,
                deadline: None,
                queued_at: None,
                commit_requested_at: None,
                queue_waited: None,
                fallback: false,
            },
        );
        self.restore_gates.insert(id, restore_gate);
        self.journal.record(
            now,
            Subsystem::Recovery,
            Record::MigStarted {
                mig: id,
                vm,
                live: false,
                proactive: false,
            },
        );
        self.journal
            .record(now, Subsystem::Recovery, Record::CrashRecovery { vm, mig: id });
        if let Some(spare) = self.spares.pop() {
            if let Some(m) = self.migrations.get_mut(&id) {
                m.dest = Some(spare);
            }
            self.mig_transition(id, now, |f| f.note_dest_ready());
            self.try_advance(id, now, out);
            self.request_spare(now, out);
        } else {
            self.request_dest(id, now, out);
        }
    }

    /// End of a lazy restore's degraded window (epoch-guarded: a newer
    /// migration of the same VM supersedes the pending event).
    pub(super) fn on_degraded_end(&mut self, vm: NestedVmId, epoch: u32, now: SimTime) {
        if self.degraded_epoch.get(&vm).copied().unwrap_or(0) == epoch {
            if let Some(r) = self.vms.get(&vm) {
                if r.status == VmStatus::Running {
                    self.accounting.mark_normal(vm, now);
                    if let Some(h) = r.host {
                        if let Some(info) = self.hosts.get_mut(&h) {
                            if let Some(v) = info.hv.vm_mut(vm) {
                                v.state = NestedVmState::Running;
                            }
                        }
                    }
                }
            }
        }
    }
}
