//! Fleet-wide bandwidth contention: the fluid-model coupling and the
//! defenses around the 30 s migration guarantee.
//!
//! When [`crate::config::ContentionConfig::enabled`] is set, transfer
//! durations stop being independent closed-form draws: every host gets a
//! NIC link, every backup server NIC + disk links, and the AZ one
//! aggregate uplink in a shared [`FluidSim`]. Checkpoint streams, final
//! commits, re-replication pushes, return-to-spot pre-copies, and lazy
//! restores become max-min-fair flows, so a revocation storm genuinely
//! contends for the backup tier's bandwidth — and can genuinely blow the
//! bound the paper's §5 promises.
//!
//! # The alarm-clock protocol
//!
//! The fluid model lives *inside* the discrete-event controller. Every
//! event handler runs between [`Controller::net_catch_up`] (advance the
//! fluid network to `now`, dispatch flow completions as ordinary events
//! at `now`) and [`Controller::net_rearm`] (schedule a stateless
//! [`Event::FlowWake`] at the next projected completion). The invariant:
//! all flow-set mutations happen with the fluid clock synced to the
//! event clock. Stale wakes are harmless no-ops, so nothing is ever
//! cancelled.
//!
//! # Equivalent bytes
//!
//! Closed-form transfer durations are computed at concurrency 1 and
//! converted to flow sizes via the route's uncontended bottleneck
//! (`bytes = duration × bottleneck`): a solo flow reproduces the
//! closed-form timing exactly, and contention stretches it — the delta
//! *is* the modeled interference.
//!
//! # Defenses
//!
//! - **Spreading** (`spread_by_load`): re-replications avoid backup
//!   servers whose NIC already carries more than half its capacity.
//! - **EDF admission** (`admission`): at most `admission_cap` final
//!   commits transfer concurrently; the rest stage in an
//!   earliest-deadline-first queue with queue-time accounting.
//! - **Fallback** (`fallback`): when a commit provably cannot meet its
//!   deadline at its current rate, degrade to Yank-style
//!   pause-and-flush — pause the VM (downtime charged honestly), stop
//!   its checkpoint stream, and boost the flush's fair-share weight.

use std::collections::{BTreeMap, BTreeSet};

use spotcheck_backup::pool::BackupServerId;
use spotcheck_cloudsim::ids::InstanceId;
use spotcheck_nestedvm::vm::{NestedVmId, NestedVmState};
use spotcheck_simcore::fluid::{FlowId, FlowSpec, FluidSim, LinkId, Network};
use spotcheck_simcore::time::{SimDuration, SimTime};

use crate::config::ContentionConfig;
use crate::events::Event;
use crate::journal::{Record, Subsystem};
use crate::types::MigrationId;

use super::{Controller, Outbox};

/// Fair-share weight boost for a fallback (Yank-style) flush: the paused
/// VM's residue must drain as fast as the network allows.
const FALLBACK_WEIGHT: f64 = 4.0;

/// A backup NIC carrying more than this fraction of its capacity counts
/// as hot for the spreading defense.
const HOT_LINK_FRACTION: f64 = 0.5;

/// What a flow in the fleet network is carrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Purpose {
    /// A background checkpoint stream (open-ended, never completes).
    Stream(NestedVmId),
    /// A migration's final commit (bounded-time) or live transfer.
    Commit(MigrationId),
    /// An epoch-guarded re-replication push to a replacement backup.
    Rerepl(NestedVmId, u32),
    /// A return-to-spot live pre-copy.
    Return(NestedVmId),
    /// A restore read (skeleton or full image) at a migration's
    /// destination.
    Restore(MigrationId),
}

/// The fleet's shared-bandwidth model: one [`FluidSim`] plus the index
/// maps tying links to hosts/backups and flows to their purposes.
///
/// Every map is a `BTreeMap`/`BTreeSet` so iteration order — and thus
/// the exact sequence of fluid-model mutations — is deterministic across
/// runs, thread counts, and queue backends.
pub(super) struct FleetNet {
    sim: FluidSim,
    /// The AZ-wide aggregate uplink every flow crosses.
    az: LinkId,
    host_nic_bps: f64,
    /// Per-host NIC links, created lazily on first use.
    host_nic: BTreeMap<InstanceId, LinkId>,
    /// Per-backup-server NIC links, created lazily on first use.
    backup_nic: BTreeMap<BackupServerId, LinkId>,
    /// Per-backup-server disk links (shared by writes and restore reads).
    backup_disk: BTreeMap<BackupServerId, LinkId>,
    streams: BTreeMap<NestedVmId, FlowId>,
    commits: BTreeMap<MigrationId, FlowId>,
    rerepls: BTreeMap<NestedVmId, FlowId>,
    returns: BTreeMap<NestedVmId, FlowId>,
    restores: BTreeMap<MigrationId, FlowId>,
    purpose: BTreeMap<FlowId, Purpose>,
    /// EDF admission queue of staged final commits: (deadline, mig).
    /// Deadline-less (proactive/live) commits sort last via `SimTime::MAX`.
    commit_queue: BTreeSet<(SimTime, u64)>,
    /// When the earliest outstanding [`Event::FlowWake`] fires, if any.
    wake_at: Option<SimTime>,
}

impl FleetNet {
    pub(super) fn new(cfg: &ContentionConfig) -> Self {
        let mut network = Network::new();
        let az = network.add_link(cfg.az_uplink_bps);
        FleetNet {
            sim: FluidSim::new(network),
            az,
            host_nic_bps: cfg.host_nic_bps,
            host_nic: BTreeMap::new(),
            backup_nic: BTreeMap::new(),
            backup_disk: BTreeMap::new(),
            streams: BTreeMap::new(),
            commits: BTreeMap::new(),
            rerepls: BTreeMap::new(),
            returns: BTreeMap::new(),
            restores: BTreeMap::new(),
            purpose: BTreeMap::new(),
            commit_queue: BTreeSet::new(),
            wake_at: None,
        }
    }

    /// The NIC link of `host`, created on first use.
    fn host_link(&mut self, host: InstanceId) -> LinkId {
        if let Some(&l) = self.host_nic.get(&host) {
            return l;
        }
        let l = self.sim.network_mut().add_link(self.host_nic_bps);
        self.host_nic.insert(host, l);
        l
    }

    /// The (NIC, disk) links of backup `server`, created on first use.
    fn backup_links(
        &mut self,
        server: BackupServerId,
        nic_bps: f64,
        disk_bps: f64,
    ) -> (LinkId, LinkId) {
        if let (Some(&n), Some(&d)) = (self.backup_nic.get(&server), self.backup_disk.get(&server))
        {
            return (n, d);
        }
        let n = self.sim.network_mut().add_link(nic_bps);
        let d = self.sim.network_mut().add_link(disk_bps);
        self.backup_nic.insert(server, n);
        self.backup_disk.insert(server, d);
        (n, d)
    }

    /// The uncontended bottleneck capacity of `route` in bytes/second.
    fn bottleneck(&self, route: &[LinkId]) -> f64 {
        route
            .iter()
            .map(|&l| self.sim.network().capacity(l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Removes a flow from the simulator and the purpose index.
    fn drop_flow(&mut self, id: FlowId) {
        self.sim.remove_flow(id);
        self.purpose.remove(&id);
    }

    /// Flows currently crossing `link`, with their purposes.
    fn crossing(&self, link: LinkId) -> Vec<(FlowId, Purpose)> {
        self.purpose
            .iter()
            .filter(|(id, _)| {
                self.sim
                    .route(**id)
                    .map(|r| r.contains(&link))
                    .unwrap_or(false)
            })
            .map(|(id, p)| (*id, *p))
            .collect()
    }
}

impl Controller {
    // ------------------------------------------------------------------
    // The alarm-clock protocol
    // ------------------------------------------------------------------

    /// Advances the fluid network to `now` and dispatches every flow that
    /// completed on the way as an ordinary event at `now`. Runs before
    /// each event handler so all flow-set mutations see a synced model.
    pub(super) fn net_catch_up(&mut self, now: SimTime, out: &mut Outbox) {
        let Some(net) = self.net.as_mut() else { return };
        let dt = now.saturating_since(net.sim.now());
        let adv = net.sim.advance(dt);
        if adv.completed.is_empty() {
            return;
        }
        let mut events = Vec::new();
        let mut landed_commits: Vec<MigrationId> = Vec::new();
        for id in adv.completed {
            let Some(p) = net.purpose.remove(&id) else {
                continue;
            };
            match p {
                // Open-ended streams never complete; unreachable by
                // construction.
                Purpose::Stream(vm) => {
                    net.streams.remove(&vm);
                }
                Purpose::Commit(mig) => {
                    net.commits.remove(&mig);
                    landed_commits.push(mig);
                    events.push(Event::CommitDone(mig));
                }
                Purpose::Rerepl(vm, epoch) => {
                    net.rerepls.remove(&vm);
                    events.push(Event::ReplicationDone { vm, epoch });
                }
                Purpose::Return(vm) => {
                    net.returns.remove(&vm);
                    events.push(Event::ReturnTransferDone(vm));
                }
                Purpose::Restore(mig) => {
                    net.restores.remove(&mig);
                    events.push(Event::RestoreDone(mig));
                }
            }
        }
        // A commit that lands is still a violation if it landed past the
        // promise (the paper's 30 s bound, measured from the request).
        for mig in landed_commits {
            self.net_note_commit_landed(mig, now);
        }
        for e in events {
            self.schedule(Subsystem::Controller, now, now, e, out);
        }
        // Finished commits free admission slots.
        self.net_admit_queued(now, out);
    }

    /// Checks fallbacks and re-arms the [`Event::FlowWake`] alarm at the
    /// next projected flow completion. Runs after each event handler.
    pub(super) fn net_rearm(&mut self, now: SimTime, out: &mut Outbox) {
        if self.net.is_none() {
            return;
        }
        self.net_check_fallbacks(now);
        let net = self.net.as_mut().expect("checked above");
        let Some(dt) = net.sim.time_to_next_completion() else {
            return;
        };
        let target = now.saturating_add(dt);
        // Schedule only when no earlier wake is outstanding: a later-
        // than-needed wake gets superseded; an earlier one is a no-op.
        let need = net.wake_at.map_or(true, |w| w <= now || target < w);
        if need {
            net.wake_at = Some(target);
            self.schedule(Subsystem::Controller, now, target, Event::FlowWake, out);
        }
    }

    // ------------------------------------------------------------------
    // Checkpoint streams
    // ------------------------------------------------------------------

    /// (Re)derives `vm`'s background checkpoint stream from its current
    /// placement: a VM streams to its backup iff it sits on a live host,
    /// is protected, and no re-replication is in flight (the re-push *is*
    /// its stream while re-protecting).
    pub(super) fn net_refresh_stream(&mut self, vm: NestedVmId) {
        if self.net.is_none() {
            return;
        }
        let desired = self.vms.get(&vm).and_then(|r| {
            let host = r.host?;
            let backup = r.backup?;
            if !self.hosts.contains_key(&host) || self.pending_rerepl.contains_key(&vm) {
                return None;
            }
            Some((host, backup, r.workload))
        });
        let cap = desired.map(|(_, _, workload)| {
            self.cfg
                .bounded
                .steady_stream_bps(&workload.dirty_model(), self.vm_spec.pages())
        });
        let nic_bps = self.cfg.backup.nic_bps;
        let disk_bps = self.cfg.backup.disk_write_bps;
        let net = self.net.as_mut().expect("checked above");
        if let Some(old) = net.streams.remove(&vm) {
            net.drop_flow(old);
        }
        let Some((host, backup, _)) = desired else {
            return;
        };
        let h = net.host_link(host);
        let (bn, bd) = net.backup_links(backup, nic_bps, disk_bps);
        let az = net.az;
        let spec = FlowSpec::new(vec![h, az, bn, bd], f64::INFINITY)
            .with_cap(cap.expect("cap computed with desired"));
        let id = net.sim.add_flow(spec);
        net.streams.insert(vm, id);
        net.purpose.insert(id, Purpose::Stream(vm));
    }

    /// Stops `vm`'s checkpoint stream, if any.
    pub(super) fn net_stop_stream(&mut self, vm: NestedVmId) {
        let Some(net) = self.net.as_mut() else { return };
        if let Some(id) = net.streams.remove(&vm) {
            net.drop_flow(id);
        }
    }

    // ------------------------------------------------------------------
    // Final commits: admission, launch, failure
    // ------------------------------------------------------------------

    /// Routes a starting final commit (or live transfer) into the fluid
    /// model: launch immediately, or stage it behind the EDF admission
    /// cap. Zero-length commits (crash recoveries) keep the plain event
    /// path.
    pub(super) fn net_handle_commit_start(
        &mut self,
        mig: MigrationId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(m) = self.migrations.get(&mig) else {
            return;
        };
        if m.commit_duration.is_zero() {
            self.schedule(Subsystem::Migration, now, now, Event::CommitDone(mig), out);
            return;
        }
        let (vm, deadline) = (m.vm, m.deadline);
        // The 30 s bound's clock starts here: staging in the admission
        // queue spends the same budget the transfer does.
        if let Some(m) = self.migrations.get_mut(&mig) {
            m.commit_requested_at = Some(now);
        }
        let cc = &self.cfg.contention;
        if cc.admission {
            let active = self.net.as_ref().map_or(0, |n| n.commits.len());
            if active >= cc.admission_cap {
                if let Some(m) = self.migrations.get_mut(&mig) {
                    m.queued_at = Some(now);
                }
                let key = deadline.unwrap_or(SimTime::MAX);
                self.net
                    .as_mut()
                    .expect("contention enabled")
                    .commit_queue
                    .insert((key, mig.0));
                self.journal
                    .record(now, Subsystem::Migration, Record::CommitQueued { mig, vm });
                return;
            }
        }
        self.net_launch_commit(mig, now, out);
    }

    /// Adds the commit's flow to the network and schedules its pause.
    fn net_launch_commit(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let Some(m) = self.migrations.get(&mig) else {
            return;
        };
        let (vm, source, dest, live) = (m.vm, m.source, m.dest, m.live);
        let (duration, pause, pays) = (m.commit_duration, m.commit_pause, m.pays_downtime);
        let backup = self.vms.get(&vm).and_then(|r| r.backup);
        let nic_bps = self.cfg.backup.nic_bps;
        let disk_bps = self.cfg.backup.disk_write_bps;
        let net = self.net.as_mut().expect("net enabled");
        // A bounded-time commit streams source -> AZ -> backup NIC ->
        // backup disk; a live transfer streams source -> AZ -> dest NIC
        // (the destination may not be known yet under the deadline guard).
        let mut route = vec![net.host_link(source), net.az];
        if live {
            if let Some(d) = dest {
                let l = net.host_link(d);
                route.push(l);
            }
        } else if let Some(b) = backup {
            let (bn, bd) = net.backup_links(b, nic_bps, disk_bps);
            route.push(bn);
            route.push(bd);
        }
        let bytes = (duration.as_secs_f64() * net.bottleneck(&route)).max(1.0);
        let id = net.sim.add_flow(FlowSpec::new(route, bytes));
        net.commits.insert(mig, id);
        net.purpose.insert(id, Purpose::Commit(mig));
        // The pause estimate stays closed-form relative to the launch;
        // contention pushes the actual completion later, and the VM pays
        // that extra downtime honestly (downtime ends at completion).
        if pays && !pause.is_zero() {
            self.schedule(
                Subsystem::Migration,
                now,
                now + duration.saturating_sub(pause),
                Event::PauseStart(mig),
                out,
            );
        }
    }

    /// Admits queued commits (earliest deadline first) while slots are
    /// free, charging each its queue wait.
    fn net_admit_queued(&mut self, now: SimTime, out: &mut Outbox) {
        loop {
            if !self.cfg.contention.admission {
                return;
            }
            let cap = self.cfg.contention.admission_cap;
            let Some(net) = self.net.as_mut() else { return };
            if net.commits.len() >= cap {
                return;
            }
            let Some(&(key, raw)) = net.commit_queue.iter().next() else {
                return;
            };
            net.commit_queue.remove(&(key, raw));
            let mig = MigrationId(raw);
            let Some(m) = self.migrations.get_mut(&mig) else {
                continue;
            };
            let vm = m.vm;
            let waited = m.queued_at.take().map(|q| now.saturating_since(q));
            m.queue_waited = waited;
            let waited_ms = waited
                .map(|w| (w.as_secs_f64() * 1000.0).round() as u64)
                .unwrap_or(0);
            self.journal.record(
                now,
                Subsystem::Migration,
                Record::CommitAdmitted { mig, vm, waited_ms },
            );
            self.net_launch_commit(mig, now, out);
        }
    }

    /// Journals a [`Record::DeadlineViolation`] for a commit that landed
    /// past the paper's bound (measured from the commit request — queue
    /// wait spends the same budget the transfer does). The overrun is
    /// attributed to the queue when the transfer alone would have fit,
    /// and to link contention otherwise.
    fn net_note_commit_landed(&mut self, mig: MigrationId, now: SimTime) {
        let bound = self.cfg.bounded.bound;
        let Some(m) = self.migrations.get(&mig) else {
            return;
        };
        // Only deadline-bounded commits carry the guarantee.
        if m.deadline.is_none() {
            return;
        }
        let Some(requested) = m.commit_requested_at else {
            return;
        };
        let elapsed = now.saturating_since(requested);
        if elapsed <= bound {
            return;
        }
        let waited = m.queue_waited.unwrap_or(SimDuration::ZERO);
        let cause = if elapsed.saturating_sub(waited) <= bound {
            "queue_wait"
        } else {
            "contention"
        };
        let vm = m.vm;
        self.journal.record(
            now,
            Subsystem::Migration,
            Record::DeadlineViolation { mig, vm, cause },
        );
    }

    /// Kills a commit that can no longer land (its source or backup
    /// died, or its deadline passed in the queue): the migration carries
    /// on with `commit_aborted` — restoring from the last *acked*
    /// checkpoint — and the violation, if any, is journaled with its
    /// cause.
    fn net_fail_commit(
        &mut self,
        mig: MigrationId,
        cause: Option<&'static str>,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(net) = self.net.as_mut() else { return };
        let mut present = false;
        if let Some(id) = net.commits.remove(&mig) {
            net.drop_flow(id);
            present = true;
        }
        let queued: Vec<(SimTime, u64)> = net
            .commit_queue
            .iter()
            .copied()
            .filter(|&(_, raw)| raw == mig.0)
            .collect();
        for k in queued {
            net.commit_queue.remove(&k);
            present = true;
        }
        // Already harvested as a completion at this instant (a commit
        // landing exactly at the deadline is a success, not a violation).
        if !present {
            return;
        }
        let vm = match self.migrations.get_mut(&mig) {
            Some(m) => {
                m.commit_aborted = true;
                m.vm
            }
            None => return,
        };
        if let Some(cause) = cause {
            self.journal.record(
                now,
                Subsystem::Migration,
                Record::DeadlineViolation { mig, vm, cause },
            );
        }
        self.schedule(Subsystem::Migration, now, now, Event::CommitDone(mig), out);
    }

    // ------------------------------------------------------------------
    // Re-replication, returns, restores
    // ------------------------------------------------------------------

    /// Models a re-replication push as a flow from the VM's host to its
    /// replacement backup. Returns false (caller keeps the closed-form
    /// schedule) when contention is off or the flow cannot be routed.
    pub(super) fn net_add_rerepl(&mut self, vm: NestedVmId, epoch: u32, push: SimDuration) -> bool {
        if self.net.is_none() {
            return false;
        }
        let Some((host, backup)) = self
            .vms
            .get(&vm)
            .and_then(|r| Some((r.host?, r.backup?)))
        else {
            return false;
        };
        if !self.hosts.contains_key(&host) {
            return false;
        }
        let nic_bps = self.cfg.backup.nic_bps;
        let disk_bps = self.cfg.backup.disk_write_bps;
        let net = self.net.as_mut().expect("checked above");
        if let Some(old) = net.rerepls.remove(&vm) {
            net.drop_flow(old);
        }
        let h = net.host_link(host);
        let (bn, bd) = net.backup_links(backup, nic_bps, disk_bps);
        let route = vec![h, net.az, bn, bd];
        let bytes = (push.as_secs_f64() * net.bottleneck(&route)).max(1.0);
        let id = net.sim.add_flow(FlowSpec::new(route, bytes));
        net.rerepls.insert(vm, id);
        net.purpose.insert(id, Purpose::Rerepl(vm, epoch));
        true
    }

    /// Models a return-to-spot pre-copy as a flow from the on-demand
    /// refuge to the fresh spot host. Returns false when contention is
    /// off or the source host is unknown.
    pub(super) fn net_add_return(
        &mut self,
        vm: NestedVmId,
        dest: InstanceId,
        duration: SimDuration,
    ) -> bool {
        if self.net.is_none() {
            return false;
        }
        let Some(source) = self.vms.get(&vm).and_then(|r| r.host) else {
            return false;
        };
        if !self.hosts.contains_key(&source) {
            return false;
        }
        let net = self.net.as_mut().expect("checked above");
        if let Some(old) = net.returns.remove(&vm) {
            net.drop_flow(old);
        }
        let s = net.host_link(source);
        let d = net.host_link(dest);
        let route = vec![s, net.az, d];
        let bytes = (duration.as_secs_f64() * net.bottleneck(&route)).max(1.0);
        let id = net.sim.add_flow(FlowSpec::new(route, bytes));
        net.returns.insert(vm, id);
        net.purpose.insert(id, Purpose::Return(vm));
        true
    }

    /// Models a migration's restore gate as a read flow from the VM's
    /// backup disk to the destination. Returns false (caller keeps the
    /// closed-form schedule) when contention is off, the gate is zero, or
    /// the VM has no backup to read from.
    pub(super) fn net_add_restore(
        &mut self,
        mig: MigrationId,
        vm: NestedVmId,
        dest: InstanceId,
        gate: SimDuration,
    ) -> bool {
        if self.net.is_none() || gate.is_zero() {
            return false;
        }
        let Some(backup) = self.vms.get(&vm).and_then(|r| r.backup) else {
            return false;
        };
        let nic_bps = self.cfg.backup.nic_bps;
        let disk_bps = self.cfg.backup.disk_write_bps;
        let net = self.net.as_mut().expect("checked above");
        if let Some(old) = net.restores.remove(&mig) {
            net.drop_flow(old);
        }
        let (bn, bd) = net.backup_links(backup, nic_bps, disk_bps);
        let d = net.host_link(dest);
        let route = vec![bd, bn, net.az, d];
        let bytes = (gate.as_secs_f64() * net.bottleneck(&route)).max(1.0);
        let id = net.sim.add_flow(FlowSpec::new(route, bytes));
        net.restores.insert(mig, id);
        net.purpose.insert(id, Purpose::Restore(mig));
        true
    }

    /// Drops any flows still attached to a finished or aborted migration.
    pub(super) fn net_drop_migration(&mut self, mig: MigrationId) {
        let Some(net) = self.net.as_mut() else { return };
        if let Some(id) = net.commits.remove(&mig) {
            net.drop_flow(id);
        }
        if let Some(id) = net.restores.remove(&mig) {
            net.drop_flow(id);
        }
        let queued: Vec<(SimTime, u64)> = net
            .commit_queue
            .iter()
            .copied()
            .filter(|&(_, raw)| raw == mig.0)
            .collect();
        for k in queued {
            net.commit_queue.remove(&k);
        }
    }

    // ------------------------------------------------------------------
    // Capacity death: hosts and backup servers
    // ------------------------------------------------------------------

    /// A host's NIC went away (forced termination when `warned`, crash
    /// otherwise): kill its link, fail every flow crossing it, and sweep
    /// queued commits sourced from it. This is where the violation
    /// taxonomy is decided — `net_catch_up` ran first, so a commit that
    /// finished exactly at the deadline was already harvested as a
    /// success.
    pub(super) fn net_on_host_gone(
        &mut self,
        instance: InstanceId,
        warned: bool,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(net) = self.net.as_mut() else { return };
        let link = net.host_nic.remove(&instance);
        let crossing = link.map(|l| net.crossing(l)).unwrap_or_default();
        if let Some(l) = link {
            net.sim.network_mut().set_capacity(l, 0.0);
        }
        let queued: Vec<u64> = net.commit_queue.iter().map(|&(_, raw)| raw).collect();

        let mut dead_commits: Vec<MigrationId> = Vec::new();
        let mut events: Vec<Event> = Vec::new();
        for (id, p) in crossing {
            match p {
                Purpose::Stream(vm) => {
                    net.streams.remove(&vm);
                    net.drop_flow(id);
                }
                Purpose::Commit(mig) => dead_commits.push(mig),
                Purpose::Rerepl(vm, _) => {
                    // The push died with its source; the VM's unprotected
                    // window simply extends (crash triage already treats a
                    // pending re-replication as an incomplete image).
                    net.rerepls.remove(&vm);
                    net.drop_flow(id);
                }
                Purpose::Return(vm) => {
                    // End the transfer now (a dead link would stall it
                    // forever); the return subsystem's own guards decide
                    // whether the return proceeds or was already abandoned.
                    net.returns.remove(&vm);
                    net.drop_flow(id);
                    events.push(Event::ReturnTransferDone(vm));
                }
                Purpose::Restore(mig) => {
                    // The destination died mid-restore; complete the gate
                    // so the migration's own dest-failure logic runs.
                    net.restores.remove(&mig);
                    net.drop_flow(id);
                    events.push(Event::RestoreDone(mig));
                }
            }
        }
        // Queued commits whose source just died never got a flow at all.
        for raw in queued {
            let mig = MigrationId(raw);
            if self
                .migrations
                .get(&mig)
                .map(|m| m.source == instance)
                .unwrap_or(false)
            {
                dead_commits.push(mig);
            }
        }
        for mig in dead_commits {
            let cause = self.migrations.get(&mig).and_then(|m| {
                if m.source != instance {
                    // The commit's *destination* died (live transfer);
                    // no guarantee attached to the destination's NIC.
                    return None;
                }
                m.deadline?;
                Some(if warned {
                    if m.queued_at.is_some() {
                        "queue_wait"
                    } else {
                        "contention"
                    }
                } else {
                    "residue_lost"
                })
            });
            self.net_fail_commit(mig, cause, now, out);
        }
        for e in events {
            self.schedule(Subsystem::Controller, now, now, e, out);
        }
        self.net_admit_queued(now, out);
    }

    /// A backup server crash-stopped: kill its links and fail every flow
    /// crossing them. Commits lose their residue ("residue_lost");
    /// restores complete against the stale image the destination already
    /// pulled; orphaned streams and pushes are re-derived by the
    /// replication subsystem.
    pub(super) fn net_on_backup_gone(
        &mut self,
        server: BackupServerId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(net) = self.net.as_mut() else { return };
        let (Some(nic), Some(disk)) = (
            net.backup_nic.remove(&server),
            net.backup_disk.remove(&server),
        ) else {
            return;
        };
        let crossing = net.crossing(nic);
        net.sim.network_mut().set_capacity(nic, 0.0);
        net.sim.network_mut().set_capacity(disk, 0.0);
        let mut dead_commits: Vec<MigrationId> = Vec::new();
        let mut events: Vec<Event> = Vec::new();
        for (id, p) in crossing {
            match p {
                Purpose::Stream(vm) => {
                    net.streams.remove(&vm);
                    net.drop_flow(id);
                }
                Purpose::Commit(mig) => dead_commits.push(mig),
                Purpose::Rerepl(vm, _) => {
                    net.rerepls.remove(&vm);
                    net.drop_flow(id);
                }
                Purpose::Return(vm) => {
                    // Returns never route through backups; defensive only.
                    net.returns.remove(&vm);
                    net.drop_flow(id);
                }
                Purpose::Restore(mig) => {
                    net.restores.remove(&mig);
                    net.drop_flow(id);
                    events.push(Event::RestoreDone(mig));
                }
            }
        }
        for mig in dead_commits {
            let cause = self
                .migrations
                .get(&mig)
                .and_then(|m| m.deadline.map(|_| "residue_lost"));
            self.net_fail_commit(mig, cause, now, out);
        }
        for e in events {
            self.schedule(Subsystem::Controller, now, now, e, out);
        }
        self.net_admit_queued(now, out);
    }

    // ------------------------------------------------------------------
    // Defenses
    // ------------------------------------------------------------------

    /// Backup servers whose NIC currently carries more than
    /// [`HOT_LINK_FRACTION`] of its capacity (the spreading defense's
    /// avoid set).
    pub(super) fn net_hot_backups(&mut self) -> BTreeSet<BackupServerId> {
        let mut hot = BTreeSet::new();
        if !self.cfg.contention.spread_by_load {
            return hot;
        }
        let threshold = HOT_LINK_FRACTION * self.cfg.backup.nic_bps;
        let Some(net) = self.net.as_mut() else {
            return hot;
        };
        let servers: Vec<(BackupServerId, LinkId)> =
            net.backup_nic.iter().map(|(&s, &l)| (s, l)).collect();
        for (s, l) in servers {
            if net.sim.link_load(l) > threshold {
                hot.insert(s);
            }
        }
        hot
    }

    /// The fallback defense: any admitted commit whose remaining bytes
    /// provably exceed what its current rate can move before its deadline
    /// degrades to Yank-style pause-and-flush — pause the VM now (downtime
    /// charged from this instant), stop its checkpoint stream, and boost
    /// the flush's weight so the residue drains as fast as fairness
    /// allows.
    fn net_check_fallbacks(&mut self, now: SimTime) {
        if !self.cfg.contention.fallback {
            return;
        }
        let Some(net) = self.net.as_mut() else { return };
        if net.commits.is_empty() {
            return;
        }
        // Rates must be fresh before projecting completions.
        let _ = net.sim.time_to_next_completion();
        let mut engage: Vec<(MigrationId, FlowId)> = Vec::new();
        for (&mig, &id) in &net.commits {
            let Some(m) = self.migrations.get(&mig) else {
                continue;
            };
            if m.fallback || !m.pays_downtime {
                continue;
            }
            let Some(deadline) = m.deadline else { continue };
            // The binding deadline is whichever comes first: the
            // platform's termination or the promised bound measured from
            // the commit request.
            let deadline = m
                .commit_requested_at
                .map(|r| deadline.min(r + self.cfg.bounded.bound))
                .unwrap_or(deadline);
            let window = deadline.saturating_since(now).as_secs_f64();
            let remaining = net.sim.remaining(id).unwrap_or(0.0);
            let rate = net.sim.rate(id).unwrap_or(0.0);
            if remaining > rate * window {
                engage.push((mig, id));
            }
        }
        for (mig, id) in engage {
            if let Some(net) = self.net.as_mut() {
                net.sim.set_weight(id, FALLBACK_WEIGHT);
            }
            let Some(m) = self.migrations.get_mut(&mig) else {
                continue;
            };
            m.fallback = true;
            let (vm, source) = (m.vm, m.source);
            let newly_paused = m.paused_at.is_none();
            if newly_paused {
                m.paused_at = Some(now);
            }
            self.journal
                .record(now, Subsystem::Migration, Record::FallbackYank { mig, vm });
            if newly_paused {
                self.accounting.mark_down(vm, now);
                if let Some(info) = self.hosts.get_mut(&source) {
                    if let Some(v) = info.hv.vm_mut(vm) {
                        v.state = NestedVmState::PausedForMigration;
                    }
                }
            }
            // A paused VM dirties no pages: its checkpoint stream stops,
            // freeing backup NIC share for the flushes that need it.
            self.net_stop_stream(vm);
        }
    }
}
