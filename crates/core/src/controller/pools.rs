//! Host and spare pool management.
//!
//! Owns the lifecycle of native instances used as nested-VM hosts: hot
//! spares (paper §4.3 — pre-booted on-demand servers that absorb the
//! destination boot latency of a migration) and host termination with
//! retry-on-transient-error backoff (a leaked host bills forever).

use spotcheck_cloudsim::error::CloudError;
use spotcheck_cloudsim::ids::InstanceId;
use spotcheck_nestedvm::host::HostVm;
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;

use crate::events::Event;
use crate::journal::{Record, Subsystem};

use super::effects::OpCtx;
use super::{Controller, Outbox};

/// A native instance hosting nested VMs.
pub(super) struct HostInfo {
    /// The hypervisor state (slots, residents).
    pub(super) hv: HostVm,
    /// The spot market it was bought in (`None` for on-demand).
    pub(super) market: Option<MarketId>,
}

impl Controller {
    /// Maximum attempts for a transiently-failing terminate before giving
    /// up (the instance is then assumed externally reclaimed).
    pub(super) const MAX_TERMINATE_ATTEMPTS: u32 = 8;

    /// Boots one on-demand hot spare.
    pub(super) fn request_spare(&mut self, now: SimTime, out: &mut Outbox) {
        let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
        let _ = self.eff_request_on_demand(
            Subsystem::Pools,
            "m3.medium",
            &zone,
            OpCtx::SpareBoot,
            now,
            out,
        );
    }

    /// A spare finished booting: add it to the idle pool.
    pub(super) fn on_spare_ready(&mut self, instance: InstanceId) {
        let slots = self
            .cloud
            .instance(instance)
            .expect("instance exists")
            .spec
            .medium_slots;
        self.hosts.insert(
            instance,
            HostInfo {
                hv: HostVm::new(slots),
                market: None,
            },
        );
        self.note_host_slots(instance);
        self.spares.push(instance);
    }

    /// Terminates a host, retrying on transient API errors.
    pub(super) fn terminate_host(&mut self, instance: InstanceId, now: SimTime, out: &mut Outbox) {
        self.hosts.remove(&instance);
        self.note_host_slots(instance);
        match self.eff_terminate(Subsystem::Pools, instance, now, out) {
            Ok(()) => {}
            Err(CloudError::ApiUnavailable) if self.cfg.resilience.retry_enabled => {
                // Transient API error: a leaked host bills forever, so keep
                // retrying with backoff rather than dropping the terminate.
                let delay = self.cfg.resilience.retry.delay_for(1, instance.0);
                self.journal.record(
                    now,
                    Subsystem::Pools,
                    Record::Retry {
                        what: "terminate",
                        attempt: 1,
                    },
                );
                self.schedule(
                    Subsystem::Pools,
                    now,
                    now + delay,
                    Event::RetryTerminate { instance, attempt: 1 },
                    out,
                );
            }
            Err(_) => {}
        }
    }

    /// Retry of a transiently-failed terminate.
    pub(super) fn on_retry_terminate(
        &mut self,
        instance: InstanceId,
        attempt: u32,
        now: SimTime,
        out: &mut Outbox,
    ) {
        match self.eff_terminate(Subsystem::Pools, instance, now, out) {
            Ok(()) => {}
            Err(CloudError::ApiUnavailable) if attempt < Self::MAX_TERMINATE_ATTEMPTS => {
                let next = attempt + 1;
                let delay = self.cfg.resilience.retry.delay_for(next, instance.0);
                self.journal.record(
                    now,
                    Subsystem::Pools,
                    Record::Retry {
                        what: "terminate",
                        attempt: next,
                    },
                );
                self.schedule(
                    Subsystem::Pools,
                    now,
                    now + delay,
                    Event::RetryTerminate { instance, attempt: next },
                    out,
                );
            }
            Err(_) => {}
        }
    }
}
