//! Return-to-spot live migrations (allocation dynamics, paper §4.3).
//!
//! When a VM's home spot market drops back below the on-demand price, the
//! controller live-migrates the VM from its on-demand refuge back to a
//! fresh spot host: boot the spot host, pre-copy the running VM, then move
//! the IP/volume across. The VM keeps serving throughout — a return never
//! counts downtime.

use spotcheck_cloudsim::ids::InstanceId;
use spotcheck_migrate::precopy::{simulate_precopy, PreCopyConfig};
use spotcheck_nestedvm::host::HostVm;
use spotcheck_nestedvm::vm::{NestedVm, NestedVmId, NestedVmState};
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_workloads::WorkloadKind;

use crate::events::Event;
use crate::journal::{Record, Subsystem};

use super::effects::OpCtx;
use super::pools::HostInfo;
use super::{Controller, Outbox};

/// Phase of a return-to-spot live migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ReturnPhase {
    /// Pre-copying memory to the freshly-booted spot host.
    Transferring,
    /// Detaching ENI/volume from the on-demand host.
    Detaching,
    /// Attaching ENI/volume at the spot host.
    Attaching,
}

impl ReturnPhase {
    /// Stable lowercase name (used in the journal).
    pub(super) fn as_str(self) -> &'static str {
        match self {
            ReturnPhase::Transferring => "transferring",
            ReturnPhase::Detaching => "detaching",
            ReturnPhase::Attaching => "attaching",
        }
    }
}

/// One in-flight return-to-spot migration.
pub(super) struct ReturnState {
    /// The spot host the VM is returning to.
    pub(super) dest: InstanceId,
    /// Current phase.
    pub(super) phase: ReturnPhase,
    /// In-flight detach/attach operations in the current phase.
    pub(super) pending: u8,
}

impl Controller {
    /// Advances a return's phase, journaling the transition. Returns false
    /// if the return no longer exists.
    fn set_return_phase(&mut self, vm: NestedVmId, to: ReturnPhase, now: SimTime) -> bool {
        let from = match self.returns.get_mut(&vm) {
            Some(r) => {
                let from = r.phase;
                r.phase = to;
                from
            }
            None => return false,
        };
        if from != to {
            self.journal.record(
                now,
                Subsystem::Returns,
                Record::ReturnPhase {
                    vm,
                    from: from.as_str(),
                    to: to.as_str(),
                },
            );
        }
        true
    }

    pub(super) fn start_return(
        &mut self,
        vm: NestedVmId,
        market: MarketId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let zone = spotcheck_spotmarket::market::ZoneName::new(market.zone.as_str());
        let od = self
            .cloud
            .spec(market.type_name.as_str())
            .map(|s| s.on_demand_price)
            .unwrap_or(0.07);
        let bid = self.cfg.bidding.bid(od);
        let Ok(instance) = self.eff_request_spot(
            Subsystem::Returns,
            market.type_name.as_str(),
            &zone,
            bid,
            OpCtx::ReturnBoot(vm),
            now,
            out,
        ) else {
            return;
        };
        self.returns.insert(
            vm,
            ReturnState {
                dest: instance,
                phase: ReturnPhase::Transferring,
                pending: 0,
            },
        );
        self.journal
            .record(now, Subsystem::Returns, Record::ReturnStarted { vm });
    }

    /// The return's spot host finished booting: start the live pre-copy.
    pub(super) fn on_return_boot(
        &mut self,
        vm: NestedVmId,
        instance: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        // The return may have been abandoned (e.g. the od source crashed
        // mid-return): release the now-pointless spot host.
        if !self.returns.contains_key(&vm) {
            let _ = self.eff_terminate(Subsystem::Returns, instance, now, out);
            return;
        }
        let inst = self.cloud.instance(instance).expect("instance exists");
        let slots = inst.spec.medium_slots;
        let market = inst.market();
        self.hosts.insert(
            instance,
            HostInfo {
                hv: HostVm::new(slots),
                market,
            },
        );
        self.note_host_slots(instance);
        // Live pre-copy transfer of the running VM.
        let dirty = self
            .vms
            .get(&vm)
            .map(|r| r.workload.dirty_model())
            .unwrap_or_else(|| WorkloadKind::TpcW.dirty_model());
        let pre = simulate_precopy(self.vm_spec.mem_bytes, &dirty, &PreCopyConfig::default());
        // Fluid model: the pre-copy is a flow from the on-demand refuge to
        // the fresh spot host; otherwise it is a solo timer.
        if !self.net_add_return(vm, instance, pre.total_duration) {
            self.schedule(
                Subsystem::Returns,
                now,
                now + pre.total_duration,
                Event::ReturnTransferDone(vm),
                out,
            );
        }
    }

    /// The return's spot host lost its boot race (the market moved against
    /// us during boot): abandon the return and stay on on-demand.
    pub(super) fn on_return_boot_failed(&mut self, vm: NestedVmId, now: SimTime) {
        if self.returns.remove(&vm).is_some() {
            self.journal
                .record(now, Subsystem::Returns, Record::ReturnAbandoned { vm });
        }
    }

    pub(super) fn on_return_transfer_done(
        &mut self,
        vm: NestedVmId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        // Pre-copy finished; move the IP and volume (no downtime counted:
        // live migration keeps the VM serving until switchover).
        if !self.returns.contains_key(&vm) {
            return;
        }
        self.set_return_phase(vm, ReturnPhase::Detaching, now);
        let (eni, volume, host) = {
            let Some(r) = self.vms.get(&vm) else {
                self.returns.remove(&vm);
                return;
            };
            (r.eni, r.volume, r.host)
        };
        let mut pending = 0u8;
        let source_alive = host
            .and_then(|h| self.cloud.instance(h).ok().map(|i| i.is_usable()))
            .unwrap_or(false);
        if source_alive {
            if let Some(eni) = eni {
                if self.eff_detach_eni(Subsystem::Returns, eni, OpCtx::ReturnDetach(vm), now, out) {
                    pending += 1;
                }
            }
            if self.eff_detach_volume(
                Subsystem::Returns,
                volume,
                OpCtx::ReturnDetach(vm),
                now,
                out,
            ) {
                pending += 1;
            }
        }
        if pending == 0 {
            self.begin_return_attach(vm, now, out);
        } else if let Some(ret) = self.returns.get_mut(&vm) {
            ret.pending = pending;
        }
    }

    pub(super) fn begin_return_attach(&mut self, vm: NestedVmId, now: SimTime, out: &mut Outbox) {
        let dest = match self.returns.get(&vm) {
            Some(r) => r.dest,
            None => return,
        };
        self.set_return_phase(vm, ReturnPhase::Attaching, now);
        // Move the VM object from the od host to the spot host.
        let old_host = self.vms.get(&vm).and_then(|r| r.host);
        let obj = old_host
            .and_then(|h| self.hosts.get_mut(&h).and_then(|i| i.hv.evict(vm).ok()))
            .unwrap_or_else(|| NestedVm::new(vm, self.vm_spec, now));
        if let Some(h) = old_host {
            self.note_host_slots(h);
        }
        if let Some(info) = self.hosts.get_mut(&dest) {
            let _ = info.hv.admit(obj);
        }
        self.note_host_slots(dest);
        // Relinquish the empty od host.
        if let Some(h) = old_host {
            let empty = self
                .hosts
                .get(&h)
                .map(|i| i.hv.resident_count() == 0)
                .unwrap_or(false);
            if empty {
                self.terminate_host(h, now, out);
            }
        }
        let pending = self.attach_network_identity(
            Subsystem::Returns,
            vm,
            dest,
            OpCtx::ReturnAttach(vm),
            now,
            out,
        );
        if let Some(r) = self.vms.get_mut(&vm) {
            r.host = Some(dest);
        }
        self.note_vm_placement(vm);
        if pending == 0 {
            self.complete_return(vm, now);
        } else if let Some(ret) = self.returns.get_mut(&vm) {
            ret.pending = pending;
        }
    }

    pub(super) fn complete_return(&mut self, vm: NestedVmId, now: SimTime) {
        self.returns.remove(&vm);
        self.journal
            .record(now, Subsystem::Returns, Record::ReturnCompleted { vm });
        self.accounting.count_migration(vm);
        // Back on revocable spot: re-establish backup protection (unless
        // the VM is stateless).
        let stateless = self.vms.get(&vm).map(|r| r.stateless).unwrap_or(false);
        if self.cfg.mechanism.needs_backup() && !stateless {
            self.assign_backup(vm, now);
        }
        let host = self.vms.get(&vm).and_then(|r| r.host);
        if let Some(h) = host {
            if let Some(info) = self.hosts.get_mut(&h) {
                if let Some(v) = info.hv.vm_mut(vm) {
                    v.state = if self.cfg.mechanism.needs_backup() {
                        NestedVmState::RunningProtected
                    } else {
                        NestedVmState::Running
                    };
                }
            }
        }
        // Back on spot with a backup: the checkpoint stream resumes.
        self.net_refresh_stream(vm);
    }

    /// One of a return's detach gates completed.
    pub(super) fn on_return_detach(&mut self, vm: NestedVmId, now: SimTime, out: &mut Outbox) {
        let done = self
            .returns
            .get_mut(&vm)
            .map(|r| {
                r.pending = r.pending.saturating_sub(1);
                r.pending == 0
            })
            .unwrap_or(false);
        if done {
            self.begin_return_attach(vm, now, out);
        }
    }

    /// One of a return's attach gates completed.
    pub(super) fn on_return_attach(&mut self, vm: NestedVmId, now: SimTime) {
        let done = self
            .returns
            .get_mut(&vm)
            .map(|r| {
                r.pending = r.pending.saturating_sub(1);
                r.pending == 0
            })
            .unwrap_or(false);
        if done {
            self.complete_return(vm, now);
        }
    }
}
