//! The bounded-time migration orchestrator (paper §5).
//!
//! Drives the per-migration [`MigrationFsm`]: revocation migrations
//! (deadline-bounded final commit to the backup, restore at an on-demand
//! destination), proactive live evacuations, and the network-identity
//! handoff (detach at the source, attach + restore gate at the
//! destination). Every phase change and every refused transition is
//! journaled.

use spotcheck_cloudsim::ids::InstanceId;
use spotcheck_migrate::bounded::simulate_final_commit;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_migrate::precopy::{simulate_precopy, PreCopyConfig};
use spotcheck_migrate::restore::simulate_concurrent_restores;
use spotcheck_nestedvm::host::HostVm;
use spotcheck_nestedvm::vm::{NestedVm, NestedVmId, NestedVmState};
use spotcheck_simcore::time::{SimDuration, SimTime};

use crate::events::Event;
use crate::journal::{Record, Subsystem};
use crate::types::{MigrationId, VmStatus};

use super::effects::OpCtx;
use super::fsm::{IllegalTransition, MigPhase, MigrationFsm};
use super::pools::HostInfo;
use super::{Controller, Outbox};

/// One in-flight migration: the typed state machine plus the timing and
/// provenance data the orchestrator needs around it.
pub(super) struct Migration {
    pub(super) vm: NestedVmId,
    pub(super) source: InstanceId,
    pub(super) dest: Option<InstanceId>,
    pub(super) fsm: MigrationFsm,
    pub(super) commit_duration: SimDuration,
    pub(super) commit_pause: SimDuration,
    pub(super) paused_at: Option<SimTime>,
    pub(super) pays_downtime: bool,
    pub(super) proactive: bool,
    pub(super) live: bool,
    pub(super) started_at: SimTime,
    pub(super) dest_attempts: u32,
    pub(super) commit_aborted: bool,
    pub(super) vm_obj: Option<NestedVm>,
    pub(super) degraded: SimDuration,
    /// The platform's termination deadline (revocation migrations only) —
    /// what the contention model's violation taxonomy and fallback defense
    /// measure against.
    pub(super) deadline: Option<SimTime>,
    /// When the final commit entered the EDF admission queue, if it was
    /// staged rather than launched (contention model only).
    pub(super) queued_at: Option<SimTime>,
    /// When the final commit was first requested (contention model only).
    /// The 30 s guarantee is measured from here: queue wait counts
    /// against the bound just like transfer time.
    pub(super) commit_requested_at: Option<SimTime>,
    /// How long the commit waited in the admission queue before launch
    /// (contention model only; used to attribute bound overruns).
    pub(super) queue_waited: Option<SimDuration>,
    /// The fallback defense degraded this migration to pause-and-flush.
    pub(super) fallback: bool,
}

impl Controller {
    /// Applies `f` to the migration's state machine, journaling a
    /// [`Record::MigPhase`] on a legal phase change and a
    /// [`Record::Illegal`] on a refusal. Returns true if `f` succeeded.
    pub(super) fn mig_transition<F>(&mut self, mig: MigrationId, now: SimTime, f: F) -> bool
    where
        F: FnOnce(&mut MigrationFsm) -> Result<(), IllegalTransition>,
    {
        let res = match self.migrations.get_mut(&mig) {
            Some(m) => {
                let from = m.fsm.phase();
                let r = f(&mut m.fsm);
                let to = m.fsm.phase();
                (from, r, to)
            }
            None => return false,
        };
        match res {
            (from, Ok(()), to) => {
                if to != from {
                    self.journal.record(
                        now,
                        Subsystem::Migration,
                        Record::MigPhase {
                            mig,
                            from: from.as_str(),
                            to: to.as_str(),
                        },
                    );
                }
                true
            }
            (_, Err(e), _) => {
                self.journal_illegal(mig, e, now);
                false
            }
        }
    }

    /// Journals a refused migration transition.
    pub(super) fn journal_illegal(&mut self, mig: MigrationId, e: IllegalTransition, now: SimTime) {
        self.journal.record(
            now,
            Subsystem::Migration,
            Record::Illegal {
                mig,
                from: e.from.as_str(),
                attempted: e.attempted,
            },
        );
    }

    pub(super) fn start_migration(
        &mut self,
        vm: NestedVmId,
        source: InstanceId,
        deadline: SimTime,
        concurrent: usize,
        now: SimTime,
        out: &mut Outbox,
    ) {
        self.start_migration_inner(vm, source, Some(deadline), concurrent, now, out);
    }

    /// Proactively evacuates every resident VM of `host` by live migration
    /// (no warning involved, no downtime; §4.3's proactive optimization).
    pub(super) fn start_proactive_evacuation(
        &mut self,
        host: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let residents: Vec<NestedVmId> = self
            .hosts
            .get(&host)
            .map(|i| i.hv.resident_ids())
            .unwrap_or_default();
        let concurrent = residents.len().max(1);
        for vm in residents {
            if self.vms.get(&vm).map(|r| r.status) == Some(VmStatus::Running)
                && !self.returns.contains_key(&vm)
            {
                self.start_migration_inner(vm, host, None, concurrent, now, out);
            }
        }
    }

    pub(super) fn start_migration_inner(
        &mut self,
        vm: NestedVmId,
        source: InstanceId,
        deadline: Option<SimTime>,
        concurrent: usize,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(record) = self.vms.get(&vm) else {
            return;
        };
        let workload = record.workload;
        let stateless = record.stateless;
        self.set_status(Subsystem::Migration, vm, VmStatus::Migrating, now);
        let id = MigrationId(self.next_migration);
        self.next_migration += 1;
        // Proactive moves (no deadline) always use live migration; so do
        // stateless VMs (they have no backup to restore from); under a
        // deadline the configured mechanism otherwise decides.
        let proactive = deadline.is_none();
        let live = proactive || stateless || self.cfg.mechanism == MechanismKind::XenLive;

        let dirty = workload.dirty_model();
        let pays_downtime = !live && self.cfg.mechanism.pays_cloud_op_downtime();
        // Under the fluid contention model, interference is emergent: every
        // closed-form baseline is computed solo (concurrency 1) and the
        // shared links stretch it. Without it, the legacy closed-form
        // divides bandwidth by the warning's sibling count up front.
        let concurrent = if self.net.is_some() { 1 } else { concurrent };
        // Commit (or live-migrate) duration.
        let (commit_duration, pause) = if live {
            let pre = simulate_precopy(
                self.vm_spec.mem_bytes,
                &dirty,
                &PreCopyConfig {
                    bandwidth_bps: self.cfg.backup.nic_bps / concurrent as f64,
                    ..PreCopyConfig::default()
                },
            );
            (pre.total_duration, SimDuration::ZERO)
        } else {
            let commit = simulate_final_commit(
                self.cfg.bounded.residue_budget_bytes(),
                &dirty,
                self.vm_spec.pages(),
                self.cfg.backup.nic_bps / concurrent as f64,
                &spotcheck_migrate::bounded::BoundedTimeConfig {
                    ramp: self.cfg.mechanism.ramp(),
                    ..self.cfg.bounded.clone()
                },
            );
            (commit.commit_duration, commit.downtime)
        };

        // Degraded window / restore gate durations for this mechanism at
        // this concurrency (live transfers restore nothing).
        let (restore_gate, degraded) = if live {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            match self.cfg.mechanism.restore() {
                None => (SimDuration::ZERO, SimDuration::ZERO),
                Some((mode, path)) => {
                    let outs = simulate_concurrent_restores(
                        concurrent,
                        self.vm_spec.mem_bytes,
                        self.vm_spec.skeleton_bytes(),
                        mode,
                        path,
                        &self.cfg.backup,
                        None,
                    );
                    let worst = &outs[outs.len() - 1];
                    (worst.downtime, worst.degraded)
                }
            }
        };

        self.migrations.insert(
            id,
            Migration {
                vm,
                source,
                dest: None,
                fsm: MigrationFsm::new(),
                commit_duration,
                commit_pause: pause,
                paused_at: None,
                pays_downtime,
                proactive,
                live,
                started_at: now,
                dest_attempts: 0,
                commit_aborted: false,
                vm_obj: None,
                degraded,
                deadline,
                queued_at: None,
                commit_requested_at: None,
                queue_waited: None,
                fallback: false,
            },
        );
        self.restore_gates.insert(id, restore_gate);
        self.journal.record(
            now,
            Subsystem::Migration,
            Record::MigStarted {
                mig: id,
                vm,
                live,
                proactive,
            },
        );

        // Under a deadline, the commit (or live transfer) is deferred until
        // the destination is ready — the ramped checkpointing of §5 runs
        // through the warning period while the VM keeps serving — but a
        // deadline guard forces it early enough that the state always
        // reaches the backup before the platform pulls the plug. Proactive
        // moves have no deadline: the transfer starts when the destination
        // is up.
        if let Some(deadline) = deadline {
            let guard = deadline
                .saturating_since(SimTime::ZERO)
                .saturating_sub(commit_duration)
                .saturating_sub(SimDuration::from_secs(2));
            let guard_at = SimTime::ZERO + guard;
            self.schedule(
                Subsystem::Migration,
                now,
                guard_at.max(now),
                Event::CommitStart(id),
                out,
            );
        }

        // Acquire a destination: hot spare if available, else a fresh
        // on-demand server.
        if let Some(spare) = self.spares.pop() {
            if let Some(m) = self.migrations.get_mut(&id) {
                m.dest = Some(spare);
            }
            self.mig_transition(id, now, |f| f.note_dest_ready());
            self.start_commit(id, now, out);
            // Refill the spare pool.
            self.request_spare(now, out);
        } else {
            self.request_dest(id, now, out);
        }
    }

    /// Acquires (or re-acquires) an on-demand destination for `mig`.
    pub(super) fn request_dest(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
        match self.eff_request_on_demand(
            Subsystem::Migration,
            "m3.medium",
            &zone,
            OpCtx::DestBoot(mig),
            now,
            out,
        ) {
            Ok(instance) => {
                if let Some(m) = self.migrations.get_mut(&mig) {
                    m.dest = Some(instance);
                }
            }
            Err(_) => {
                // On-demand stockout (§4.3): the VM's state is safe on
                // the backup server; retry the destination with backoff
                // so a zone-wide stockout isn't hammered in lockstep.
                self.schedule_dest_retry(mig, now, out);
            }
        }
    }

    /// Schedules the next destination-acquisition retry for a stalled
    /// migration through the resilience [`crate::retry::RetryPolicy`]
    /// (capped exponential backoff, per-migration jitter). With retries
    /// disabled (ablation), the migration simply stalls.
    pub(super) fn schedule_dest_retry(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let (attempt, started) = match self.migrations.get_mut(&mig) {
            Some(m) => {
                m.dest_attempts += 1;
                (m.dest_attempts, m.started_at)
            }
            None => return,
        };
        let policy = &self.cfg.resilience.retry;
        if !self.cfg.resilience.retry_enabled || policy.deadline_exceeded(started, now) {
            return;
        }
        let delay = policy.delay_for(attempt, mig.0);
        self.journal.record(
            now,
            Subsystem::Migration,
            Record::Retry {
                what: "dest",
                attempt,
            },
        );
        self.schedule(
            Subsystem::Migration,
            now,
            now + delay,
            Event::CommitStart(mig),
            out,
        );
    }

    /// Begins a migration's final commit (idempotent).
    pub(super) fn start_commit(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let res = match self.migrations.get_mut(&mig) {
            Some(m) => match m.fsm.start_commit() {
                Ok(true) => Ok(Some((m.pays_downtime, m.commit_pause, m.commit_duration))),
                Ok(false) => Ok(None),
                Err(e) => Err(e),
            },
            None => return,
        };
        match res {
            Ok(Some((pays_downtime, pause, duration))) => {
                if self.net.is_some() {
                    // Fluid model: the commit becomes a flow (possibly
                    // staged behind admission); its completion instant
                    // emerges from the shared links.
                    self.net_handle_commit_start(mig, now, out);
                    return;
                }
                if pays_downtime && !pause.is_zero() {
                    self.schedule(
                        Subsystem::Migration,
                        now,
                        now + duration.saturating_sub(pause),
                        Event::PauseStart(mig),
                        out,
                    );
                }
                self.schedule(
                    Subsystem::Migration,
                    now,
                    now + duration,
                    Event::CommitDone(mig),
                    out,
                );
            }
            Ok(None) => {}
            Err(e) => self.journal_illegal(mig, e, now),
        }
    }

    /// Deadline guard / destination retry.
    pub(super) fn on_commit_start(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        // Ensure a destination acquisition is in flight (stockout retry).
        let needs_dest = self
            .migrations
            .get(&mig)
            .map(|m| m.dest.is_none())
            .unwrap_or(false);
        if needs_dest {
            self.request_dest(mig, now, out);
        }
        self.start_commit(mig, now, out);
    }

    pub(super) fn on_pause_start(&mut self, mig: MigrationId, now: SimTime) {
        let paused = match self.migrations.get_mut(&mig) {
            Some(m) if m.pays_downtime && m.paused_at.is_none() => {
                m.paused_at = Some(now);
                Some((m.vm, m.source))
            }
            _ => None,
        };
        if let Some((vm, source)) = paused {
            self.accounting.mark_down(vm, now);
            if let Some(info) = self.hosts.get_mut(&source) {
                if let Some(v) = info.hv.vm_mut(vm) {
                    v.state = NestedVmState::PausedForMigration;
                }
            }
            // A paused VM dirties no pages: its checkpoint stream stops.
            self.net_stop_stream(vm);
        }
    }

    /// The final commit landed on a non-live migration: its backup holds a
    /// complete, current checkpoint. Then advance the handoff if ready.
    pub(super) fn on_commit_done(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let (acked, illegal) = match self.migrations.get_mut(&mig) {
            Some(m) => match m.fsm.note_commit_done() {
                // A non-live final commit lands the VM's full residue on
                // its backup server: the checkpoint there is now complete
                // and current, superseding any re-replication in flight.
                Ok(()) => ((!m.live && !m.commit_aborted).then_some(m.vm), None),
                Err(e) => (None, Some(e)),
            },
            None => (None, None),
        };
        if let Some(e) = illegal {
            self.journal_illegal(mig, e, now);
        }
        if let Some(vm) = acked {
            self.ack_final_commit(vm, now);
        }
        self.try_advance(mig, now, out);
    }

    pub(super) fn try_advance(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let (vm, source, newly_paused) = {
            let Some(m) = self.migrations.get_mut(&mig) else {
                return;
            };
            if !m.fsm.ready_to_detach() {
                return;
            }
            // The VM pauses no later than here (zero-pause mechanisms keep
            // it conceptually running; EC2 ops still interrupt it — the
            // paper's 22.65 s — unless the mechanism is idealized live
            // migration).
            let newly_paused = m.pays_downtime && m.paused_at.is_none();
            if newly_paused {
                m.paused_at = Some(now);
                self.accounting.mark_down(m.vm, now);
            }
            (m.vm, m.source, newly_paused)
        };
        if newly_paused {
            // A paused VM dirties no pages: its checkpoint stream stops.
            self.net_stop_stream(vm);
        }
        // Detach the ENI and the volume from the source (only possible
        // while the source still exists; a force-terminated source already
        // released them).
        let (eni, volume) = {
            let r = self.vms.get(&vm).expect("migrating VM exists");
            (r.eni, r.volume)
        };
        let mut pending = 0u8;
        let source_alive = self
            .cloud
            .instance(source)
            .map(|i| i.is_usable())
            .unwrap_or(false);
        if source_alive {
            if let Some(eni) = eni {
                if self.eff_detach_eni(Subsystem::Migration, eni, OpCtx::MigDetach(mig), now, out)
                {
                    pending += 1;
                }
            }
            if self.eff_detach_volume(
                Subsystem::Migration,
                volume,
                OpCtx::MigDetach(mig),
                now,
                out,
            ) {
                pending += 1;
            }
        }
        self.mig_transition(mig, now, |f| f.begin_detach(pending));
        if pending == 0 {
            self.begin_attach(mig, now, out);
        }
    }

    pub(super) fn on_mig_gate_done(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let res = match self.migrations.get_mut(&mig) {
            Some(m) => m.fsm.op_done().map(|left| (left, m.fsm.phase())),
            None => return,
        };
        match res {
            Ok((0, MigPhase::Detaching)) => self.begin_attach(mig, now, out),
            Ok((0, MigPhase::Attaching)) => self.complete_migration(mig, now, out),
            Ok(_) => {}
            Err(e) => self.journal_illegal(mig, e, now),
        }
    }

    pub(super) fn begin_attach(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let (vm, source, dest, live) = match self.migrations.get(&mig) {
            Some(m) => match m.dest {
                Some(d) => (m.vm, m.source, d, m.live),
                None => return,
            },
            None => return,
        };
        // Move the VM object: evicted from a still-alive source, carried
        // across a forced termination (live transfers only), or resurrected
        // from the backup server's checkpoint (non-live). A non-live VM
        // with no source, no carried object, and no backup is gone — its
        // memory existed nowhere else.
        let vm_obj = self
            .hosts
            .get_mut(&source)
            .and_then(|i| i.hv.evict(vm).ok())
            .or_else(|| self.migrations.get_mut(&mig).and_then(|m| m.vm_obj.take()));
        self.note_host_slots(source);
        let vm_obj = match vm_obj {
            Some(obj) => obj,
            None => {
                let has_backup = self
                    .vms
                    .get(&vm)
                    .map(|r| r.backup.is_some())
                    .unwrap_or(false);
                if live || has_backup {
                    NestedVm::new(vm, self.vm_spec, now)
                } else {
                    self.abort_lost(mig, vm, now, out);
                    return;
                }
            }
        };
        // Relinquish the source once it has no residents left.
        let source_empty = self
            .hosts
            .get(&source)
            .map(|i| i.hv.resident_count() == 0)
            .unwrap_or(false);
        if source_empty
            && self
                .cloud
                .instance(source)
                .map(|i| i.is_usable())
                .unwrap_or(false)
        {
            self.terminate_host(source, now, out);
        }
        // Admit at the destination.
        if let Some(info) = self.hosts.get_mut(&dest) {
            let mut obj = vm_obj;
            obj.state = NestedVmState::Restoring;
            let _ = info.hv.admit(obj);
        }
        self.note_host_slots(dest);
        // New ENI at the destination carrying the same private IP
        // (Figure 4 / §3.4), plus the volume reattach, plus the memory
        // restore gate.
        let mut pending = self.attach_network_identity(
            Subsystem::Migration,
            vm,
            dest,
            OpCtx::MigAttach(mig),
            now,
            out,
        );
        let gate = self
            .restore_gates
            .get(&mig)
            .copied()
            .unwrap_or(SimDuration::ZERO);
        // Under the fluid model the restore is a read flow from the backup
        // disk; otherwise (or for zero/backup-less gates) it is a timer.
        if !self.net_add_restore(mig, vm, dest, gate) {
            self.schedule(
                Subsystem::Migration,
                now,
                now + gate,
                Event::RestoreDone(mig),
                out,
            );
        }
        pending += 1;
        self.mig_transition(mig, now, move |f| f.begin_attach(pending));
    }

    pub(super) fn complete_migration(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        self.mig_transition(mig, now, |f| f.complete());
        let Some(m) = self.migrations.remove(&mig) else {
            return;
        };
        self.restore_gates.remove(&mig);
        self.net_drop_migration(mig);
        let vm = m.vm;
        let dest = m.dest.expect("dest ready");
        self.journal
            .record(now, Subsystem::Migration, Record::MigCompleted { mig, vm });
        self.set_status(Subsystem::Migration, vm, VmStatus::Running, now);
        if let Some(r) = self.vms.get_mut(&vm) {
            r.host = Some(dest);
        }
        self.note_vm_placement(vm);
        // Resume: downtime ends.
        if m.paused_at.is_some() {
            self.accounting.mark_up(vm, now);
        }
        if m.proactive {
            self.accounting.count_proactive(vm);
        } else {
            self.accounting.count_migration(vm);
        }
        // The VM now sits on a non-revocable on-demand server: it no longer
        // needs backup protection (§3.5), and any re-replication in flight
        // is moot.
        self.backup_refs_sub(vm);
        if self.backups.server_of(vm).is_some() {
            let _ = self.backups.release(vm);
        }
        if let Some(r) = self.vms.get_mut(&vm) {
            r.backup = None;
        }
        self.pending_rerepl.remove(&vm);
        self.accounting.mark_protected(vm, now);
        // Lazy restores run degraded while prefetching completes.
        let state = if m.degraded.is_zero() {
            NestedVmState::Running
        } else {
            let epoch = self.degraded_epoch.or_insert(vm, 0);
            *epoch += 1;
            let epoch = *epoch;
            self.accounting.mark_degraded(vm, now);
            self.schedule(
                Subsystem::Migration,
                now,
                now + m.degraded,
                Event::DegradedEnd { vm, epoch },
                out,
            );
            NestedVmState::LazyRestoring
        };
        if let Some(info) = self.hosts.get_mut(&dest) {
            if let Some(v) = info.hv.vm_mut(vm) {
                v.state = state;
            }
        }
        // On-demand placement carries no backup: this drops the stream.
        self.net_refresh_stream(vm);
    }

    /// Aborts a migration whose VM's memory is unrecoverable: the source
    /// is gone, nothing was carried forward, and no backup holds a copy.
    pub(super) fn abort_lost(
        &mut self,
        mig: MigrationId,
        vm: NestedVmId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        self.mig_transition(mig, now, |f| f.abort());
        let Some(m) = self.migrations.remove(&mig) else {
            return;
        };
        self.restore_gates.remove(&mig);
        self.net_drop_migration(mig);
        self.journal
            .record(now, Subsystem::Migration, Record::MigAborted { mig, vm });
        if m.paused_at.is_none() {
            self.accounting.mark_down(vm, now);
        }
        self.accounting.count_lost();
        self.pending_rerepl.remove(&vm);
        self.set_status(Subsystem::Migration, vm, VmStatus::Lost, now);
        if let Some(r) = self.vms.get_mut(&vm) {
            r.host = None;
        }
        self.note_vm_placement(vm);
        self.net_refresh_stream(vm);
        self.journal
            .record(now, Subsystem::Migration, Record::VmLost { vm });
        // Release the destination we acquired for a VM that will never
        // arrive.
        if let Some(dest) = m.dest {
            let empty = self
                .hosts
                .get(&dest)
                .map(|i| i.hv.resident_count() == 0)
                .unwrap_or(false);
            if empty {
                self.terminate_host(dest, now, out);
            }
        }
    }

    /// A migration's destination host finished booting.
    pub(super) fn on_dest_boot(
        &mut self,
        mig: MigrationId,
        instance: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let slots = self
            .cloud
            .instance(instance)
            .expect("instance exists")
            .spec
            .medium_slots;
        self.hosts.insert(
            instance,
            HostInfo {
                hv: HostVm::new(slots),
                market: None,
            },
        );
        self.note_host_slots(instance);
        if self.migrations.contains_key(&mig) {
            self.mig_transition(mig, now, |f| f.note_dest_ready());
        }
        self.start_commit(mig, now, out);
        self.try_advance(mig, now, out);
    }
}
