//! The SpotCheck controller (paper §5), decomposed into subsystems.
//!
//! The controller interfaces between customers and the native IaaS
//! platform: it provisions nested VMs on the cheapest suitable spot
//! servers (slicing larger servers when per-slot prices favor it), assigns
//! backup servers, reacts to revocation warnings by orchestrating
//! bounded-time migrations to on-demand servers (using hot spares when
//! configured), moves each VM's private IP and EBS volume to the
//! destination, and migrates VMs back to their home spot pool when spikes
//! abate.
//!
//! The controller is a passive state machine driven by [`Event`]s: every
//! handler takes the current time and returns follow-up events for the
//! driver to schedule. This mirrors the paper's centralized controller
//! design ("maintains a global and consistent view of SpotCheck's state").
//!
//! # Architecture
//!
//! The implementation is split into focused subsystem modules, each an
//! `impl Controller` block over the same flat state database (the paper's
//! controller keeps one global view; so does ours):
//!
//! - [`effects`] — the typed effect bus: every platform mutation and
//!   every scheduled follow-up event funnels through an `eff_*` method
//!   that executes the effect synchronously (preserving the platform's
//!   seeded latency-draw order) and journals it.
//! - [`pools`] — host/spare pool management and host termination.
//! - [`provision`] — VM provisioning, placement, and the slicing ladder.
//! - [`migration`] — the bounded-time migration orchestrator around the
//!   explicit typed state machine [`MigrationFsm`].
//! - [`replication`] — backup assignment and epoch-guarded re-replication.
//! - [`recovery`] — crash taxonomy, forced termination, and warnings.
//! - [`returns`] — return-to-spot live migrations.
//!
//! Every subsystem threads the structured [`Journal`]
//! (see [`crate::journal`]) so a run's internal activity can be queried
//! and dumped after the fact.

mod contention;
mod effects;
mod fsm;
mod migration;
mod pools;
mod provision;
mod recovery;
mod replication;
mod returns;

pub use fsm::{IllegalTransition, MigPhase, MigrationFsm};

use std::collections::{BTreeMap, BTreeSet};

use spotcheck_backup::pool::{BackupPool, BackupServerId};
use spotcheck_cloudsim::cloud::CloudSim;
use spotcheck_cloudsim::error::CloudError;
use spotcheck_cloudsim::ids::{InstanceId, OpId, PrivateIp, VolumeId};
use spotcheck_cloudsim::instance::InstanceState;
use spotcheck_cloudsim::cloud::Notification;
use spotcheck_nestedvm::vm::{NestedVmId, NestedVmSpec};
use spotcheck_simcore::slab::IdMap;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_workloads::WorkloadKind;

use crate::accounting::{Accounting, AvailabilityReport};
use crate::config::SpotCheckConfig;
use crate::events::Event;
use crate::journal::{Journal, Record, Subsystem};
use crate::retry::MarketHealth;
use crate::types::{Customer, CustomerId, MigrationId, VmRecord, VmStatus};

use contention::FleetNet;
use effects::OpCtx;
use migration::Migration;
use pools::HostInfo;
use returns::ReturnState;

/// Scheduled follow-up events returned by controller handlers.
pub type Outbox = Vec<(SimTime, Event)>;

/// Controller errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// Unknown customer.
    UnknownCustomer(CustomerId),
    /// Unknown nested VM.
    UnknownVm(NestedVmId),
    /// Underlying cloud error.
    Cloud(CloudError),
    /// The request cannot be satisfied right now.
    Unsatisfiable(String),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnknownCustomer(c) => write!(f, "unknown customer {c}"),
            ControllerError::UnknownVm(v) => write!(f, "unknown nested VM {v}"),
            ControllerError::Cloud(e) => write!(f, "cloud error: {e}"),
            ControllerError::Unsatisfiable(s) => write!(f, "unsatisfiable: {s}"),
        }
    }
}

impl std::error::Error for ControllerError {}

impl From<CloudError> for ControllerError {
    fn from(e: CloudError) -> Self {
        ControllerError::Cloud(e)
    }
}

/// Cost summary of a run.
#[derive(Debug, Clone, Copy)]
pub struct CostReport {
    /// Dollars spent on native instances (hosts, spares, destinations).
    pub native_cost: f64,
    /// Dollars spent on backup servers.
    pub backup_cost: f64,
    /// Total dollars.
    pub total: f64,
    /// Sum of tracked VM-hours.
    pub vm_hours: f64,
    /// Average $/VM-hr.
    pub cost_per_vm_hr: f64,
}

/// The SpotCheck controller.
pub struct Controller {
    cfg: SpotCheckConfig,
    cloud: CloudSim,
    vm_spec: NestedVmSpec,
    hosts: IdMap<InstanceId, HostInfo>,
    customers: IdMap<CustomerId, Customer>,
    vms: IdMap<NestedVmId, VmRecord>,
    backups: BackupPool,
    backup_birth: IdMap<BackupServerId, SimTime>,
    backup_death: IdMap<BackupServerId, SimTime>,
    spares: Vec<InstanceId>,
    op_ctx: IdMap<OpId, OpCtx>,
    host_waiters: IdMap<InstanceId, Vec<NestedVmId>>,
    provision_pending: IdMap<NestedVmId, u8>,
    migrations: IdMap<MigrationId, Migration>,
    /// Restore-gate duration (skeleton or full-image read) per migration.
    restore_gates: IdMap<MigrationId, SimDuration>,
    returns: IdMap<NestedVmId, ReturnState>,
    degraded_epoch: IdMap<NestedVmId, u32>,
    /// VMs whose backup server holds an incomplete image (re-replication
    /// in flight). Value is the epoch guarding the pending
    /// [`Event::ReplicationDone`].
    pending_rerepl: IdMap<NestedVmId, u32>,
    repl_epoch: u32,
    /// Failed host-acquisition attempts per still-provisioning VM, for
    /// backoff on the retry.
    provision_attempts: IdMap<NestedVmId, u32>,
    /// Hosts with at least one free nested-VM slot (`hv.fits(vm_spec)`),
    /// kept exactly in sync with the hypervisor occupancy so the first-fit
    /// placement scan touches only usable hosts instead of the whole
    /// fleet. Iteration order (ascending id) matches the full scan's.
    free_slot_hosts: BTreeSet<InstanceId>,
    /// VMs currently placed on an on-demand host — the candidates of the
    /// return-to-spot sweep. A superset is safe (the sweep re-checks the
    /// full predicate); emptiness means the sweep can be skipped.
    od_hosted: BTreeSet<NestedVmId>,
    /// Per spot market: how many VMs homed there are protected by each
    /// backup server. Keys with a positive count reproduce the `avoid`
    /// list of the same-pool spreading scan without walking every VM.
    market_backup_refs: BTreeMap<MarketId, BTreeMap<BackupServerId, u32>>,
    market_health: MarketHealth,
    /// The fleet's shared-bandwidth fluid model (None: transfers keep
    /// their closed-form i.i.d. durations).
    net: Option<FleetNet>,
    accounting: Accounting,
    journal: Journal,
    next_customer: u64,
    next_vm: u64,
    next_migration: u64,
}

impl Controller {
    /// Creates a controller over a cloud platform.
    pub fn new(cloud: CloudSim, cfg: SpotCheckConfig) -> Self {
        let backups = BackupPool::new(cfg.backup.clone());
        let market_health = MarketHealth::new(cfg.resilience.health.clone());
        let net = cfg
            .contention
            .enabled
            .then(|| FleetNet::new(&cfg.contention));
        Controller {
            cfg,
            cloud,
            vm_spec: NestedVmSpec::medium(),
            hosts: IdMap::new(),
            customers: IdMap::new(),
            vms: IdMap::new(),
            backups,
            backup_birth: IdMap::new(),
            backup_death: IdMap::new(),
            spares: Vec::new(),
            op_ctx: IdMap::new(),
            host_waiters: IdMap::new(),
            provision_pending: IdMap::new(),
            migrations: IdMap::new(),
            restore_gates: IdMap::new(),
            returns: IdMap::new(),
            degraded_epoch: IdMap::new(),
            pending_rerepl: IdMap::new(),
            repl_epoch: 0,
            provision_attempts: IdMap::new(),
            free_slot_hosts: BTreeSet::new(),
            od_hosted: BTreeSet::new(),
            market_backup_refs: BTreeMap::new(),
            market_health,
            net,
            accounting: Accounting::new(),
            journal: Journal::new(),
            next_customer: 0,
            next_vm: 0,
            next_migration: 0,
        }
    }

    /// Shared view of the cloud platform.
    pub fn cloud(&self) -> &CloudSim {
        &self.cloud
    }

    /// Returns the configuration.
    pub fn config(&self) -> &SpotCheckConfig {
        &self.cfg
    }

    /// The structured event journal of this run (always on).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Returns a VM's record.
    pub fn vm(&self, id: NestedVmId) -> Result<&VmRecord, ControllerError> {
        self.vms.get(&id).ok_or(ControllerError::UnknownVm(id))
    }

    /// Number of in-flight migrations.
    pub fn active_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Currently idle hot spares.
    pub fn idle_spares(&self) -> usize {
        self.spares.len()
    }

    /// Hosts currently in the free-slot placement index (spot hosts with
    /// spare nested-VM capacity). This is the per-shard aggregate the
    /// sharded fleet gossips across shards — each shard answers the
    /// fleet-wide free-capacity query for its own slice only.
    pub fn free_slot_host_count(&self) -> usize {
        self.free_slot_hosts.len()
    }

    /// Bootstraps the deployment: schedules the first price-change event of
    /// every market and boots the configured hot spares.
    pub fn bootstrap(&mut self, now: SimTime) -> Outbox {
        let mut out = Vec::new();
        let markets: Vec<MarketId> = self.cloud.markets().cloned().collect();
        for m in markets {
            if let Some((t, _)) = self.cloud.next_change_after(&m, now) {
                self.schedule(Subsystem::Controller, now, t, Event::PriceChange(m), &mut out);
            }
        }
        for _ in 0..self.cfg.hot_spares {
            self.request_spare(now, &mut out);
        }
        // Arm the platform's first scheduled fault, if any; each delivery
        // re-arms the next (mirrors the price-change cursor).
        if let Some((t, f)) = self.cloud.next_scheduled_fault() {
            self.schedule(Subsystem::Controller, now, t.max(now), Event::Fault(f), &mut out);
        }
        out
    }

    /// Registers a new customer, carving them a VPC subnet.
    pub fn create_customer(&mut self) -> CustomerId {
        let id = CustomerId(self.next_customer);
        self.next_customer += 1;
        let subnet = self.cloud.create_subnet();
        self.customers.insert(
            id,
            Customer {
                id,
                subnet,
                vms: Vec::new(),
            },
        );
        id
    }

    /// Handles a customer's request for a (medium) nested VM. Returns the
    /// VM id immediately; provisioning proceeds asynchronously.
    pub fn request_server(
        &mut self,
        customer: CustomerId,
        workload: WorkloadKind,
        now: SimTime,
    ) -> Result<(NestedVmId, Outbox), ControllerError> {
        self.request_server_opts(customer, workload, false, now)
    }

    /// Like [`Controller::request_server`], with the stateless flag: a
    /// stateless VM is never assigned a backup server and is live-migrated
    /// on revocation (§4.2 — replicated tiers tolerate failures, so the
    /// backup cost can be skipped).
    pub fn request_server_opts(
        &mut self,
        customer: CustomerId,
        workload: WorkloadKind,
        stateless: bool,
        now: SimTime,
    ) -> Result<(NestedVmId, Outbox), ControllerError> {
        let subnet = self
            .customers
            .get(&customer)
            .ok_or(ControllerError::UnknownCustomer(customer))?
            .subnet;
        let id = NestedVmId(self.next_vm);
        self.next_vm += 1;
        let ip = self.cloud.allocate_ip(subnet);
        let volume = self.cloud.create_volume(8.0);
        self.vms.insert(
            id,
            VmRecord {
                id,
                customer,
                workload,
                stateless,
                ip,
                volume,
                eni: None,
                host: None,
                home_market: None,
                backup: None,
                status: VmStatus::Provisioning,
                requested_at: now,
                first_running_at: None,
                checkpoint_acked_at: None,
            },
        );
        self.customers
            .get_mut(&customer)
            .expect("customer exists")
            .vms
            .push(id);
        let mut out = Vec::new();
        self.schedule(Subsystem::Controller, now, now, Event::ProvisionVm(id), &mut out);
        Ok((id, out))
    }

    /// Releases a nested VM back to SpotCheck.
    pub fn release_server(
        &mut self,
        vm: NestedVmId,
        now: SimTime,
    ) -> Result<Outbox, ControllerError> {
        if !self.vms.contains_key(&vm) {
            return Err(ControllerError::UnknownVm(vm));
        }
        let mut out = Vec::new();
        self.net_catch_up(now, &mut out);
        self.set_status(Subsystem::Controller, vm, VmStatus::Released, now);
        self.backup_refs_sub(vm);
        let host = {
            let record = self.vms.get_mut(&vm).expect("checked above");
            let host = record.host.take();
            if let Some(b) = record.backup.take() {
                let _ = self.backups.release(vm);
                let _ = b;
            }
            host
        };
        self.note_vm_placement(vm);
        self.net_refresh_stream(vm);
        if let Some(h) = host {
            if let Some(info) = self.hosts.get_mut(&h) {
                let _ = info.hv.evict(vm);
                let empty = info.hv.resident_count() == 0;
                self.note_host_slots(h);
                if empty {
                    self.terminate_host(h, now, &mut out);
                }
            }
        }
        self.net_rearm(now, &mut out);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Hot-path index maintenance
    //
    // Three derived indexes keep the per-event scans O(candidates) at
    // fleet scale. Each is re-derived from the authoritative record by a
    // `note_*`/`backup_refs_*` call at every mutation site, so the scans
    // they replace stay byte-identical to walking the full maps.
    // ------------------------------------------------------------------

    /// Re-derives `free_slot_hosts` membership for `host`. Call after any
    /// change to the host's hypervisor occupancy or to its presence in
    /// `hosts`.
    pub(super) fn note_host_slots(&mut self, host: InstanceId) {
        let fits = self
            .hosts
            .get(&host)
            .map(|info| info.hv.fits(&self.vm_spec))
            .unwrap_or(false);
        if fits {
            self.free_slot_hosts.insert(host);
        } else {
            self.free_slot_hosts.remove(&host);
        }
    }

    /// Re-derives `od_hosted` membership for `vm`. Call after any change
    /// to the VM's `host` field.
    pub(super) fn note_vm_placement(&mut self, vm: NestedVmId) {
        let on_od = self
            .vms
            .get(&vm)
            .and_then(|r| r.host)
            .and_then(|h| self.hosts.get(&h))
            .map(|info| info.market.is_none())
            .unwrap_or(false);
        if on_od {
            self.od_hosted.insert(vm);
        } else {
            self.od_hosted.remove(&vm);
        }
    }

    /// Drops `vm`'s (home market, backup server) pair from
    /// `market_backup_refs`. Call *before* mutating either field.
    pub(super) fn backup_refs_sub(&mut self, vm: NestedVmId) {
        let Some(r) = self.vms.get(&vm) else { return };
        let (Some(m), Some(s)) = (r.home_market.clone(), r.backup) else {
            return;
        };
        if let Some(counts) = self.market_backup_refs.get_mut(&m) {
            if let Some(c) = counts.get_mut(&s) {
                *c -= 1;
                if *c == 0 {
                    counts.remove(&s);
                }
            }
        }
    }

    /// Records `vm`'s (home market, backup server) pair in
    /// `market_backup_refs`. Call *after* mutating either field.
    pub(super) fn backup_refs_add(&mut self, vm: NestedVmId) {
        let Some(r) = self.vms.get(&vm) else { return };
        let (Some(m), Some(s)) = (r.home_market.clone(), r.backup) else {
            return;
        };
        *self
            .market_backup_refs
            .entry(m)
            .or_default()
            .entry(s)
            .or_insert(0) += 1;
    }

    /// The main event dispatcher.
    pub fn handle_event(&mut self, event: Event, now: SimTime) -> Outbox {
        let mut out = Vec::new();
        // Sync the fluid network to `now` first (dispatching any flow
        // completions as events at `now`), so every handler mutates the
        // flow set against an up-to-date model.
        self.net_catch_up(now, &mut out);
        match event {
            Event::PriceChange(market) => self.on_price_change(&market, now, &mut out),
            Event::CloudOp(op) => self.on_cloud_op(op, now, &mut out),
            Event::ForcedTermination(instance) => {
                self.on_forced_termination(instance, now, &mut out)
            }
            Event::ProvisionVm(vm) => self.on_provision(vm, now, &mut out),
            Event::CommitStart(mig) => self.on_commit_start(mig, now, &mut out),
            Event::PauseStart(mig) => self.on_pause_start(mig, now),
            Event::CommitDone(mig) => self.on_commit_done(mig, now, &mut out),
            Event::RestoreDone(mig) => self.on_mig_gate_done(mig, now, &mut out),
            Event::DegradedEnd { vm, epoch } => self.on_degraded_end(vm, epoch, now),
            Event::ReturnTransferDone(vm) => self.on_return_transfer_done(vm, now, &mut out),
            Event::Fault(f) => self.on_fault(&f, now, &mut out),
            Event::ReplicationDone { vm, epoch } => self.on_replication_done(vm, epoch, now),
            // Stateless alarm: the catch-up above already harvested the
            // completions this wake was armed for.
            Event::FlowWake => {}
            Event::RetryTerminate { instance, attempt } => {
                self.on_retry_terminate(instance, attempt, now, &mut out)
            }
        }
        // Re-arm the next flow-completion alarm (and check fallback
        // deadlines) against whatever the handler changed.
        self.net_rearm(now, &mut out);
        out
    }

    // ------------------------------------------------------------------
    // Price dynamics
    // ------------------------------------------------------------------

    fn on_price_change(&mut self, market: &MarketId, now: SimTime, out: &mut Outbox) {
        // Re-arm the next change event for this market. The cursor-backed
        // accessor walks forward from the previous change instead of
        // re-searching the whole series on every tick.
        if let Some((t, _)) = self.cloud.next_change_after(market, now) {
            self.schedule(
                Subsystem::Controller,
                now,
                t,
                Event::PriceChange(market.clone()),
                out,
            );
        }
        // Revocation dynamics: warnings for spot instances whose bid is now
        // under water.
        let warnings = self.cloud.apply_price_change(market, now);
        for w in warnings {
            self.schedule(
                Subsystem::Controller,
                now,
                w.terminate_at,
                Event::ForcedTermination(w.instance),
                out,
            );
            self.on_warning(w.instance, w.terminate_at, now, out);
        }
        // Proactive dynamics (k>1 bids with proactive monitoring, §4.3):
        // when the price crosses the on-demand threshold but stays below
        // the bid, live-migrate away before any warning can arrive.
        if let Some(od) = self
            .cloud
            .spec(market.type_name.as_str())
            .map(|s| s.on_demand_price)
        {
            let threshold = self.cfg.bidding.proactive_threshold(od);
            let price = self.cloud.spot_price(market, now);
            let bid = self.cfg.bidding.bid(od);
            if let (Some(th), Some(p)) = (threshold, price) {
                if p > th && p <= bid {
                    let hosts_in_market: Vec<InstanceId> = self
                        .hosts
                        .iter()
                        .filter(|(id, info)| {
                            info.market.as_ref() == Some(market)
                                && self
                                    .cloud
                                    .instance(*id)
                                    .map(|i| matches!(i.state, InstanceState::Running))
                                    .unwrap_or(false)
                        })
                        .map(|(id, _)| id)
                        .collect();
                    for host in hosts_in_market {
                        self.start_proactive_evacuation(host, now, out);
                    }
                }
            }
        }
        // Allocation dynamics: if this market is now cheaper than
        // on-demand, bring home VMs that fled to on-demand.
        if self.cfg.return_to_spot {
            let price = self.cloud.spot_price(market, now);
            let od = self
                .cloud
                .spec(market.type_name.as_str())
                .map(|s| s.on_demand_price);
            if let (Some(p), Some(od)) = (price, od) {
                if p < od {
                    // `od_hosted` holds exactly the VMs placed on on-demand
                    // hosts, in id order — the same order the full scan over
                    // `vms` visited them — and the full predicate is
                    // re-checked, so the candidate list is identical.
                    let candidates: Vec<NestedVmId> = self
                        .od_hosted
                        .iter()
                        .copied()
                        .filter(|id| {
                            self.vms
                                .get(id)
                                .map(|r| {
                                    r.status == VmStatus::Running
                                        && r.home_market.as_ref() == Some(market)
                                        && !self.returns.contains_key(&r.id)
                                        && r.host
                                            .and_then(|h| self.hosts.get(&h))
                                            .map(|i| i.market.is_none())
                                            .unwrap_or(false)
                                })
                                .unwrap_or(false)
                        })
                        .collect();
                    for vm in candidates {
                        self.start_return(vm, market.clone(), now, out);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Cloud-op completion dispatch
    // ------------------------------------------------------------------

    fn on_cloud_op(&mut self, op: OpId, now: SimTime, out: &mut Outbox) {
        let Some(ctx) = self.op_ctx.remove(&op) else {
            return;
        };
        let notif = match self.cloud.complete_op(op, now) {
            Ok(n) => n,
            Err(_) => {
                self.journal.record(
                    now,
                    Subsystem::Controller,
                    Record::OpDelivered {
                        purpose: ctx.kind(),
                        outcome: "error",
                    },
                );
                return;
            }
        };
        self.journal.record(
            now,
            Subsystem::Controller,
            Record::OpDelivered {
                purpose: ctx.kind(),
                outcome: notif.kind(),
            },
        );
        match (ctx, notif) {
            (OpCtx::HostBoot, Notification::InstanceStarted { instance }) => {
                self.on_host_boot(instance, now, out);
            }
            (OpCtx::HostBoot, Notification::SpotStartFailed { instance }) => {
                self.on_host_boot_failed(instance, now, out);
            }
            (OpCtx::SpareBoot, Notification::InstanceStarted { instance }) => {
                self.on_spare_ready(instance);
            }
            (OpCtx::DestBoot(mig), Notification::InstanceStarted { instance }) => {
                self.on_dest_boot(mig, instance, now, out);
            }
            (OpCtx::ProvisionAttach(vm), n) => self.on_provision_attach(vm, &n, now, out),
            (OpCtx::MigDetach(mig), _) => self.on_mig_gate_done(mig, now, out),
            (OpCtx::MigAttach(mig), n) => match n {
                Notification::EniAttachFailed { .. } | Notification::VolumeAttachFailed { .. } => {
                    // The on-demand destination cannot be revoked; a failure
                    // here means the driver terminated it externally. Drop
                    // the gate so the migration can still complete.
                    self.on_mig_gate_done(mig, now, out);
                }
                _ => self.on_mig_gate_done(mig, now, out),
            },
            (OpCtx::ReturnBoot(vm), Notification::InstanceStarted { instance }) => {
                self.on_return_boot(vm, instance, now, out);
            }
            (OpCtx::ReturnBoot(vm), Notification::SpotStartFailed { .. }) => {
                self.on_return_boot_failed(vm, now);
            }
            (OpCtx::ReturnDetach(vm), _) => self.on_return_detach(vm, now, out),
            (OpCtx::ReturnAttach(vm), _) => self.on_return_attach(vm, now),
            (OpCtx::Terminate, _) => {}
            // Remaining combinations (e.g. a boot op completing after its
            // purpose evaporated) are benign.
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Reporting (read-only: all inspection methods take `&self`)
    // ------------------------------------------------------------------

    /// Availability/degradation report across all VMs, reading clocks at
    /// `now` without mutating them.
    pub fn availability_report(&self, now: SimTime) -> AvailabilityReport {
        self.accounting.report(now)
    }

    /// Cost report at `now`.
    pub fn cost_report(&self, now: SimTime) -> CostReport {
        let mut native = 0.0;
        for inst in self.cloud.instances() {
            native += self.cloud.instance_cost(inst.id, now).unwrap_or(0.0);
        }
        let mut backup = 0.0;
        for (id, birth) in self.backup_birth.iter() {
            // A failed backup server stops billing at its death.
            let end = self
                .backup_death
                .get(&id)
                .copied()
                .unwrap_or(now)
                .min(now);
            backup += self.cfg.backup.hourly_price * end.saturating_since(*birth).as_hours_f64();
        }
        let mut vm_hours = 0.0;
        for r in self.vms.values() {
            if let Some(start) = r.first_running_at {
                vm_hours += now.saturating_since(start).as_hours_f64();
            }
        }
        let total = native + backup;
        CostReport {
            native_cost: native,
            backup_cost: backup,
            total,
            vm_hours,
            cost_per_vm_hr: if vm_hours > 0.0 { total / vm_hours } else { 0.0 },
        }
    }

    /// Number of VMs currently in each status (for tests/diagnostics).
    pub fn status_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for r in self.vms.values() {
            *counts.entry(r.status.as_str()).or_insert(0) += 1;
        }
        counts
    }

    /// Markets whose health circuit is currently open (diagnostics).
    pub fn open_markets(&self, now: SimTime) -> Vec<MarketId> {
        self.market_health.open_markets(now)
    }

    /// VMs currently awaiting a re-replication push (diagnostics).
    pub fn pending_rereplications(&self) -> usize {
        self.pending_rerepl.len()
    }

    /// Exclusive access to the journal (for configuring a spill sink or
    /// flushing it; recording stays internal to the subsystems).
    pub fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }

    /// Toggles the return-to-spot allocation policy at runtime.
    ///
    /// The flag is only consulted at each price-change event, so flipping
    /// it between events is deterministic: a replayed run that flips it at
    /// the same simulation instant sees identical sweeps.
    pub fn set_return_to_spot(&mut self, enabled: bool) {
        self.cfg.return_to_spot = enabled;
    }

    /// A 64-bit digest enumerating the controller's dynamic state at
    /// `now`: every VM record, host occupancy, pools, migration/return
    /// machinery, journal counters, accounting clocks, and the platform's
    /// own [`CloudSim::state_digest`].
    ///
    /// Two controllers that processed the same event sequence digest
    /// identically, so the engine uses this as the snapshot signature that
    /// proves a replayed cold start converged to the original state.
    pub fn state_signature(&self, now: SimTime) -> u64 {
        let mut d = spotcheck_simcore::digest::Digest64::new();
        d.write_u64(now.as_micros());
        d.write_u64(self.next_customer);
        d.write_u64(self.next_vm);
        d.write_u64(self.next_migration);
        d.write_u64(u64::from(self.repl_epoch));
        d.write_usize(self.customers.len());
        d.write_usize(self.vms.len());
        for r in self.vms.values() {
            d.write_u64(r.id.0);
            d.write_u64(r.customer.0);
            d.write_str(r.status.as_str());
            d.write_bool(r.stateless);
            d.write_u64(r.host.map(|h| h.0).unwrap_or(u64::MAX));
            d.write_u64(r.backup.map(|b| b.0).unwrap_or(u64::MAX));
            d.write_str(r.home_market.as_ref().map(|m| m.type_name.as_str()).unwrap_or(""));
            d.write_u64(r.first_running_at.map(|t| t.as_micros()).unwrap_or(u64::MAX));
            d.write_u64(
                r.checkpoint_acked_at
                    .map(|t| t.as_micros())
                    .unwrap_or(u64::MAX),
            );
        }
        d.write_usize(self.hosts.len());
        for (id, info) in self.hosts.iter() {
            d.write_u64(id.0);
            d.write_usize(info.hv.resident_count());
            d.write_str(info.market.as_ref().map(|m| m.type_name.as_str()).unwrap_or(""));
        }
        d.write_usize(self.spares.len());
        for s in &self.spares {
            d.write_u64(s.0);
        }
        d.write_usize(self.backups.server_count());
        d.write_usize(self.backups.protected_count());
        d.write_usize(self.op_ctx.len());
        d.write_usize(self.migrations.len());
        d.write_usize(self.returns.len());
        d.write_usize(self.degraded_epoch.len());
        d.write_usize(self.pending_rerepl.len());
        d.write_usize(self.provision_pending.len());
        d.write_usize(self.free_slot_hosts.len());
        d.write_usize(self.od_hosted.len());
        for (k, v) in self.journal.counters().pairs() {
            d.write_str(k);
            d.write_u64(v);
        }
        let avail = self.accounting.report(now);
        d.write_usize(avail.vms);
        d.write_f64(avail.unavailability);
        d.write_f64(avail.degradation);
        d.write_u64(avail.total_downtime.as_micros());
        d.write_u64(avail.total_unprotected.as_micros());
        d.write_u64(avail.revocations);
        d.write_u64(avail.migrations);
        d.write_u64(avail.lost_vms);
        d.write_u64(self.cloud.state_digest());
        d.finish()
    }

    /// The private IP of a VM (stable across migrations).
    pub fn vm_ip(&self, vm: NestedVmId) -> Option<PrivateIp> {
        self.vms.get(&vm).map(|r| r.ip)
    }

    /// The EBS volume of a VM.
    pub fn vm_volume(&self, vm: NestedVmId) -> Option<VolumeId> {
        self.vms.get(&vm).map(|r| r.volume)
    }
}
