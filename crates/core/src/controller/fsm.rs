//! The explicit typed migration state machine.
//!
//! [`MigrationFsm`] is a pure value type: every transition is a named
//! method that either advances the machine or returns a typed
//! [`IllegalTransition`] without mutating anything. The orchestrator in
//! [`super::migration`] owns one per in-flight migration and journals
//! every legal phase change and every refused transition — a silent map
//! desync (the historical failure mode of the implicit `phase`/`pending`
//! fields) is now impossible.

/// Phase of a bounded-time migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigPhase {
    /// Waiting for the final commit and/or the destination.
    Prep,
    /// Detaching ENI/volume from the source.
    Detaching,
    /// Restoring memory and attaching ENI/volume at the destination.
    Attaching,
    /// Terminal: the VM runs at its destination.
    Completed,
    /// Terminal: the VM's memory was unrecoverable.
    Aborted,
}

impl MigPhase {
    /// Stable lowercase name (used in the journal).
    pub fn as_str(self) -> &'static str {
        match self {
            MigPhase::Prep => "prep",
            MigPhase::Detaching => "detaching",
            MigPhase::Attaching => "attaching",
            MigPhase::Completed => "completed",
            MigPhase::Aborted => "aborted",
        }
    }

    /// True for phases no transition leaves.
    pub fn terminal(self) -> bool {
        matches!(self, MigPhase::Completed | MigPhase::Aborted)
    }
}

/// A refused migration transition: the machine was in `from` when
/// `attempted` was requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IllegalTransition {
    /// The phase the machine was in.
    pub from: MigPhase,
    /// The transition that was refused.
    pub attempted: &'static str,
}

impl std::fmt::Display for IllegalTransition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "illegal migration transition: {} from phase {}",
            self.attempted,
            self.from.as_str()
        )
    }
}

impl std::error::Error for IllegalTransition {}

/// The typed state machine of one migration.
///
/// Tracks the phase plus the three Prep-phase gates (final commit started
/// / done, destination ready) and the count of in-flight detach/attach
/// operations. The surrounding [`super::Controller`] decides *when* to
/// attempt transitions; the machine decides whether they are legal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationFsm {
    phase: MigPhase,
    commit_started: bool,
    commit_done: bool,
    dest_ready: bool,
    pending: u8,
}

impl Default for MigrationFsm {
    fn default() -> Self {
        MigrationFsm::new()
    }
}

impl MigrationFsm {
    /// A fresh migration: `Prep`, nothing committed, no destination.
    pub fn new() -> Self {
        MigrationFsm {
            phase: MigPhase::Prep,
            commit_started: false,
            commit_done: false,
            dest_ready: false,
            pending: 0,
        }
    }

    /// A crash recovery: there is no source to commit from, so the (empty)
    /// commit is already started and done; only the destination is awaited.
    pub fn recovered() -> Self {
        MigrationFsm {
            commit_started: true,
            commit_done: true,
            ..MigrationFsm::new()
        }
    }

    /// Current phase.
    pub fn phase(&self) -> MigPhase {
        self.phase
    }

    /// True once the final commit (or live transfer) has started.
    pub fn commit_started(&self) -> bool {
        self.commit_started
    }

    /// True once the final commit (or live transfer) has finished.
    pub fn commit_done(&self) -> bool {
        self.commit_done
    }

    /// True once the destination host is booted.
    pub fn dest_ready(&self) -> bool {
        self.dest_ready
    }

    /// In-flight detach/attach operations in the current phase.
    pub fn pending(&self) -> u8 {
        self.pending
    }

    fn illegal(&self, attempted: &'static str) -> IllegalTransition {
        IllegalTransition {
            from: self.phase,
            attempted,
        }
    }

    /// Starts the final commit. Returns `Ok(true)` if this call started
    /// it, `Ok(false)` if it was already running (idempotent re-entry).
    ///
    /// # Errors
    ///
    /// Refused from a terminal phase.
    pub fn start_commit(&mut self) -> Result<bool, IllegalTransition> {
        if self.phase.terminal() {
            return Err(self.illegal("start_commit"));
        }
        if self.commit_started {
            return Ok(false);
        }
        self.commit_started = true;
        Ok(true)
    }

    /// Records the final commit finishing.
    ///
    /// # Errors
    ///
    /// Refused from a terminal phase, before the commit started, or twice.
    pub fn note_commit_done(&mut self) -> Result<(), IllegalTransition> {
        if self.phase.terminal() || !self.commit_started || self.commit_done {
            return Err(self.illegal("note_commit_done"));
        }
        self.commit_done = true;
        Ok(())
    }

    /// Records the destination host becoming ready.
    ///
    /// # Errors
    ///
    /// Refused outside `Prep` or if the destination was already ready.
    pub fn note_dest_ready(&mut self) -> Result<(), IllegalTransition> {
        if self.phase != MigPhase::Prep || self.dest_ready {
            return Err(self.illegal("note_dest_ready"));
        }
        self.dest_ready = true;
        Ok(())
    }

    /// Records the destination host dying before the handoff (it must be
    /// re-acquired).
    ///
    /// # Errors
    ///
    /// Refused outside `Prep` — past that the handoff is already using it.
    pub fn dest_lost(&mut self) -> Result<(), IllegalTransition> {
        if self.phase != MigPhase::Prep {
            return Err(self.illegal("dest_lost"));
        }
        self.dest_ready = false;
        Ok(())
    }

    /// True when the handoff can start: still in `Prep` with the commit
    /// done and the destination ready.
    pub fn ready_to_detach(&self) -> bool {
        self.phase == MigPhase::Prep && self.commit_done && self.dest_ready
    }

    /// `Prep → Detaching` with `pending` detach operations in flight.
    ///
    /// # Errors
    ///
    /// Refused unless [`MigrationFsm::ready_to_detach`].
    pub fn begin_detach(&mut self, pending: u8) -> Result<(), IllegalTransition> {
        if !self.ready_to_detach() {
            return Err(self.illegal("begin_detach"));
        }
        self.phase = MigPhase::Detaching;
        self.pending = pending;
        Ok(())
    }

    /// One detach/attach/restore gate of the current phase completed;
    /// returns the number still in flight.
    ///
    /// # Errors
    ///
    /// Refused outside `Detaching`/`Attaching` or with nothing in flight.
    pub fn op_done(&mut self) -> Result<u8, IllegalTransition> {
        if !matches!(self.phase, MigPhase::Detaching | MigPhase::Attaching) || self.pending == 0 {
            return Err(self.illegal("op_done"));
        }
        self.pending -= 1;
        Ok(self.pending)
    }

    /// `Detaching → Attaching` with `pending` attach/restore gates in
    /// flight.
    ///
    /// # Errors
    ///
    /// Refused unless `Detaching` with all detaches drained.
    pub fn begin_attach(&mut self, pending: u8) -> Result<(), IllegalTransition> {
        if self.phase != MigPhase::Detaching || self.pending != 0 {
            return Err(self.illegal("begin_attach"));
        }
        self.phase = MigPhase::Attaching;
        self.pending = pending;
        Ok(())
    }

    /// `Attaching → Completed`.
    ///
    /// # Errors
    ///
    /// Refused unless `Attaching` with all gates drained.
    pub fn complete(&mut self) -> Result<(), IllegalTransition> {
        if self.phase != MigPhase::Attaching || self.pending != 0 {
            return Err(self.illegal("complete"));
        }
        self.phase = MigPhase::Completed;
        Ok(())
    }

    /// `* → Aborted`: the VM's memory is unrecoverable.
    ///
    /// # Errors
    ///
    /// Refused from a terminal phase.
    pub fn abort(&mut self) -> Result<(), IllegalTransition> {
        if self.phase.terminal() {
            return Err(self.illegal("abort"));
        }
        self.phase = MigPhase::Aborted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_transitions_are_legal() {
        let mut f = MigrationFsm::new();
        assert_eq!(f.start_commit(), Ok(true));
        assert_eq!(f.start_commit(), Ok(false));
        f.note_commit_done().unwrap();
        f.note_dest_ready().unwrap();
        assert!(f.ready_to_detach());
        f.begin_detach(2).unwrap();
        assert_eq!(f.op_done(), Ok(1));
        assert_eq!(f.op_done(), Ok(0));
        f.begin_attach(3).unwrap();
        f.op_done().unwrap();
        f.op_done().unwrap();
        f.op_done().unwrap();
        f.complete().unwrap();
        assert!(f.phase().terminal());
    }

    #[test]
    fn illegal_transitions_return_typed_error_without_mutation() {
        let mut f = MigrationFsm::new();
        let before = f;
        let err = f.begin_detach(1).unwrap_err();
        assert_eq!(err.from, MigPhase::Prep);
        assert_eq!(err.attempted, "begin_detach");
        assert_eq!(f, before, "a refused transition must not mutate");
    }

    #[test]
    fn recovered_machine_skips_the_commit() {
        let mut f = MigrationFsm::recovered();
        assert!(f.commit_done());
        f.note_dest_ready().unwrap();
        assert!(f.ready_to_detach());
        f.begin_detach(0).unwrap();
        f.begin_attach(1).unwrap();
        assert_eq!(f.op_done(), Ok(0));
        f.complete().unwrap();
    }

    #[test]
    fn terminal_phases_refuse_everything() {
        let mut f = MigrationFsm::new();
        f.abort().unwrap();
        assert!(f.start_commit().is_err());
        assert!(f.note_commit_done().is_err());
        assert!(f.abort().is_err());
        assert_eq!(f.phase(), MigPhase::Aborted);
    }
}
