//! The typed effect bus.
//!
//! Subsystems never call the platform or push outbox events directly:
//! every side effect funnels through one of the `eff_*` methods here. The
//! bus executes the effect synchronously — the platform's seeded latency
//! draws depend on the exact call order, so effects cannot be queued and
//! replayed later — and journals it with the emitting subsystem's tag.
//! This gives every subsystem the same three-step contract: mutate local
//! state, emit effects, return.

use spotcheck_cloudsim::error::CloudError;
use spotcheck_cloudsim::ids::{EniId, InstanceId, VolumeId};
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::ZoneName;

use crate::events::Event;
use crate::journal::{Effect, Record, Subsystem};
use crate::types::{MigrationId, VmStatus};
use spotcheck_nestedvm::vm::NestedVmId;

use super::{Controller, Outbox};

/// Semantic context of an in-flight cloud operation.
#[derive(Debug, Clone)]
pub(super) enum OpCtx {
    /// A native spot/on-demand host booting for provisioning.
    HostBoot,
    /// A hot spare booting.
    SpareBoot,
    /// A migration destination booting.
    DestBoot(MigrationId),
    /// An ENI/volume attach during VM provisioning.
    ProvisionAttach(NestedVmId),
    /// A detach on a migration's source.
    MigDetach(MigrationId),
    /// An attach on a migration's destination.
    MigAttach(MigrationId),
    /// A spot host booting for a return-to-spot live migration.
    ReturnBoot(NestedVmId),
    /// Detaches from the on-demand host during a return.
    ReturnDetach(NestedVmId),
    /// Attaches at the spot host during a return.
    ReturnAttach(NestedVmId),
    /// A fire-and-forget terminate.
    Terminate,
}

impl OpCtx {
    /// Stable lowercase name (used as the journal's `purpose` tag).
    pub(super) fn kind(&self) -> &'static str {
        match self {
            OpCtx::HostBoot => "host_boot",
            OpCtx::SpareBoot => "spare_boot",
            OpCtx::DestBoot(_) => "dest_boot",
            OpCtx::ProvisionAttach(_) => "provision_attach",
            OpCtx::MigDetach(_) => "mig_detach",
            OpCtx::MigAttach(_) => "mig_attach",
            OpCtx::ReturnBoot(_) => "return_boot",
            OpCtx::ReturnDetach(_) => "return_detach",
            OpCtx::ReturnAttach(_) => "return_attach",
            OpCtx::Terminate => "terminate",
        }
    }
}

#[allow(clippy::too_many_arguments)] // The bus carries full effect context.
impl Controller {
    /// Schedules a follow-up event on the outbox, journaling it.
    pub(super) fn schedule(
        &mut self,
        sub: Subsystem,
        now: SimTime,
        at: SimTime,
        event: Event,
        out: &mut Outbox,
    ) {
        self.journal.record(
            now,
            sub,
            Record::Effect(Effect::Schedule { event: event.kind() }),
        );
        out.push((at, event));
    }

    /// Requests a spot host, wiring its boot op to `ctx`.
    pub(super) fn eff_request_spot(
        &mut self,
        sub: Subsystem,
        type_name: &str,
        zone: &ZoneName,
        bid: f64,
        ctx: OpCtx,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<InstanceId, CloudError> {
        let (instance, op, ready) = self.cloud.request_spot(type_name, zone, bid, now)?;
        self.journal
            .record(now, sub, Record::Effect(Effect::AcquireSpot { instance }));
        self.op_ctx.insert(op, ctx);
        out.push((ready, Event::CloudOp(op)));
        Ok(instance)
    }

    /// Requests an on-demand host, wiring its boot op to `ctx`.
    pub(super) fn eff_request_on_demand(
        &mut self,
        sub: Subsystem,
        type_name: &str,
        zone: &ZoneName,
        ctx: OpCtx,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<InstanceId, CloudError> {
        let (instance, op, ready) = self.cloud.request_on_demand(type_name, zone, now)?;
        self.journal.record(
            now,
            sub,
            Record::Effect(Effect::AcquireOnDemand { instance }),
        );
        self.op_ctx.insert(op, ctx);
        out.push((ready, Event::CloudOp(op)));
        Ok(instance)
    }

    /// Issues an ENI attach; true if the platform accepted it.
    pub(super) fn eff_attach_eni(
        &mut self,
        sub: Subsystem,
        eni: EniId,
        instance: InstanceId,
        ctx: OpCtx,
        now: SimTime,
        out: &mut Outbox,
    ) -> bool {
        match self.cloud.attach_eni(eni, instance, now) {
            Ok((op, ready)) => {
                self.journal
                    .record(now, sub, Record::Effect(Effect::AttachEni { instance }));
                self.op_ctx.insert(op, ctx);
                out.push((ready, Event::CloudOp(op)));
                true
            }
            Err(_) => false,
        }
    }

    /// Issues a volume attach; true if the platform accepted it.
    pub(super) fn eff_attach_volume(
        &mut self,
        sub: Subsystem,
        volume: VolumeId,
        instance: InstanceId,
        ctx: OpCtx,
        now: SimTime,
        out: &mut Outbox,
    ) -> bool {
        match self.cloud.attach_volume(volume, instance, now) {
            Ok((op, ready)) => {
                self.journal
                    .record(now, sub, Record::Effect(Effect::AttachVolume { instance }));
                self.op_ctx.insert(op, ctx);
                out.push((ready, Event::CloudOp(op)));
                true
            }
            Err(_) => false,
        }
    }

    /// Issues an ENI detach; true if the platform accepted it.
    pub(super) fn eff_detach_eni(
        &mut self,
        sub: Subsystem,
        eni: EniId,
        ctx: OpCtx,
        now: SimTime,
        out: &mut Outbox,
    ) -> bool {
        match self.cloud.detach_eni(eni, now) {
            Ok((op, ready)) => {
                self.journal
                    .record(now, sub, Record::Effect(Effect::DetachEni));
                self.op_ctx.insert(op, ctx);
                out.push((ready, Event::CloudOp(op)));
                true
            }
            Err(_) => false,
        }
    }

    /// Issues a volume detach; true if the platform accepted it.
    pub(super) fn eff_detach_volume(
        &mut self,
        sub: Subsystem,
        volume: VolumeId,
        ctx: OpCtx,
        now: SimTime,
        out: &mut Outbox,
    ) -> bool {
        match self.cloud.detach_volume(volume, now) {
            Ok((op, ready)) => {
                self.journal
                    .record(now, sub, Record::Effect(Effect::DetachVolume));
                self.op_ctx.insert(op, ctx);
                out.push((ready, Event::CloudOp(op)));
                true
            }
            Err(_) => false,
        }
    }

    /// Issues a user termination (fire-and-forget context).
    pub(super) fn eff_terminate(
        &mut self,
        sub: Subsystem,
        instance: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) -> Result<(), CloudError> {
        let (op, ready) = self.cloud.terminate(instance, now)?;
        self.journal
            .record(now, sub, Record::Effect(Effect::Terminate { instance }));
        self.op_ctx.insert(op, OpCtx::Terminate);
        out.push((ready, Event::CloudOp(op)));
        Ok(())
    }

    /// Executes the platform's forced termination; true if it reclaimed the
    /// instance (false if it was already relinquished).
    pub(super) fn eff_force_terminate(
        &mut self,
        sub: Subsystem,
        instance: InstanceId,
        now: SimTime,
    ) -> bool {
        self.journal
            .record(now, sub, Record::Effect(Effect::ForceTerminate { instance }));
        self.cloud.force_terminate(instance, now).unwrap_or(false)
    }

    /// Sets a VM's lifecycle status, journaling real transitions.
    pub(super) fn set_status(
        &mut self,
        sub: Subsystem,
        vm: NestedVmId,
        to: VmStatus,
        now: SimTime,
    ) {
        if let Some(r) = self.vms.get_mut(&vm) {
            let from = r.status;
            r.status = to;
            if from != to {
                self.journal.record(
                    now,
                    sub,
                    Record::VmStatus {
                        vm,
                        from: from.as_str(),
                        to: to.as_str(),
                    },
                );
            }
        }
    }

    /// The network-transparency ladder (§4.1): creates an ENI bound to the
    /// VM's stable private IP and issues the ENI + volume attaches against
    /// `dest`, wiring both ops to `ctx`. Shared by provisioning, migration,
    /// and return paths. Returns the number of attach gates in flight.
    pub(super) fn attach_network_identity(
        &mut self,
        sub: Subsystem,
        vm: NestedVmId,
        dest: InstanceId,
        ctx: OpCtx,
        now: SimTime,
        out: &mut Outbox,
    ) -> u8 {
        let (ip, volume) = {
            let r = self.vms.get(&vm).expect("VM record exists");
            (r.ip, r.volume)
        };
        let eni = self.cloud.create_eni(Some(ip));
        if let Some(r) = self.vms.get_mut(&vm) {
            r.eni = Some(eni);
        }
        let mut pending = 0u8;
        if self.eff_attach_eni(sub, eni, dest, ctx.clone(), now, out) {
            pending += 1;
        }
        if self.eff_attach_volume(sub, volume, dest, ctx, now, out) {
            pending += 1;
        }
        pending
    }
}
