//! VM provisioning and placement.
//!
//! Implements the provisioning ladder (paper §4.2): reuse a free slot on
//! an existing spot host, join a still-booting host with uncommitted
//! slots (the second medium VM of a freshly-sliced larger server), buy a
//! new spot host via the placement policy (greedy picks the cheapest per
//! slot — the slicing arbitrage), or fall back to on-demand with retry
//! backoff.

use spotcheck_cloudsim::error::CloudError;
use spotcheck_cloudsim::ids::InstanceId;
use spotcheck_cloudsim::instance::InstanceState;
use spotcheck_nestedvm::host::HostVm;
use spotcheck_nestedvm::vm::{NestedVmId, NestedVmState};
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;

use crate::events::Event;
use crate::journal::{Record, Subsystem};
use crate::policy::placement::{choose_index, Candidate};
use crate::types::VmStatus;
use spotcheck_cloudsim::cloud::Notification;

use super::effects::OpCtx;
use super::pools::HostInfo;
use super::{Controller, Outbox};

impl Controller {
    pub(super) fn on_provision(&mut self, vm: NestedVmId, now: SimTime, out: &mut Outbox) {
        let Some(record) = self.vms.get(&vm) else {
            return;
        };
        if record.status != VmStatus::Provisioning {
            return;
        }
        // 1. Reuse a free slot on an existing spot host in one of the
        //    mapping policy's markets. `free_slot_hosts` holds exactly the
        //    hosts whose hypervisor fits another VM, in id order — the same
        //    order the full-map scan used — so the first match is identical.
        let markets = self.cfg.mapping.markets(&self.cfg.zone);
        let existing = self.free_slot_hosts.iter().copied().find_map(|id| {
            let info = self.hosts.get(&id)?;
            let usable = self
                .cloud
                .instance(id)
                .map(|i| matches!(i.state, InstanceState::Running))
                .unwrap_or(false);
            match &info.market {
                Some(m) if markets.contains(m) && usable && info.hv.fits(&self.vm_spec) => {
                    Some((id, m.clone()))
                }
                _ => None,
            }
        });
        if let Some((host, market)) = existing {
            self.place_vm(vm, host, Some(market), now, out);
            return;
        }
        // 1b. Join a host that is still booting and has uncommitted slots
        //     (e.g. the second medium VM of a freshly-sliced m3.large).
        let pending = self.host_waiters.iter().find_map(|(inst, waiters)| {
            let i = self.cloud.instance(inst).ok()?;
            if !matches!(i.state, InstanceState::Pending) {
                return None;
            }
            let in_scope = match i.market() {
                Some(m) => markets.contains(&m),
                None => true,
            };
            if in_scope && (waiters.len() as u32) < i.spec.medium_slots {
                Some((inst, i.market()))
            } else {
                None
            }
        });
        if let Some((inst, market)) = pending {
            self.host_waiters
                .get_mut(&inst)
                .expect("pending host has a waiter list")
                .push(vm);
            if let Some(r) = self.vms.get_mut(&vm) {
                if r.home_market.is_none() {
                    r.home_market = market;
                }
            }
            return;
        }
        // 2. Buy a new native spot server: placement policy over the
        //    mapping markets (greedy picks the cheapest per slot, which is
        //    the §4.2 slicing arbitrage).
        let ordered_markets: Vec<MarketId> = {
            let mut candidates = Vec::new();
            for (i, m) in markets.iter().enumerate() {
                if let (Some(trace), Some(spec)) = (
                    self.cloud.market_trace(m),
                    self.cloud.spec(m.type_name.as_str()),
                ) {
                    candidates.push((i, m.clone(), spec.medium_slots, trace));
                }
            }
            let cand_refs: Vec<Candidate<'_>> = candidates
                .iter()
                .map(|(i, _, slots, trace)| Candidate {
                    index: *i,
                    trace,
                    slots: *slots,
                })
                .collect();
            let mut order: Vec<usize> = Vec::new();
            if let Some(first) = choose_index(self.cfg.placement, &cand_refs, now) {
                order.push(first);
            }
            for (i, ..) in &candidates {
                if !order.contains(i) {
                    order.push(*i);
                }
            }
            order
                .into_iter()
                .map(|idx| {
                    candidates
                        .iter()
                        .find(|(i, ..)| *i == idx)
                        .expect("ordered index is a candidate")
                        .1
                        .clone()
                })
                .collect()
        };
        let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
        for market in ordered_markets {
            // Circuit breaker: a market that keeps failing (transient API
            // errors, boot races) is excluded for a cooldown; provisioning
            // falls through to the next-cheapest market or on-demand.
            if self.market_health.is_open(&market, now) {
                continue;
            }
            let od = self
                .cloud
                .spec(market.type_name.as_str())
                .expect("candidate spec exists")
                .on_demand_price;
            let bid = self.cfg.bidding.bid(od);
            match self.eff_request_spot(
                Subsystem::Provision,
                market.type_name.as_str(),
                &zone,
                bid,
                OpCtx::HostBoot,
                now,
                out,
            ) {
                Ok(instance) => {
                    self.market_health.record_success(&market);
                    self.host_waiters.or_default(instance).push(vm);
                    // Remember the VM's home market for return-to-spot.
                    self.backup_refs_sub(vm);
                    if let Some(r) = self.vms.get_mut(&vm) {
                        r.home_market = Some(market);
                    }
                    self.backup_refs_add(vm);
                    return;
                }
                // Economic rejection, not ill health: the price is simply
                // above our bid right now.
                Err(CloudError::BidBelowPrice { .. }) => continue,
                Err(CloudError::ApiUnavailable) => {
                    self.market_health.record_failure(&market, now);
                    continue;
                }
                Err(_) => continue,
            }
        }
        // 3. Every spot market is above our bid right now: fall back to an
        //    on-demand host (the VM will move to spot when prices permit).
        match self.eff_request_on_demand(
            Subsystem::Provision,
            "m3.medium",
            &zone,
            OpCtx::HostBoot,
            now,
            out,
        ) {
            Ok(instance) => {
                self.host_waiters.or_default(instance).push(vm);
                if let Some(r) = self.vms.get_mut(&vm) {
                    if r.home_market.is_none() {
                        // Home defaults to the first mapping market. The VM
                        // has no backup yet, so no refcount to maintain.
                        r.home_market =
                            self.cfg.mapping.markets(&self.cfg.zone).into_iter().next();
                    }
                }
            }
            // Nothing anywhere — spot markets above our bid, skipped, or
            // erroring, and on-demand stocked out or throttled. Back off
            // and try the whole ladder again; without this the VM would
            // sit in Provisioning forever.
            Err(_) if self.cfg.resilience.retry_enabled => {
                let attempt = {
                    let attempt = self.provision_attempts.or_insert(vm, 0);
                    *attempt += 1;
                    *attempt
                };
                let delay = self.cfg.resilience.retry.delay_for(attempt, vm.0);
                self.journal.record(
                    now,
                    Subsystem::Provision,
                    Record::Retry {
                        what: "provision",
                        attempt,
                    },
                );
                self.schedule(
                    Subsystem::Provision,
                    now,
                    now + delay,
                    Event::ProvisionVm(vm),
                    out,
                );
            }
            Err(_) => {}
        }
    }

    /// Boots the nested VM on `host` and starts attaching its ENI/volume.
    pub(super) fn place_vm(
        &mut self,
        vm: NestedVmId,
        host: InstanceId,
        market: Option<MarketId>,
        now: SimTime,
        out: &mut Outbox,
    ) {
        if !self.vms.contains_key(&vm) {
            return;
        }
        let info = self.hosts.get_mut(&host).expect("host exists");
        if info.hv.boot(vm, self.vm_spec, now).is_err() {
            // Lost the slot to a race: retry provisioning.
            self.schedule(Subsystem::Provision, now, now, Event::ProvisionVm(vm), out);
            return;
        }
        self.note_host_slots(host);
        if let Some(record) = self.vms.get_mut(&vm) {
            record.host = Some(host);
            if record.home_market.is_none() {
                record.home_market = market;
            }
        }
        self.note_vm_placement(vm);
        let pending = self.attach_network_identity(
            Subsystem::Provision,
            vm,
            host,
            OpCtx::ProvisionAttach(vm),
            now,
            out,
        );
        if pending == 0 {
            // Host died under us: retry.
            self.schedule(Subsystem::Provision, now, now, Event::ProvisionVm(vm), out);
            return;
        }
        self.provision_pending.insert(vm, pending);
    }

    pub(super) fn finish_provisioning(&mut self, vm: NestedVmId, now: SimTime) {
        self.provision_attempts.remove(&vm);
        if !self.vms.contains_key(&vm) {
            return;
        }
        self.set_status(Subsystem::Provision, vm, VmStatus::Running, now);
        {
            let record = self.vms.get_mut(&vm).expect("checked above");
            if record.first_running_at.is_none() {
                record.first_running_at = Some(now);
                self.accounting.track(vm, now);
            } else {
                // A re-provision after a crash: the downtime clock has been
                // running since the host died.
                self.accounting.mark_up(vm, now);
            }
        }
        let host = self.vms.get(&vm).and_then(|r| r.host);
        // Protect the VM with a backup server when it sits on a spot host
        // and the mechanism uses bounded-time migration.
        let on_spot = host
            .and_then(|h| self.hosts.get(&h))
            .map(|i| i.market.is_some())
            .unwrap_or(false);
        let stateless = self.vms.get(&vm).map(|r| r.stateless).unwrap_or(false);
        if on_spot && !stateless && self.cfg.mechanism.needs_backup() {
            self.assign_backup(vm, now);
        }
        if let Some(h) = host {
            if let Some(info) = self.hosts.get_mut(&h) {
                if let Some(v) = info.hv.vm_mut(vm) {
                    v.state = if on_spot && !stateless && self.cfg.mechanism.needs_backup() {
                        NestedVmState::RunningProtected
                    } else {
                        NestedVmState::Running
                    };
                }
            }
        }
        // A protected spot placement starts its background checkpoint
        // stream in the fluid model.
        self.net_refresh_stream(vm);
    }

    /// A provisioning host finished booting: place its waiters.
    pub(super) fn on_host_boot(&mut self, instance: InstanceId, now: SimTime, out: &mut Outbox) {
        let spec = self
            .cloud
            .instance(instance)
            .expect("instance exists")
            .spec
            .clone();
        let market = self
            .cloud
            .instance(instance)
            .expect("instance exists")
            .market();
        self.hosts.insert(
            instance,
            HostInfo {
                hv: HostVm::new(spec.medium_slots),
                market: market.clone(),
            },
        );
        self.note_host_slots(instance);
        for vm in self.host_waiters.remove(&instance).unwrap_or_default() {
            self.place_vm(vm, instance, market.clone(), now, out);
        }
    }

    /// A provisioning spot host lost its boot race (price moved during
    /// startup): re-run the ladder for its waiters.
    pub(super) fn on_host_boot_failed(
        &mut self,
        instance: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        // A boot race (price moved during startup) counts against
        // the market's health.
        if let Some(market) = self.cloud.instance(instance).ok().and_then(|i| i.market()) {
            self.market_health.record_failure(&market, now);
        }
        for vm in self.host_waiters.remove(&instance).unwrap_or_default() {
            self.schedule(Subsystem::Provision, now, now, Event::ProvisionVm(vm), out);
        }
    }

    /// One of a provisioning VM's attach gates completed.
    pub(super) fn on_provision_attach(
        &mut self,
        vm: NestedVmId,
        n: &Notification,
        now: SimTime,
        out: &mut Outbox,
    ) {
        match n {
            Notification::EniAttached { .. } | Notification::VolumeAttached { .. } => {
                let left = self
                    .provision_pending
                    .get_mut(&vm)
                    .map(|p| {
                        *p = p.saturating_sub(1);
                        *p
                    })
                    .unwrap_or(0);
                if left == 0 {
                    self.provision_pending.remove(&vm);
                    self.finish_provisioning(vm, now);
                }
            }
            Notification::EniAttachFailed { .. } | Notification::VolumeAttachFailed { .. } => {
                // The host died mid-provision: start over.
                self.provision_pending.remove(&vm);
                if let Some(r) = self.vms.get_mut(&vm) {
                    r.host = None;
                }
                self.note_vm_placement(vm);
                self.schedule(Subsystem::Provision, now, now, Event::ProvisionVm(vm), out);
            }
            _ => {}
        }
    }
}
