//! Identifiers and records of the SpotCheck controller's state database.
//!
//! The paper's controller "maintains a global and consistent view of
//! SpotCheck's state, e.g., the information about all of its provisioned
//! spot and on-demand servers and all of its customers' nested VMs and
//! their location … and stores this information in a database" (§5).

use std::fmt;

use spotcheck_backup::pool::BackupServerId;
use spotcheck_cloudsim::ids::{EniId, InstanceId, PrivateIp, VolumeId};
use spotcheck_cloudsim::storage::SubnetId;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_workloads::WorkloadKind;

/// Identifies a SpotCheck customer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CustomerId(pub u64);

impl fmt::Display for CustomerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cust-{:04}", self.0)
    }
}

// Allocated monotonically by the controller; indexes dense
// `spotcheck_simcore::slab::IdMap` storage directly.
impl spotcheck_simcore::slab::DenseKey for CustomerId {
    fn dense_index(self) -> usize {
        self.0 as usize
    }
    fn from_dense_index(index: usize) -> Self {
        CustomerId(index as u64)
    }
}

/// Identifies a migration in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MigrationId(pub u64);

impl fmt::Display for MigrationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mig-{:06}", self.0)
    }
}

// Allocated monotonically by the controller; indexes dense
// `spotcheck_simcore::slab::IdMap` storage directly.
impl spotcheck_simcore::slab::DenseKey for MigrationId {
    fn dense_index(self) -> usize {
        self.0 as usize
    }
    fn from_dense_index(index: usize) -> Self {
        MigrationId(index as u64)
    }
}

/// A customer account.
#[derive(Debug, Clone)]
pub struct Customer {
    /// Id.
    pub id: CustomerId,
    /// The customer's private subnet within SpotCheck's VPC (§3.4).
    pub subnet: SubnetId,
    /// The customer's nested VMs.
    pub vms: Vec<NestedVmId>,
}

/// Where a nested VM currently is in its provisioning/migration life.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmStatus {
    /// Being provisioned (native host booting or resources attaching).
    Provisioning,
    /// Serving the customer.
    Running,
    /// Mid-migration.
    Migrating,
    /// Released by the customer.
    Released,
    /// Unrecoverable: the VM's host died with no backup copy of its state
    /// to restore from. Only reachable when re-replication is disabled or
    /// a crash strikes inside an unprotected window.
    Lost,
}

impl VmStatus {
    /// Stable lowercase name (used in the journal and status counts).
    pub fn as_str(self) -> &'static str {
        match self {
            VmStatus::Provisioning => "provisioning",
            VmStatus::Running => "running",
            VmStatus::Migrating => "migrating",
            VmStatus::Released => "released",
            VmStatus::Lost => "lost",
        }
    }
}

/// The controller's record of one nested VM.
#[derive(Debug, Clone)]
pub struct VmRecord {
    /// Id.
    pub id: NestedVmId,
    /// Owning customer.
    pub customer: CustomerId,
    /// The workload the customer runs (used for dirty-rate modeling).
    pub workload: WorkloadKind,
    /// Stateless services tolerate failures by design (e.g. one web server
    /// of a replicated tier), so SpotCheck can skip backup protection and
    /// use live migration on revocation, avoiding the backup cost (§4.2).
    pub stateless: bool,
    /// The VM's stable private IP (survives migrations; §3.4).
    pub ip: PrivateIp,
    /// The VM's root/persistent EBS volume.
    pub volume: VolumeId,
    /// The ENI currently carrying the VM's IP, if attached.
    pub eni: Option<EniId>,
    /// The native instance currently hosting the VM, if placed.
    pub host: Option<InstanceId>,
    /// The spot pool the VM is mapped to (its "home" market — the VM
    /// returns here after spikes abate).
    pub home_market: Option<MarketId>,
    /// The backup server protecting the VM, if any.
    pub backup: Option<BackupServerId>,
    /// Lifecycle status.
    pub status: VmStatus,
    /// When the VM was requested.
    pub requested_at: SimTime,
    /// When the VM first became available to the customer.
    pub first_running_at: Option<SimTime>,
    /// When a backup server last acknowledged a complete, consistent
    /// checkpoint of this VM. Monotone nondecreasing; `None` until first
    /// protection. Restores never use state older than this instant.
    pub checkpoint_acked_at: Option<SimTime>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_display() {
        assert_eq!(CustomerId(3).to_string(), "cust-0003");
        assert_eq!(MigrationId(12).to_string(), "mig-000012");
    }
}
