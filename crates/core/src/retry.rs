//! Controller resilience: typed retry policies and spot-market health.
//!
//! The controller talks to a cloud whose control plane can throttle, stock
//! out, or slow down (see `spotcheck_cloudsim::faults`). Two primitives
//! keep it from either hammering a failing API or stalling forever:
//!
//! - [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter and an optional per-operation give-up deadline. Every retried
//!   operation in the controller (destination acquisition after a
//!   stockout, host termination after a transient error) routes its delay
//!   through here.
//! - [`MarketHealth`] — a per-market circuit breaker. A market that fails
//!   repeatedly (bid rejections, transient errors, boot races) is *opened*
//!   for a cooldown, during which provisioning skips it and falls through
//!   to the next-cheapest market or on-demand.
//!
//! All jitter derives from `(salt, attempt)` through a seeded
//! [`SimRng`], so runs remain bit-for-bit reproducible.

use std::collections::BTreeMap;

use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: SimDuration,
    /// Multiplier applied per attempt.
    pub factor: f64,
    /// Ceiling on any single delay (pre-jitter).
    pub max_delay: SimDuration,
    /// Jitter amplitude as a fraction of the delay: the delay is scaled by
    /// a factor uniform in `[1 - jitter_frac, 1 + jitter_frac]`. Zero
    /// disables jitter (useful in tests).
    pub jitter_frac: f64,
    /// Give up on the operation once this much time has passed since it
    /// began. `None` retries forever.
    pub give_up_after: Option<SimDuration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: SimDuration::from_secs(10),
            factor: 2.0,
            max_delay: SimDuration::from_secs(300),
            jitter_frac: 0.1,
            give_up_after: None,
        }
    }
}

impl RetryPolicy {
    /// Returns the backoff delay before retry number `attempt` (1-based).
    ///
    /// `salt` identifies the operation (e.g. a migration id) so that
    /// concurrent retries of different operations decorrelate instead of
    /// thundering back in lockstep; the same `(salt, attempt)` always
    /// yields the same delay.
    pub fn delay_for(&self, attempt: u32, salt: u64) -> SimDuration {
        let attempt = attempt.max(1);
        let exp = self.factor.powi(attempt as i32 - 1);
        let raw = self.base.mul_f64(exp).min(self.max_delay);
        if self.jitter_frac <= 0.0 {
            return raw;
        }
        let u = SimRng::seed(salt)
            .fork(u64::from(attempt))
            .fork_named("retry-jitter")
            .next_f64();
        let scale = 1.0 + self.jitter_frac * (2.0 * u - 1.0);
        raw.mul_f64(scale)
    }

    /// True once an operation started at `started` should stop retrying.
    pub fn deadline_exceeded(&self, started: SimTime, now: SimTime) -> bool {
        match self.give_up_after {
            Some(d) => now.saturating_since(started) >= d,
            None => false,
        }
    }
}

/// Circuit-breaker thresholds for [`MarketHealth`].
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive failures that open the circuit.
    pub failure_threshold: u32,
    /// How long an open circuit excludes the market.
    pub cooldown: SimDuration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(600),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct MarketState {
    consecutive_failures: u32,
    open_until: Option<SimTime>,
}

/// Per-market request-health tracker with circuit breaking.
///
/// While a market's circuit is open, [`MarketHealth::is_open`] returns
/// true and the provisioning path skips the market, falling back to the
/// next-cheapest candidate or on-demand. After the cooldown the circuit
/// half-closes: the next attempt is allowed through, and its outcome
/// immediately re-opens or fully closes the circuit.
#[derive(Debug, Clone, Default)]
pub struct MarketHealth {
    cfg: HealthConfig,
    states: BTreeMap<MarketId, MarketState>,
}

impl MarketHealth {
    /// Creates a tracker with the given thresholds.
    pub fn new(cfg: HealthConfig) -> Self {
        MarketHealth {
            cfg,
            states: BTreeMap::new(),
        }
    }

    /// Records a failed request against `market`. Returns true if this
    /// failure opened (or re-opened) the circuit.
    pub fn record_failure(&mut self, market: &MarketId, now: SimTime) -> bool {
        let s = self.states.entry(market.clone()).or_default();
        s.consecutive_failures += 1;
        if s.consecutive_failures >= self.cfg.failure_threshold {
            let was_open = s.open_until.is_some_and(|t| now < t);
            s.open_until = Some(now + self.cfg.cooldown);
            return !was_open;
        }
        false
    }

    /// Records a successful request: closes the circuit and resets the
    /// failure streak.
    pub fn record_success(&mut self, market: &MarketId) {
        self.states.remove(market);
    }

    /// True while the market's circuit is open at `now`.
    pub fn is_open(&self, market: &MarketId, now: SimTime) -> bool {
        self.states
            .get(market)
            .and_then(|s| s.open_until)
            .is_some_and(|until| now < until)
    }

    /// Markets whose circuit is currently open (diagnostics).
    pub fn open_markets(&self, now: SimTime) -> Vec<MarketId> {
        self.states
            .iter()
            .filter(|(_, s)| s.open_until.is_some_and(|until| now < until))
            .map(|(m, _)| m.clone())
            .collect()
    }
}

/// Toggles and tuning for the controller's resilience layer.
///
/// The enable flags exist for ablation: the chaos suite proves the
/// mechanisms are load-bearing by re-running the same seeded scenario with
/// them off and watching it fail.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Route retried operations through [`RetryPolicy`]. When false a
    /// failed destination acquisition is simply never retried (the
    /// migration stalls) — the pre-resilience behavior minus its fixed
    /// 30-second retry loop.
    pub retry_enabled: bool,
    /// Re-replicate checkpoints to a fresh backup server when a backup
    /// dies. When false, orphaned VMs stay unprotected and are lost on
    /// their next revocation or crash.
    pub rereplication_enabled: bool,
    /// Backoff parameters for retried operations.
    pub retry: RetryPolicy,
    /// Circuit-breaker thresholds for spot-market health.
    pub health: HealthConfig,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            retry_enabled: true,
            rereplication_enabled: true,
            retry: RetryPolicy::default(),
            health: HealthConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_jitter() -> RetryPolicy {
        RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        }
    }

    #[test]
    fn delays_grow_exponentially_then_cap() {
        let p = no_jitter();
        let delays: Vec<f64> = (1..=8)
            .map(|a| p.delay_for(a, 0).as_secs_f64())
            .collect();
        assert_eq!(&delays[..5], &[10.0, 20.0, 40.0, 80.0, 160.0]);
        // Capped at max_delay from attempt 6 on (10 * 2^5 = 320 > 300).
        assert_eq!(&delays[5..], &[300.0, 300.0, 300.0]);
        // Monotone nondecreasing throughout.
        assert!(delays.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for attempt in 1..=10 {
            for salt in 0..20 {
                let d1 = p.delay_for(attempt, salt);
                let d2 = p.delay_for(attempt, salt);
                assert_eq!(d1, d2, "same (salt, attempt) must give same delay");
                let raw = no_jitter().delay_for(attempt, salt).as_secs_f64();
                let d = d1.as_secs_f64();
                assert!(
                    d >= raw * 0.9 - 1e-9 && d <= raw * 1.1 + 1e-9,
                    "jittered {d} out of [0.9, 1.1] x {raw}"
                );
            }
        }
        // Different salts decorrelate.
        let a = p.delay_for(3, 1);
        let b = p.delay_for(3, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn deadline_gates_retries() {
        let p = RetryPolicy {
            give_up_after: Some(SimDuration::from_secs(100)),
            ..no_jitter()
        };
        let t0 = SimTime::from_secs(50);
        assert!(!p.deadline_exceeded(t0, SimTime::from_secs(149)));
        assert!(p.deadline_exceeded(t0, SimTime::from_secs(150)));
        assert!(!RetryPolicy::default().deadline_exceeded(t0, SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn circuit_opens_after_threshold_and_cools_down() {
        let m = MarketId::new("m3.medium", "us-east-1a");
        let mut h = MarketHealth::new(HealthConfig {
            failure_threshold: 3,
            cooldown: SimDuration::from_secs(600),
        });
        let t0 = SimTime::from_secs(0);
        assert!(!h.record_failure(&m, t0));
        assert!(!h.record_failure(&m, t0));
        assert!(!h.is_open(&m, t0));
        assert!(h.record_failure(&m, t0), "third failure opens the circuit");
        assert!(h.is_open(&m, t0));
        assert!(h.is_open(&m, SimTime::from_secs(599)));
        // Cooldown elapsed: half-open, attempts flow again.
        assert!(!h.is_open(&m, SimTime::from_secs(600)));
        // A failure in half-open state re-opens immediately.
        assert!(h.record_failure(&m, SimTime::from_secs(600)));
        assert!(h.is_open(&m, SimTime::from_secs(700)));
        // Success closes and resets the streak.
        h.record_success(&m);
        assert!(!h.is_open(&m, SimTime::from_secs(700)));
        assert!(!h.record_failure(&m, SimTime::from_secs(700)));
    }

    #[test]
    fn open_markets_lists_only_open_circuits() {
        let a = MarketId::new("m3.medium", "z");
        let b = MarketId::new("m3.large", "z");
        let mut h = MarketHealth::new(HealthConfig {
            failure_threshold: 1,
            cooldown: SimDuration::from_secs(100),
        });
        h.record_failure(&a, SimTime::ZERO);
        assert_eq!(h.open_markets(SimTime::from_secs(50)), vec![a.clone()]);
        assert!(h.open_markets(SimTime::from_secs(100)).is_empty());
        let _ = b;
    }
}
