//! SpotCheck's policy layer: bidding, customer-to-pool mapping, and
//! native-server placement (paper §4).

pub mod bidding;
pub mod mapping;
pub mod placement;

pub use bidding::BiddingPolicy;
pub use mapping::MappingPolicy;
pub use placement::{choose, choose_index, slicing_is_cheaper, Candidate, PlacementPolicy};
