//! Bidding policies (paper §4.3).
//!
//! SpotCheck deliberately keeps bidding simple — its contribution is the
//! derivative-cloud design, not bid optimization — and supports exactly two
//! policies:
//!
//! - **bid the on-demand price**: revocations then only happen when
//!   on-demand is the cheaper option anyway, so migrating to on-demand at
//!   that moment is also the cost-optimal move;
//! - **bid k x the on-demand price** (k > 1): fewer revocations at the risk
//!   of paying above on-demand during spikes; this is the policy that makes
//!   *proactive* live migrations possible (trigger when the price crosses
//!   on-demand but is still below the bid).

/// A bidding policy for spot pools.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BiddingPolicy {
    /// Bid exactly the equivalent on-demand price.
    OnDemandPrice,
    /// Bid `k` times the on-demand price (`k > 1`), optionally migrating
    /// proactively (via live migration) when the price crosses the
    /// on-demand price.
    KTimesOnDemand {
        /// The bid multiplier, > 1.
        k: f64,
        /// Trigger proactive live migrations at the on-demand crossing.
        proactive: bool,
    },
}

impl BiddingPolicy {
    /// The bid in $/hr for a pool whose equivalent on-demand price is
    /// `od_price`.
    ///
    /// # Panics
    ///
    /// Panics if a `KTimesOnDemand` policy has `k <= 1`.
    pub fn bid(&self, od_price: f64) -> f64 {
        match *self {
            BiddingPolicy::OnDemandPrice => od_price,
            BiddingPolicy::KTimesOnDemand { k, .. } => {
                assert!(k > 1.0, "KTimesOnDemand requires k > 1, got {k}");
                k * od_price
            }
        }
    }

    /// The price at which a proactive live migration triggers, if the
    /// policy uses proactive migration.
    pub fn proactive_threshold(&self, od_price: f64) -> Option<f64> {
        match *self {
            BiddingPolicy::KTimesOnDemand {
                proactive: true, ..
            } => Some(od_price),
            _ => None,
        }
    }

    /// Display label.
    pub fn label(&self) -> String {
        match *self {
            BiddingPolicy::OnDemandPrice => "bid=od".to_string(),
            BiddingPolicy::KTimesOnDemand { k, proactive } => {
                format!("bid={k}xod{}", if proactive { "+proactive" } else { "" })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_demand_policy_bids_od() {
        assert_eq!(BiddingPolicy::OnDemandPrice.bid(0.07), 0.07);
        assert_eq!(BiddingPolicy::OnDemandPrice.proactive_threshold(0.07), None);
    }

    #[test]
    fn k_times_policy_scales_bid() {
        let p = BiddingPolicy::KTimesOnDemand {
            k: 5.0,
            proactive: true,
        };
        assert!((p.bid(0.07) - 0.35).abs() < 1e-12);
        assert_eq!(p.proactive_threshold(0.07), Some(0.07));
        let no = BiddingPolicy::KTimesOnDemand {
            k: 2.0,
            proactive: false,
        };
        assert_eq!(no.proactive_threshold(0.07), None);
    }

    #[test]
    #[should_panic(expected = "k > 1")]
    fn k_must_exceed_one() {
        BiddingPolicy::KTimesOnDemand {
            k: 0.5,
            proactive: false,
        }
        .bid(0.07);
    }

    #[test]
    fn labels() {
        assert_eq!(BiddingPolicy::OnDemandPrice.label(), "bid=od");
        assert_eq!(
            BiddingPolicy::KTimesOnDemand { k: 2.0, proactive: true }.label(),
            "bid=2xod+proactive"
        );
    }
}
