//! Customer-to-pool mapping policies (Table 2 of the paper).
//!
//! SpotCheck spreads each customer's nested VMs across spot pools to
//! reduce the risk of revocation storms — "akin to managing a financial
//! portfolio by distributing assets across uncorrelated, independent asset
//! classes" (§4.2). Table 2 defines five policies over the m3 family:
//!
//! | Policy    | Distribution |
//! |-----------|--------------|
//! | `1P-M`    | all VMs in a single `m3.medium` pool |
//! | `2P-ML`   | split evenly between `m3.medium` and `m3.large` |
//! | `4P-ED`   | split evenly across all four m3 types |
//! | `4P-COST` | weighted by (inverse) historical unit cost |
//! | `4P-ST`   | weighted by (inverse) historical migration count |

use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::trace::PriceTrace;

/// The five mapping policies of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MappingPolicy {
    /// All VMs in one `m3.medium` pool.
    OneM,
    /// VMs split evenly between `m3.medium` and `m3.large` pools.
    TwoML,
    /// VMs split evenly across the four m3 pools.
    FourEd,
    /// VMs distributed with probability inversely proportional to each
    /// pool's historical per-slot cost.
    FourCost,
    /// VMs distributed with probability inversely proportional to each
    /// pool's historical migration (revocation) count.
    FourSt,
}

impl MappingPolicy {
    /// All five policies in the paper's figure order.
    pub const ALL: [MappingPolicy; 5] = [
        MappingPolicy::OneM,
        MappingPolicy::TwoML,
        MappingPolicy::FourEd,
        MappingPolicy::FourCost,
        MappingPolicy::FourSt,
    ];

    /// The paper's label.
    pub fn label(self) -> &'static str {
        match self {
            MappingPolicy::OneM => "1P-M",
            MappingPolicy::TwoML => "2P-ML",
            MappingPolicy::FourEd => "4P-ED",
            MappingPolicy::FourCost => "4P-COST",
            MappingPolicy::FourSt => "4P-ST",
        }
    }

    /// The instance types this policy draws on.
    pub fn type_names(self) -> &'static [&'static str] {
        match self {
            MappingPolicy::OneM => &["m3.medium"],
            MappingPolicy::TwoML => &["m3.medium", "m3.large"],
            MappingPolicy::FourEd | MappingPolicy::FourCost | MappingPolicy::FourSt => {
                &["m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge"]
            }
        }
    }

    /// Number of pools the policy spreads over.
    pub fn pool_count(self) -> usize {
        self.type_names().len()
    }

    /// Computes the VM-distribution weights over the policy's pools, using
    /// historical data from `traces` over `[history_from, history_to)`.
    ///
    /// `traces` must contain one trace per type in [`Self::type_names`]
    /// order. Weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `traces` has the wrong length.
    pub fn weights(
        self,
        traces: &[&PriceTrace],
        history_from: SimTime,
        history_to: SimTime,
    ) -> Vec<f64> {
        assert_eq!(
            traces.len(),
            self.pool_count(),
            "{}: expected {} traces, got {}",
            self.label(),
            self.pool_count(),
            traces.len()
        );
        let raw: Vec<f64> = match self {
            MappingPolicy::OneM => vec![1.0],
            MappingPolicy::TwoML => vec![0.5, 0.5],
            MappingPolicy::FourEd => vec![0.25; 4],
            MappingPolicy::FourCost => traces
                .iter()
                .map(|t| {
                    // Per-slot (m3.medium-equivalent) historical mean cost;
                    // cheaper pools get proportionally more VMs.
                    let slots = t.on_demand_price / 0.070;
                    let unit = t
                        .mean_capped_price(t.on_demand_price, history_from, history_to)
                        .unwrap_or(t.on_demand_price)
                        / slots;
                    1.0 / unit.max(1e-6)
                })
                .collect(),
            MappingPolicy::FourSt => traces
                .iter()
                .map(|t| {
                    let revs =
                        t.revocations_at_bid(t.on_demand_price, history_from, history_to);
                    1.0 / (1.0 + revs as f64)
                })
                .collect(),
        };
        let sum: f64 = raw.iter().sum();
        raw.into_iter().map(|w| w / sum).collect()
    }

    /// Builds the pool market ids for a zone.
    pub fn markets(self, zone: &str) -> Vec<MarketId> {
        self.type_names()
            .iter()
            .map(|t| MarketId::new(*t, zone))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::series::StepSeries;
    use spotcheck_simcore::time::SimDuration;

    fn flat_trace(type_name: &str, od: f64, price: f64) -> PriceTrace {
        let s = StepSeries::from_points(vec![(SimTime::ZERO, price)]);
        PriceTrace::new(MarketId::new(type_name, "z"), od, s)
    }

    #[test]
    fn labels_and_pool_counts() {
        assert_eq!(MappingPolicy::OneM.label(), "1P-M");
        assert_eq!(MappingPolicy::OneM.pool_count(), 1);
        assert_eq!(MappingPolicy::TwoML.pool_count(), 2);
        assert_eq!(MappingPolicy::FourEd.pool_count(), 4);
        assert_eq!(MappingPolicy::ALL.len(), 5);
        assert_eq!(MappingPolicy::FourCost.label(), "4P-COST");
        assert_eq!(MappingPolicy::FourSt.label(), "4P-ST");
    }

    #[test]
    fn even_policies_split_evenly() {
        let m = flat_trace("m3.medium", 0.07, 0.01);
        let l = flat_trace("m3.large", 0.14, 0.02);
        let w = MappingPolicy::TwoML.weights(
            &[&m, &l],
            SimTime::ZERO,
            SimTime::from_hours(1),
        );
        assert_eq!(w, vec![0.5, 0.5]);
    }

    #[test]
    fn cost_policy_prefers_cheap_pools() {
        // medium at 0.014/slot vs large at 0.005/slot: large gets more VMs.
        let m = flat_trace("m3.medium", 0.07, 0.014);
        let l = flat_trace("m3.large", 0.14, 0.010);
        let x = flat_trace("m3.xlarge", 0.28, 0.070);
        let xx = flat_trace("m3.2xlarge", 0.56, 0.150);
        let w = MappingPolicy::FourCost.weights(
            &[&m, &l, &x, &xx],
            SimTime::ZERO,
            SimTime::from_hours(1),
        );
        assert!(w[1] > w[0], "large (cheaper/slot) should outweigh medium: {w:?}");
        assert!(w[0] > w[2], "medium should outweigh the pricier xlarge: {w:?}");
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stability_policy_prefers_calm_pools() {
        // A spiky large pool vs a flat medium pool.
        let m = flat_trace("m3.medium", 0.07, 0.01);
        let mut s = StepSeries::new();
        // 10 upward crossings of od=0.14.
        for i in 0..10u64 {
            s.push(SimTime::from_secs(i * 1_000), 0.02);
            s.push(SimTime::from_secs(i * 1_000 + 500), 0.50);
        }
        let l = PriceTrace::new(MarketId::new("m3.large", "z"), 0.14, s);
        let x = flat_trace("m3.xlarge", 0.28, 0.03);
        let xx = flat_trace("m3.2xlarge", 0.56, 0.05);
        let w = MappingPolicy::FourSt.weights(
            &[&m, &l, &x, &xx],
            SimTime::ZERO,
            SimTime::from_hours(3),
        );
        assert!(w[0] > w[1] * 5.0, "flat medium must dominate spiky large: {w:?}");
        let _ = SimDuration::ZERO;
    }

    #[test]
    #[should_panic(expected = "expected 4 traces")]
    fn weight_arity_checked() {
        let m = flat_trace("m3.medium", 0.07, 0.01);
        MappingPolicy::FourEd.weights(&[&m], SimTime::ZERO, SimTime::from_hours(1));
    }

    #[test]
    fn markets_carry_zone() {
        let ms = MappingPolicy::TwoML.markets("us-east-1a");
        assert_eq!(ms[0], MarketId::new("m3.medium", "us-east-1a"));
        assert_eq!(ms[1], MarketId::new("m3.large", "us-east-1a"));
    }
}
