//! Native-server selection for new requests (paper §4.2).
//!
//! When a customer requests a medium nested VM, SpotCheck can satisfy it
//! with a medium spot server *or* by buying a larger server and slicing it
//! — larger types are often cheaper per slot ("the server size-to-price
//! ratio is not uniform"), an arbitrage the **greedy cheapest-first**
//! policy exploits. The **stability-first** alternative picks the pool
//! with the calmest price history instead, trading cost for fewer
//! revocations.

use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::trace::PriceTrace;

/// How to choose which native server type satisfies a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Pick the candidate with the lowest *current* per-slot spot price.
    GreedyCheapest,
    /// Pick the candidate with the fewest revocations over the trailing
    /// history window.
    StabilityFirst {
        /// Trailing window length, seconds.
        history_secs: u64,
    },
}

/// A candidate native server type for a placement decision.
#[derive(Debug, Clone)]
pub struct Candidate<'a> {
    /// Index meaningful to the caller (e.g. pool index).
    pub index: usize,
    /// The market's price trace.
    pub trace: &'a PriceTrace,
    /// Slots (medium-equivalents) the server type provides.
    pub slots: u32,
}

/// Chooses a candidate per `policy` at time `now`.
///
/// Returns `None` when `candidates` is empty or no candidate has a price
/// yet. Ties break toward the smaller server (less slicing risk — a
/// revocation of a sliced server forces *all* resident nested VMs to
/// migrate, §4.2).
pub fn choose<'a>(
    policy: PlacementPolicy,
    candidates: &[Candidate<'a>],
    now: SimTime,
) -> Option<&'a PriceTrace> {
    let idx = choose_index(policy, candidates, now)?;
    candidates.iter().find(|c| c.index == idx).map(|c| c.trace)
}

/// Like [`choose`], returning the winning candidate's `index`.
pub fn choose_index(
    policy: PlacementPolicy,
    candidates: &[Candidate<'_>],
    now: SimTime,
) -> Option<usize> {
    match policy {
        PlacementPolicy::GreedyCheapest => candidates
            .iter()
            .filter_map(|c| {
                c.trace
                    .price_at(now)
                    .map(|p| (c, p / c.slots as f64))
            })
            .min_by(|(a, pa), (b, pb)| {
                pa.partial_cmp(pb)
                    .expect("prices are finite")
                    .then(a.slots.cmp(&b.slots))
            })
            .map(|(c, _)| c.index),
        PlacementPolicy::StabilityFirst { history_secs } => {
            let from = SimTime::from_micros(
                now.as_micros()
                    .saturating_sub(history_secs * 1_000_000),
            );
            candidates
                .iter()
                .map(|c| {
                    let revs = c
                        .trace
                        .revocations_at_bid(c.trace.on_demand_price, from, now);
                    (c, revs)
                })
                .min_by(|(a, ra), (b, rb)| ra.cmp(rb).then(a.slots.cmp(&b.slots)))
                .map(|(c, _)| c.index)
        }
    }
}

/// The arbitrage predicate of §4.2: is buying `large` and slicing it
/// cheaper per slot than buying `small` directly, right now?
pub fn slicing_is_cheaper(
    small: &PriceTrace,
    small_slots: u32,
    large: &PriceTrace,
    large_slots: u32,
    now: SimTime,
) -> Option<bool> {
    let ps = small.price_at(now)? / small_slots as f64;
    let pl = large.price_at(now)? / large_slots as f64;
    Some(pl < ps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::series::StepSeries;
    use spotcheck_spotmarket::market::MarketId;

    fn trace(type_name: &str, od: f64, points: Vec<(u64, f64)>) -> PriceTrace {
        let s = StepSeries::from_points(
            points
                .into_iter()
                .map(|(t, p)| (SimTime::from_secs(t), p))
                .collect(),
        );
        PriceTrace::new(MarketId::new(type_name, "z"), od, s)
    }

    #[test]
    fn greedy_exploits_slicing_arbitrage() {
        // medium at 0.020/slot; large at 0.030 total = 0.015/slot.
        let m = trace("m3.medium", 0.07, vec![(0, 0.020)]);
        let l = trace("m3.large", 0.14, vec![(0, 0.030)]);
        let cands = [
            Candidate { index: 0, trace: &m, slots: 1 },
            Candidate { index: 1, trace: &l, slots: 2 },
        ];
        let won = choose_index(PlacementPolicy::GreedyCheapest, &cands, SimTime::from_secs(10));
        assert_eq!(won, Some(1), "large is cheaper per slot");
        assert_eq!(
            slicing_is_cheaper(&m, 1, &l, 2, SimTime::from_secs(10)),
            Some(true)
        );
    }

    #[test]
    fn greedy_prefers_small_when_unit_prices_tie() {
        let m = trace("m3.medium", 0.07, vec![(0, 0.020)]);
        let l = trace("m3.large", 0.14, vec![(0, 0.040)]);
        let cands = [
            Candidate { index: 0, trace: &m, slots: 1 },
            Candidate { index: 1, trace: &l, slots: 2 },
        ];
        // Equal per-slot price: the smaller server carries less slicing
        // risk.
        assert_eq!(
            choose_index(PlacementPolicy::GreedyCheapest, &cands, SimTime::from_secs(10)),
            Some(0)
        );
    }

    #[test]
    fn greedy_follows_market_moves() {
        let m = trace("m3.medium", 0.07, vec![(0, 0.010), (100, 0.050)]);
        let l = trace("m3.large", 0.14, vec![(0, 0.060)]);
        let cands = [
            Candidate { index: 0, trace: &m, slots: 1 },
            Candidate { index: 1, trace: &l, slots: 2 },
        ];
        assert_eq!(
            choose_index(PlacementPolicy::GreedyCheapest, &cands, SimTime::from_secs(50)),
            Some(0)
        );
        assert_eq!(
            choose_index(PlacementPolicy::GreedyCheapest, &cands, SimTime::from_secs(150)),
            Some(1)
        );
    }

    #[test]
    fn stability_first_avoids_spiky_markets() {
        // medium spikes over od repeatedly; large is calm but pricier.
        let m = trace(
            "m3.medium",
            0.07,
            vec![(0, 0.02), (10, 0.50), (20, 0.02), (30, 0.50), (40, 0.02)],
        );
        let l = trace("m3.large", 0.14, vec![(0, 0.10)]);
        let cands = [
            Candidate { index: 0, trace: &m, slots: 1 },
            Candidate { index: 1, trace: &l, slots: 2 },
        ];
        let won = choose_index(
            PlacementPolicy::StabilityFirst { history_secs: 3_600 },
            &cands,
            SimTime::from_secs(100),
        );
        assert_eq!(won, Some(1));
    }

    #[test]
    fn empty_candidates_yield_none() {
        assert_eq!(
            choose_index(PlacementPolicy::GreedyCheapest, &[], SimTime::ZERO),
            None
        );
    }

    #[test]
    fn choose_returns_the_trace() {
        let m = trace("m3.medium", 0.07, vec![(0, 0.020)]);
        let cands = [Candidate { index: 0, trace: &m, slots: 1 }];
        let t = choose(PlacementPolicy::GreedyCheapest, &cands, SimTime::from_secs(1)).unwrap();
        assert_eq!(t.market, MarketId::new("m3.medium", "z"));
    }
}
