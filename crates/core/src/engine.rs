//! The resumable simulation engine.
//!
//! [`Engine`] owns the controller, the simulated cloud platform, and the
//! event queue, and exposes a *stepped* interface instead of a single
//! run-to-horizon call: [`Engine::step_until`] advances to an arbitrary
//! instant, [`Engine::drain_ready`] settles everything due at the current
//! instant, and [`Engine::apply`] injects an external [`Command`]
//! (provision/release/policy change) between steps. Batch runs
//! ([`crate::driver::SpotCheckSim`]), bench experiments, and the
//! `spotcheckd` daemon are all thin loops over this one core.
//!
//! # Command log and replay
//!
//! Every externally injected command is appended to an in-order command
//! log with its exact simulation time. Because the simulation itself is
//! deterministic (seeded RNG streams, FIFO tie-breaking queues), the pair
//! *(scenario, command log)* fully determines every subsequent state: a
//! fresh engine built from the same [`Scenario`] that replays the same
//! commands at the same instants reproduces the original run bit for bit
//! — the same journal, the same accounting clocks, the same platform
//! state. [`crate::snapshot`] builds crash-consistent restarts on exactly
//! this property.
//!
//! The replay discipline that makes interleaving reproducible: a command
//! is only ever applied after `step_until(t)` has settled every event at
//! or before its recorded time `t`, and commands recorded at the same
//! instant are applied in log order. Live mode and replay both follow
//! this rule, so event/command interleavings cannot diverge.

use spotcheck_cloudsim::cloud::{CloudConfig, CloudSim};
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::digest::Digest64;
use spotcheck_simcore::engine::{Scheduler, Simulation, StopReason, World};
use spotcheck_simcore::queue::{default_backend, EventQueue, QueueBackend};
use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use crate::accounting::AvailabilityReport;
use crate::config::SpotCheckConfig;
use crate::controller::{Controller, ControllerError, CostReport};
use crate::events::Event;
use crate::journal::{Journal, Record, Subsystem, ViolationReport};
use crate::types::CustomerId;

/// The [`World`] adapter around the controller.
pub struct Driver {
    controller: Controller,
}

impl World for Driver {
    type Event = Event;

    fn handle(&mut self, event: Event, sched: &mut Scheduler<'_, Event>) {
        let out = self.controller.handle_event(event, sched.now());
        for (t, e) in out {
            sched.at(t, e);
        }
    }
}

impl Driver {
    /// Shared controller access.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Exclusive controller access.
    pub fn controller_mut(&mut self) -> &mut Controller {
        &mut self.controller
    }
}

/// Everything needed to (re)build an engine from scratch: the market
/// traces, the SpotCheck configuration, and the platform configuration.
///
/// A [`Scenario`] is the unit of identity for snapshots: restoring from a
/// snapshot requires the *same* scenario (checked via
/// [`Scenario::digest`]), because replay reconstructs state by re-running
/// it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Market price traces.
    pub traces: Vec<PriceTrace>,
    /// Controller configuration.
    pub config: SpotCheckConfig,
    /// Native platform configuration.
    pub cloud: CloudConfig,
}

impl Scenario {
    /// Builds a scenario with the platform configuration derived from the
    /// controller seed (the same wiring as [`SpotCheckSim::new`]).
    ///
    /// [`SpotCheckSim::new`]: crate::driver::SpotCheckSim::new
    pub fn new(traces: Vec<PriceTrace>, config: SpotCheckConfig) -> Self {
        let cloud = CloudConfig {
            seed: config.seed,
            ..CloudConfig::default()
        };
        Scenario {
            traces,
            config,
            cloud,
        }
    }

    /// A 64-bit digest identifying this scenario: market traces (ids,
    /// price series), controller configuration, and platform
    /// configuration. Snapshots embed it so a restore against different
    /// inputs is rejected instead of replayed into nonsense.
    pub fn digest(&self) -> u64 {
        scenario_digest(&self.traces, &self.config, &self.cloud)
    }

    /// Builds a fresh engine at time zero from this scenario (cloning the
    /// inputs; the scenario remains usable for later restores).
    pub fn build(&self) -> Engine {
        self.build_with_backend(default_backend())
    }

    /// Like [`Scenario::build`] with an explicit queue backend.
    pub fn build_with_backend(&self, backend: QueueBackend) -> Engine {
        Engine::from_parts_with_backend(
            self.traces.clone(),
            self.config.clone(),
            self.cloud.clone(),
            backend,
        )
    }
}

fn scenario_digest(traces: &[PriceTrace], config: &SpotCheckConfig, cloud: &CloudConfig) -> u64 {
    let mut d = Digest64::new();
    d.write_usize(traces.len());
    for t in traces {
        d.write_str(&t.market.to_string());
        d.write_f64(t.on_demand_price);
        // The step series' own Debug output enumerates every (time, price)
        // step, so any edit to a trace changes the digest.
        d.write_str(&format!("{:?}", t.prices));
    }
    // Configuration structs are flat data; their derived Debug output is a
    // stable, total rendering of every knob (including nested policy and
    // fault-plan state), which keeps this digest honest without a
    // hand-maintained field walk that could silently go stale.
    d.write_str(&format!("{config:?}"));
    d.write_str(&format!("{cloud:?}"));
    d.finish()
}

/// An externally injectable command: the engine's write API for callers
/// outside the simulation (the daemon's socket protocol, tests, the
/// synchronous [`SpotCheckSim`](crate::driver::SpotCheckSim) facade).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Command {
    /// Register a new customer.
    CreateCustomer,
    /// Request a nested VM for `customer`.
    Provision {
        /// The owning customer.
        customer: CustomerId,
        /// The workload the VM runs.
        workload: WorkloadKind,
        /// Skip backup protection; live-migrate on revocation (§4.2).
        stateless: bool,
    },
    /// Release (terminate) a nested VM.
    Release {
        /// The VM to release.
        vm: NestedVmId,
    },
    /// Policy change: toggle return-to-spot allocation dynamics.
    SetReturnToSpot {
        /// The new setting.
        enabled: bool,
    },
}

impl Command {
    /// Stable lowercase name of the command (wire format and journal).
    pub fn kind(&self) -> &'static str {
        match self {
            Command::CreateCustomer => "create_customer",
            Command::Provision { .. } => "provision",
            Command::Release { .. } => "release",
            Command::SetReturnToSpot { .. } => "set_return_to_spot",
        }
    }

    /// Encodes the arguments as three integers (wire format and journal).
    pub fn encode_args(&self) -> (u64, u64, u64) {
        match *self {
            Command::CreateCustomer => (0, 0, 0),
            Command::Provision {
                customer,
                workload,
                stateless,
            } => (
                customer.0,
                workload_code(workload),
                u64::from(stateless),
            ),
            Command::Release { vm } => (vm.0, 0, 0),
            Command::SetReturnToSpot { enabled } => (u64::from(enabled), 0, 0),
        }
    }

    /// Decodes a command from its kind name and encoded arguments.
    pub fn decode(kind: &str, a: u64, b: u64, c: u64) -> Option<Command> {
        match kind {
            "create_customer" => Some(Command::CreateCustomer),
            "provision" => Some(Command::Provision {
                customer: CustomerId(a),
                workload: workload_from_code(b)?,
                stateless: c != 0,
            }),
            "release" => Some(Command::Release { vm: NestedVmId(a) }),
            "set_return_to_spot" => Some(Command::SetReturnToSpot { enabled: a != 0 }),
            _ => None,
        }
    }
}

fn workload_code(w: WorkloadKind) -> u64 {
    match w {
        WorkloadKind::TpcW => 0,
        WorkloadKind::SpecJbb => 1,
    }
}

fn workload_from_code(code: u64) -> Option<WorkloadKind> {
    match code {
        0 => Some(WorkloadKind::TpcW),
        1 => Some(WorkloadKind::SpecJbb),
        _ => None,
    }
}

/// What a successfully applied [`Command`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandOutcome {
    /// A new customer id.
    Customer(CustomerId),
    /// A new VM id (provisioning proceeds as the simulation runs).
    Vm(NestedVmId),
    /// The command completed with nothing to return.
    Done,
}

/// One logged command: its dense sequence number, the simulation instant
/// it was applied at, whether it was journaled (externally injected) or
/// quiet (scripted through the synchronous facade), and the command.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedCommand {
    /// Dense 0-based sequence number (log position).
    pub seq: u64,
    /// The simulation instant the command was applied at.
    pub at: SimTime,
    /// True if the command was journaled (the [`Engine::apply`] path).
    pub journaled: bool,
    /// The command.
    pub cmd: Command,
}

/// The resumable SpotCheck simulation engine.
///
/// See the [module docs](self) for the stepping and replay discipline.
pub struct Engine {
    sim: Simulation<Driver>,
    backend: QueueBackend,
    scenario_digest: u64,
    commands: Vec<TimedCommand>,
}

impl Engine {
    /// Builds an engine at time zero, consuming the scenario inputs (the
    /// path batch runs take — nothing is cloned or retained for replay
    /// beyond the scenario digest).
    ///
    /// The queue backend is latched from the process-wide default *here*,
    /// at construction: later [`set_default_backend`] rebinds never affect
    /// a live engine.
    ///
    /// [`set_default_backend`]: spotcheck_simcore::queue::set_default_backend
    pub fn from_parts(
        traces: Vec<PriceTrace>,
        config: SpotCheckConfig,
        cloud_cfg: CloudConfig,
    ) -> Self {
        Engine::from_parts_with_backend(traces, config, cloud_cfg, default_backend())
    }

    /// Like [`Engine::from_parts`] with an explicit queue backend.
    pub fn from_parts_with_backend(
        traces: Vec<PriceTrace>,
        config: SpotCheckConfig,
        cloud_cfg: CloudConfig,
        backend: QueueBackend,
    ) -> Self {
        let scenario_digest = scenario_digest(&traces, &config, &cloud_cfg);
        let cloud = CloudSim::new(traces, cloud_cfg);
        let mut controller = Controller::new(cloud, config);
        let boot = controller.bootstrap(SimTime::ZERO);
        let mut sim = Simulation::new_with_queue(
            Driver { controller },
            EventQueue::with_backend(backend),
        );
        for (t, e) in boot {
            sim.schedule_at(t, e);
        }
        Engine {
            sim,
            backend,
            scenario_digest,
            commands: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Events processed so far.
    pub fn steps(&self) -> u64 {
        self.sim.steps()
    }

    /// Events currently pending in the queue.
    pub fn queue_depth(&self) -> usize {
        self.sim.queue_depth()
    }

    /// The queue backend this engine was pinned to at construction.
    pub fn backend(&self) -> QueueBackend {
        self.backend
    }

    /// The digest of the scenario this engine was built from.
    pub fn scenario_digest(&self) -> u64 {
        self.scenario_digest
    }

    /// Shared controller access.
    pub fn controller(&self) -> &Controller {
        self.sim.world().controller()
    }

    /// The structured journal of this run (always on).
    pub fn journal(&self) -> &Journal {
        self.controller().journal()
    }

    /// Exclusive journal access (spill-sink configuration and flushing).
    pub fn journal_mut(&mut self) -> &mut Journal {
        self.sim.world_mut().controller_mut().journal_mut()
    }

    /// The command log: every injected command in application order.
    pub fn command_log(&self) -> &[TimedCommand] {
        &self.commands
    }

    /// Advances the simulation to `horizon`, processing every event due at
    /// or before it (exactly-at-horizon events included). On
    /// [`StopReason::HorizonReached`] the clock is advanced to `horizon`.
    pub fn step_until(&mut self, horizon: SimTime) -> StopReason {
        self.sim.run_until(horizon)
    }

    /// Settles every event due at exactly the current instant (including
    /// events those events schedule for the same instant), without moving
    /// the clock. Returns the number of events processed.
    ///
    /// Useful after [`Engine::apply`]: a provision command schedules its
    /// first event at *now*, and draining makes its effects observable
    /// before the caller decides anything else.
    pub fn drain_ready(&mut self) -> u64 {
        let now = self.sim.now();
        let mut n = 0;
        while self.sim.next_event_time() == Some(now) {
            if !self.sim.step() {
                break;
            }
            n += 1;
        }
        n
    }

    /// Applies an externally injected command at the current instant,
    /// journaling it (so the on-disk journal doubles as the replay tail)
    /// and appending it to the command log.
    ///
    /// # Errors
    ///
    /// Propagates controller rejections (unknown customer/VM). Rejected
    /// commands are still logged and journaled: replay re-runs them and
    /// deterministically re-rejects, keeping the log a faithful record of
    /// what was attempted.
    pub fn apply(&mut self, cmd: Command) -> Result<CommandOutcome, ControllerError> {
        self.apply_inner(cmd, true)
    }

    /// Applies a command *without* journaling it (the synchronous-facade
    /// path: scripted scenarios drive the engine through here so their
    /// journals stay identical to the pre-engine batch driver's).
    ///
    /// Quiet commands still land in the command log, so snapshots of a
    /// scripted run replay correctly; they are simply absent from the
    /// journal's record stream.
    ///
    /// # Errors
    ///
    /// Propagates controller rejections (unknown customer/VM).
    pub fn apply_quiet(&mut self, cmd: Command) -> Result<CommandOutcome, ControllerError> {
        self.apply_inner(cmd, false)
    }

    fn apply_inner(
        &mut self,
        cmd: Command,
        journaled: bool,
    ) -> Result<CommandOutcome, ControllerError> {
        let now = self.sim.now();
        let seq = self.commands.len() as u64;
        self.commands.push(TimedCommand {
            seq,
            at: now,
            journaled,
            cmd,
        });
        if journaled {
            let (a, b, c) = cmd.encode_args();
            self.sim.world_mut().controller_mut().journal_mut().record(
                now,
                Subsystem::Controller,
                Record::Command {
                    seq,
                    cmd: cmd.kind(),
                    a,
                    b,
                    c,
                },
            );
        }
        self.exec(cmd, now)
    }

    fn exec(&mut self, cmd: Command, now: SimTime) -> Result<CommandOutcome, ControllerError> {
        let controller = self.sim.world_mut().controller_mut();
        match cmd {
            Command::CreateCustomer => Ok(CommandOutcome::Customer(controller.create_customer())),
            Command::Provision {
                customer,
                workload,
                stateless,
            } => {
                let (vm, out) = controller.request_server_opts(customer, workload, stateless, now)?;
                for (t, e) in out {
                    self.sim.schedule_at(t, e);
                }
                Ok(CommandOutcome::Vm(vm))
            }
            Command::Release { vm } => {
                let out = controller.release_server(vm, now)?;
                for (t, e) in out {
                    self.sim.schedule_at(t, e);
                }
                Ok(CommandOutcome::Done)
            }
            Command::SetReturnToSpot { enabled } => {
                controller.set_return_to_spot(enabled);
                Ok(CommandOutcome::Done)
            }
        }
    }

    /// Replays a logged command: advances to its recorded instant, then
    /// applies it through the same (journaled or quiet) path it originally
    /// took.
    ///
    /// # Errors
    ///
    /// Returns an error message if the engine's log position or clock
    /// cannot reach the command's recorded coordinates — which means the
    /// command stream does not extend this engine's history.
    pub fn replay(&mut self, cmd: &TimedCommand) -> Result<(), String> {
        let expect_seq = self.commands.len() as u64;
        if cmd.seq != expect_seq {
            return Err(format!(
                "replay out of order: command seq {} but log is at {}",
                cmd.seq, expect_seq
            ));
        }
        if cmd.at < self.sim.now() {
            return Err(format!(
                "replay into the past: command at {} but engine is at {}",
                cmd.at,
                self.sim.now()
            ));
        }
        self.step_until(cmd.at);
        // The original outcome (including a rejection) is determined by
        // the deterministic state, so it is intentionally not stored or
        // compared — the state signature at the end of replay is the
        // actual proof of convergence.
        let _ = self.apply_inner(cmd.cmd, cmd.journaled);
        Ok(())
    }

    /// A 64-bit signature of the full engine state at the current instant:
    /// clock, step count, queue depth, command log, and the controller's
    /// [`state_signature`](Controller::state_signature) (which folds in
    /// the platform digest).
    pub fn state_signature(&self) -> u64 {
        let mut d = Digest64::new();
        d.write_u64(self.sim.now().as_micros());
        d.write_u64(self.sim.steps());
        d.write_usize(self.sim.queue_depth());
        d.write_usize(self.commands.len());
        for c in &self.commands {
            d.write_u64(c.seq);
            d.write_u64(c.at.as_micros());
            d.write_bool(c.journaled);
            d.write_str(c.cmd.kind());
            let (a, b, v) = c.cmd.encode_args();
            d.write_u64(a);
            d.write_u64(b);
            d.write_u64(v);
        }
        d.write_u64(self.controller().state_signature(self.sim.now()));
        d.finish()
    }

    /// Availability/degradation report at the current time.
    pub fn availability_report(&self) -> AvailabilityReport {
        self.controller().availability_report(self.sim.now())
    }

    /// Cost report at the current time.
    pub fn cost_report(&self) -> CostReport {
        self.controller().cost_report(self.sim.now())
    }

    /// The 30 s-guarantee violation taxonomy of this run.
    pub fn violation_report(&self) -> ViolationReport {
        self.journal().violation_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::standard_traces;
    use spotcheck_simcore::time::SimDuration;

    fn quick_scenario() -> Scenario {
        Scenario::new(
            standard_traces("us-east-1a", SimDuration::from_days(2), 42),
            SpotCheckConfig::default(),
        )
    }

    #[test]
    fn scenario_digest_is_input_sensitive() {
        let a = quick_scenario();
        let mut b = quick_scenario();
        assert_eq!(a.digest(), b.digest());
        b.config.seed = 1;
        assert_ne!(a.digest(), b.digest());
        let mut c = quick_scenario();
        c.traces.pop();
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn command_wire_roundtrip() {
        let cmds = [
            Command::CreateCustomer,
            Command::Provision {
                customer: CustomerId(3),
                workload: WorkloadKind::SpecJbb,
                stateless: true,
            },
            Command::Release { vm: NestedVmId(9) },
            Command::SetReturnToSpot { enabled: false },
        ];
        for cmd in cmds {
            let (a, b, c) = cmd.encode_args();
            assert_eq!(Command::decode(cmd.kind(), a, b, c), Some(cmd));
        }
        assert_eq!(Command::decode("nope", 0, 0, 0), None);
        assert_eq!(Command::decode("provision", 0, 99, 0), None);
    }

    #[test]
    fn stepped_run_matches_one_shot_run() {
        let scenario = quick_scenario();
        let horizon = SimTime::from_days(2);

        let mut one_shot = scenario.build();
        let c = match one_shot.apply_quiet(Command::CreateCustomer) {
            Ok(CommandOutcome::Customer(c)) => c,
            other => panic!("unexpected outcome {other:?}"),
        };
        one_shot
            .apply_quiet(Command::Provision {
                customer: c,
                workload: WorkloadKind::TpcW,
                stateless: false,
            })
            .unwrap();
        one_shot.step_until(horizon);

        let mut stepped = scenario.build();
        stepped.apply_quiet(Command::CreateCustomer).unwrap();
        stepped
            .apply_quiet(Command::Provision {
                customer: c,
                workload: WorkloadKind::TpcW,
                stateless: false,
            })
            .unwrap();
        // Advance in ragged hops; the trajectory must not depend on the
        // stepping pattern.
        let mut t = SimTime::ZERO;
        let hops = [37_u64, 1, 3600, 86_400, 7, 900];
        let mut i = 0;
        while t < horizon {
            t = (t + SimDuration::from_secs(hops[i % hops.len()])).min(horizon);
            stepped.step_until(t);
            i += 1;
        }
        assert_eq!(one_shot.now(), stepped.now());
        assert_eq!(one_shot.steps(), stepped.steps());
        assert_eq!(one_shot.state_signature(), stepped.state_signature());
        assert_eq!(one_shot.journal().to_json(), stepped.journal().to_json());
    }

    #[test]
    fn drain_ready_settles_only_the_current_instant() {
        let scenario = quick_scenario();
        let mut engine = scenario.build();
        engine.apply_quiet(Command::CreateCustomer).unwrap();
        let c = CustomerId(0);
        engine
            .apply_quiet(Command::Provision {
                customer: c,
                workload: WorkloadKind::TpcW,
                stateless: false,
            })
            .unwrap();
        // The provision event is due at t=0 (now); draining processes it
        // without advancing the clock.
        let drained = engine.drain_ready();
        assert!(drained >= 1, "provision event should be due at now");
        assert_eq!(engine.now(), SimTime::ZERO);
    }

    #[test]
    fn rejected_commands_are_logged_and_deterministic() {
        let scenario = quick_scenario();
        let mut engine = scenario.build();
        let err = engine
            .apply(Command::Release {
                vm: NestedVmId(404),
            })
            .unwrap_err();
        assert!(matches!(err, ControllerError::UnknownVm(_)));
        assert_eq!(engine.command_log().len(), 1);
        assert_eq!(engine.journal().of_kind("command").count(), 1);
    }

    #[test]
    fn backend_is_latched_at_construction() {
        let scenario = quick_scenario();
        let engine = scenario.build_with_backend(QueueBackend::Heap);
        assert_eq!(engine.backend(), QueueBackend::Heap);
        // Rebinds after construction must not affect the engine.
        spotcheck_simcore::queue::set_default_backend(QueueBackend::Wheel);
        assert_eq!(engine.backend(), QueueBackend::Heap);
    }
}
