//! The SpotCheck controller (paper §5).
//!
//! The controller interfaces between customers and the native IaaS
//! platform: it provisions nested VMs on the cheapest suitable spot
//! servers (slicing larger servers when per-slot prices favor it), assigns
//! backup servers, reacts to revocation warnings by orchestrating
//! bounded-time migrations to on-demand servers (using hot spares when
//! configured), moves each VM's private IP and EBS volume to the
//! destination, and migrates VMs back to their home spot pool when spikes
//! abate.
//!
//! The controller is a passive state machine driven by [`Event`]s: every
//! handler takes the current time and returns follow-up events for the
//! driver to schedule. This mirrors the paper's centralized controller
//! design ("maintains a global and consistent view of SpotCheck's state").

use std::collections::BTreeMap;

use spotcheck_backup::pool::{BackupPool, BackupServerId};
use spotcheck_cloudsim::cloud::{CloudSim, Notification};
use spotcheck_cloudsim::error::CloudError;
use spotcheck_cloudsim::faults::FaultEvent;
use spotcheck_cloudsim::ids::{InstanceId, OpId, PrivateIp, VolumeId};
use spotcheck_cloudsim::instance::InstanceState;
use spotcheck_migrate::bounded::simulate_final_commit;
use spotcheck_migrate::mechanisms::MechanismKind;
use spotcheck_migrate::precopy::{simulate_precopy, PreCopyConfig};
use spotcheck_migrate::restore::simulate_concurrent_restores;
use spotcheck_nestedvm::host::HostVm;
use spotcheck_nestedvm::vm::{NestedVm, NestedVmId, NestedVmSpec, NestedVmState};
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;
use spotcheck_workloads::WorkloadKind;

use crate::accounting::{Accounting, AvailabilityReport};
use crate::config::SpotCheckConfig;
use crate::events::Event;
use crate::policy::placement::{choose_index, Candidate};
use crate::retry::MarketHealth;
use crate::types::{Customer, CustomerId, MigrationId, VmRecord, VmStatus};

/// Scheduled follow-up events returned by controller handlers.
pub type Outbox = Vec<(SimTime, Event)>;

/// Controller errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ControllerError {
    /// Unknown customer.
    UnknownCustomer(CustomerId),
    /// Unknown nested VM.
    UnknownVm(NestedVmId),
    /// Underlying cloud error.
    Cloud(CloudError),
    /// The request cannot be satisfied right now.
    Unsatisfiable(String),
}

impl std::fmt::Display for ControllerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControllerError::UnknownCustomer(c) => write!(f, "unknown customer {c}"),
            ControllerError::UnknownVm(v) => write!(f, "unknown nested VM {v}"),
            ControllerError::Cloud(e) => write!(f, "cloud error: {e}"),
            ControllerError::Unsatisfiable(s) => write!(f, "unsatisfiable: {s}"),
        }
    }
}

impl std::error::Error for ControllerError {}

impl From<CloudError> for ControllerError {
    fn from(e: CloudError) -> Self {
        ControllerError::Cloud(e)
    }
}

/// Semantic context of an in-flight cloud operation.
#[derive(Debug, Clone)]
enum OpCtx {
    /// A native spot/on-demand host booting for provisioning.
    HostBoot,
    /// A hot spare booting.
    SpareBoot,
    /// A migration destination booting.
    DestBoot(MigrationId),
    /// An ENI/volume attach during VM provisioning.
    ProvisionAttach(NestedVmId),
    /// A detach on a migration's source.
    MigDetach(MigrationId),
    /// An attach on a migration's destination.
    MigAttach(MigrationId),
    /// A spot host booting for a return-to-spot live migration.
    ReturnBoot(NestedVmId),
    /// Detaches from the on-demand host during a return.
    ReturnDetach(NestedVmId),
    /// Attaches at the spot host during a return.
    ReturnAttach(NestedVmId),
    /// A fire-and-forget terminate.
    Terminate,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum MigPhase {
    /// Waiting for the final commit and/or the destination.
    Prep,
    /// Detaching ENI/volume from the source.
    Detaching,
    /// Restoring memory and attaching ENI/volume at the destination.
    Attaching,
}

/// An in-flight revocation migration.
#[derive(Debug)]
struct Migration {
    vm: NestedVmId,
    source: InstanceId,
    dest: Option<InstanceId>,
    commit_started: bool,
    commit_done: bool,
    /// Wall-clock length of the final-commit (or live-transfer) phase.
    commit_duration: SimDuration,
    /// The application-visible pause at the end of the commit.
    commit_pause: SimDuration,
    dest_ready: bool,
    phase: MigPhase,
    pending: u8,
    paused_at: Option<SimTime>,
    pays_downtime: bool,
    /// True for proactive live migrations (no warning involved).
    proactive: bool,
    /// True for live transfers (proactive, stateless, or XenLive): the
    /// memory streams source-to-destination, so the source's VM object may
    /// be carried across a forced termination. Non-live migrations restore
    /// from the backup server only.
    live: bool,
    /// When the migration began (for retry give-up deadlines).
    started_at: SimTime,
    /// Destination-acquisition attempts so far (for backoff).
    dest_attempts: u32,
    /// The final-commit stream died (source crashed mid-push): the backup
    /// must not be credited with a fresh checkpoint ack.
    commit_aborted: bool,
    /// The VM object once evicted from the source.
    vm_obj: Option<NestedVm>,
    /// Degraded window to apply after resume (lazy restores).
    degraded: SimDuration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ReturnPhase {
    Transferring,
    Detaching,
    Attaching,
}

/// An in-flight return-to-spot live migration.
#[derive(Debug)]
struct ReturnState {
    dest: InstanceId,
    phase: ReturnPhase,
    pending: u8,
}

/// Host bookkeeping: the nested hypervisor plus which market (if spot) the
/// native instance was bought in.
struct HostInfo {
    hv: HostVm,
    market: Option<MarketId>,
}

/// Cost summary of a run.
#[derive(Debug, Clone, Copy)]
pub struct CostReport {
    /// Dollars spent on native instances (hosts, spares, destinations).
    pub native_cost: f64,
    /// Dollars spent on backup servers.
    pub backup_cost: f64,
    /// Total dollars.
    pub total: f64,
    /// Sum of tracked VM-hours.
    pub vm_hours: f64,
    /// Average $/VM-hr.
    pub cost_per_vm_hr: f64,
}

/// The SpotCheck controller.
pub struct Controller {
    cfg: SpotCheckConfig,
    cloud: CloudSim,
    vm_spec: NestedVmSpec,
    hosts: BTreeMap<InstanceId, HostInfo>,
    customers: BTreeMap<CustomerId, Customer>,
    vms: BTreeMap<NestedVmId, VmRecord>,
    backups: BackupPool,
    backup_birth: BTreeMap<BackupServerId, SimTime>,
    backup_death: BTreeMap<BackupServerId, SimTime>,
    spares: Vec<InstanceId>,
    op_ctx: BTreeMap<OpId, OpCtx>,
    host_waiters: BTreeMap<InstanceId, Vec<NestedVmId>>,
    provision_pending: BTreeMap<NestedVmId, u8>,
    migrations: BTreeMap<MigrationId, Migration>,
    /// Restore-gate duration (skeleton or full-image read) per migration.
    restore_gates: BTreeMap<MigrationId, SimDuration>,
    returns: BTreeMap<NestedVmId, ReturnState>,
    degraded_epoch: BTreeMap<NestedVmId, u32>,
    /// VMs whose backup server holds an incomplete image (re-replication
    /// in flight). Value is the epoch guarding the pending
    /// [`Event::ReplicationDone`].
    pending_rerepl: BTreeMap<NestedVmId, u32>,
    repl_epoch: u32,
    /// Failed host-acquisition attempts per still-provisioning VM, for
    /// backoff on the retry.
    provision_attempts: BTreeMap<NestedVmId, u32>,
    market_health: MarketHealth,
    accounting: Accounting,
    next_customer: u64,
    next_vm: u64,
    next_migration: u64,
}

impl Controller {
    /// Creates a controller over a cloud platform.
    pub fn new(cloud: CloudSim, cfg: SpotCheckConfig) -> Self {
        let backups = BackupPool::new(cfg.backup.clone());
        let market_health = MarketHealth::new(cfg.resilience.health.clone());
        Controller {
            cfg,
            cloud,
            vm_spec: NestedVmSpec::medium(),
            hosts: BTreeMap::new(),
            customers: BTreeMap::new(),
            vms: BTreeMap::new(),
            backups,
            backup_birth: BTreeMap::new(),
            backup_death: BTreeMap::new(),
            spares: Vec::new(),
            op_ctx: BTreeMap::new(),
            host_waiters: BTreeMap::new(),
            provision_pending: BTreeMap::new(),
            migrations: BTreeMap::new(),
            restore_gates: BTreeMap::new(),
            returns: BTreeMap::new(),
            degraded_epoch: BTreeMap::new(),
            pending_rerepl: BTreeMap::new(),
            repl_epoch: 0,
            provision_attempts: BTreeMap::new(),
            market_health,
            accounting: Accounting::new(),
            next_customer: 0,
            next_vm: 0,
            next_migration: 0,
        }
    }

    /// Shared view of the cloud platform.
    pub fn cloud(&self) -> &CloudSim {
        &self.cloud
    }

    /// Returns the configuration.
    pub fn config(&self) -> &SpotCheckConfig {
        &self.cfg
    }

    /// Returns a VM's record.
    pub fn vm(&self, id: NestedVmId) -> Result<&VmRecord, ControllerError> {
        self.vms.get(&id).ok_or(ControllerError::UnknownVm(id))
    }

    /// Number of in-flight migrations.
    pub fn active_migrations(&self) -> usize {
        self.migrations.len()
    }

    /// Currently idle hot spares.
    pub fn idle_spares(&self) -> usize {
        self.spares.len()
    }

    /// Bootstraps the deployment: schedules the first price-change event of
    /// every market and boots the configured hot spares.
    pub fn bootstrap(&mut self, now: SimTime) -> Outbox {
        let mut out = Vec::new();
        let markets: Vec<MarketId> = self.cloud.markets().cloned().collect();
        for m in markets {
            if let Some(trace) = self.cloud.market_trace(&m) {
                if let Some((t, _)) = trace.prices.next_change_after(now) {
                    out.push((t, Event::PriceChange(m)));
                }
            }
        }
        for _ in 0..self.cfg.hot_spares {
            self.request_spare(now, &mut out);
        }
        // Arm the platform's first scheduled fault, if any; each delivery
        // re-arms the next (mirrors the price-change cursor).
        if let Some((t, f)) = self.cloud.next_scheduled_fault() {
            out.push((t.max(now), Event::Fault(f)));
        }
        out
    }

    fn request_spare(&mut self, now: SimTime, out: &mut Outbox) {
        let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
        if let Ok((_, op, ready)) = self.cloud.request_on_demand("m3.medium", &zone, now) {
            self.op_ctx.insert(op, OpCtx::SpareBoot);
            out.push((ready, Event::CloudOp(op)));
        }
    }

    /// Registers a new customer, carving them a VPC subnet.
    pub fn create_customer(&mut self) -> CustomerId {
        let id = CustomerId(self.next_customer);
        self.next_customer += 1;
        let subnet = self.cloud.create_subnet();
        self.customers.insert(
            id,
            Customer {
                id,
                subnet,
                vms: Vec::new(),
            },
        );
        id
    }

    /// Handles a customer's request for a (medium) nested VM. Returns the
    /// VM id immediately; provisioning proceeds asynchronously.
    pub fn request_server(
        &mut self,
        customer: CustomerId,
        workload: WorkloadKind,
        now: SimTime,
    ) -> Result<(NestedVmId, Outbox), ControllerError> {
        self.request_server_opts(customer, workload, false, now)
    }

    /// Like [`Controller::request_server`], with the stateless flag: a
    /// stateless VM is never assigned a backup server and is live-migrated
    /// on revocation (§4.2 — replicated tiers tolerate failures, so the
    /// backup cost can be skipped).
    pub fn request_server_opts(
        &mut self,
        customer: CustomerId,
        workload: WorkloadKind,
        stateless: bool,
        now: SimTime,
    ) -> Result<(NestedVmId, Outbox), ControllerError> {
        let subnet = self
            .customers
            .get(&customer)
            .ok_or(ControllerError::UnknownCustomer(customer))?
            .subnet;
        let id = NestedVmId(self.next_vm);
        self.next_vm += 1;
        let ip = self.cloud.allocate_ip(subnet);
        let volume = self.cloud.create_volume(8.0);
        self.vms.insert(
            id,
            VmRecord {
                id,
                customer,
                workload,
                stateless,
                ip,
                volume,
                eni: None,
                host: None,
                home_market: None,
                backup: None,
                status: VmStatus::Provisioning,
                requested_at: now,
                first_running_at: None,
                checkpoint_acked_at: None,
            },
        );
        self.customers
            .get_mut(&customer)
            .expect("customer exists")
            .vms
            .push(id);
        Ok((id, vec![(now, Event::ProvisionVm(id))]))
    }

    /// Releases a nested VM back to SpotCheck.
    pub fn release_server(
        &mut self,
        vm: NestedVmId,
        now: SimTime,
    ) -> Result<Outbox, ControllerError> {
        let record = self.vms.get_mut(&vm).ok_or(ControllerError::UnknownVm(vm))?;
        record.status = VmStatus::Released;
        let host = record.host.take();
        if let Some(b) = record.backup.take() {
            let _ = self.backups.release(vm);
            let _ = b;
        }
        let mut out = Vec::new();
        if let Some(h) = host {
            if let Some(info) = self.hosts.get_mut(&h) {
                let _ = info.hv.evict(vm);
                if info.hv.resident_count() == 0 {
                    self.terminate_host(h, now, &mut out);
                }
            }
        }
        Ok(out)
    }

    fn terminate_host(&mut self, instance: InstanceId, now: SimTime, out: &mut Outbox) {
        self.hosts.remove(&instance);
        match self.cloud.terminate(instance, now) {
            Ok((op, ready)) => {
                self.op_ctx.insert(op, OpCtx::Terminate);
                out.push((ready, Event::CloudOp(op)));
            }
            Err(CloudError::ApiUnavailable) if self.cfg.resilience.retry_enabled => {
                // Transient API error: a leaked host bills forever, so keep
                // retrying with backoff rather than dropping the terminate.
                let delay = self.cfg.resilience.retry.delay_for(1, instance.0);
                out.push((now + delay, Event::RetryTerminate { instance, attempt: 1 }));
            }
            Err(_) => {}
        }
    }

    /// Maximum attempts for a transiently-failing terminate before giving
    /// up (the instance is then assumed externally reclaimed).
    const MAX_TERMINATE_ATTEMPTS: u32 = 8;

    fn on_retry_terminate(
        &mut self,
        instance: InstanceId,
        attempt: u32,
        now: SimTime,
        out: &mut Outbox,
    ) {
        match self.cloud.terminate(instance, now) {
            Ok((op, ready)) => {
                self.op_ctx.insert(op, OpCtx::Terminate);
                out.push((ready, Event::CloudOp(op)));
            }
            Err(CloudError::ApiUnavailable) if attempt < Self::MAX_TERMINATE_ATTEMPTS => {
                let next = attempt + 1;
                let delay = self.cfg.resilience.retry.delay_for(next, instance.0);
                out.push((now + delay, Event::RetryTerminate { instance, attempt: next }));
            }
            Err(_) => {}
        }
    }

    /// The main event dispatcher.
    pub fn handle_event(&mut self, event: Event, now: SimTime) -> Outbox {
        let mut out = Vec::new();
        match event {
            Event::PriceChange(market) => self.on_price_change(&market, now, &mut out),
            Event::CloudOp(op) => self.on_cloud_op(op, now, &mut out),
            Event::ForcedTermination(instance) => {
                self.on_forced_termination(instance, now, &mut out)
            }
            Event::ProvisionVm(vm) => self.on_provision(vm, now, &mut out),
            Event::CommitStart(mig) => self.on_commit_start(mig, now, &mut out),
            Event::PauseStart(mig) => self.on_pause_start(mig, now),
            Event::CommitDone(mig) => {
                let acked = match self.migrations.get_mut(&mig) {
                    Some(m) => {
                        m.commit_done = true;
                        (!m.live && !m.commit_aborted).then_some(m.vm)
                    }
                    None => None,
                };
                // A non-live final commit lands the VM's full residue on
                // its backup server: the checkpoint there is now complete
                // and current, superseding any re-replication in flight.
                if let Some(vm) = acked {
                    let has_backup = self
                        .vms
                        .get(&vm)
                        .map(|r| r.backup.is_some())
                        .unwrap_or(false);
                    if has_backup {
                        if let Some(r) = self.vms.get_mut(&vm) {
                            r.checkpoint_acked_at = Some(now);
                        }
                        self.pending_rerepl.remove(&vm);
                        self.accounting.mark_protected(vm, now);
                    }
                }
                self.try_advance(mig, now, &mut out);
            }
            Event::RestoreDone(mig) => self.on_mig_gate_done(mig, now, &mut out),
            Event::DegradedEnd { vm, epoch } => {
                if self.degraded_epoch.get(&vm).copied().unwrap_or(0) == epoch {
                    if let Some(r) = self.vms.get(&vm) {
                        if r.status == VmStatus::Running {
                            self.accounting.mark_normal(vm, now);
                            if let Some(h) = r.host {
                                if let Some(info) = self.hosts.get_mut(&h) {
                                    if let Some(v) = info.hv.vm_mut(vm) {
                                        v.state = NestedVmState::Running;
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Event::ReturnTransferDone(vm) => self.on_return_transfer_done(vm, now, &mut out),
            Event::Fault(f) => self.on_fault(&f, now, &mut out),
            Event::ReplicationDone { vm, epoch } => self.on_replication_done(vm, epoch, now),
            Event::RetryTerminate { instance, attempt } => {
                self.on_retry_terminate(instance, attempt, now, &mut out)
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Provisioning
    // ------------------------------------------------------------------

    fn on_provision(&mut self, vm: NestedVmId, now: SimTime, out: &mut Outbox) {
        let Some(record) = self.vms.get(&vm) else {
            return;
        };
        if record.status != VmStatus::Provisioning {
            return;
        }
        // 1. Reuse a free slot on an existing spot host in one of the
        //    mapping policy's markets.
        let markets = self.cfg.mapping.markets(&self.cfg.zone);
        let existing = self.hosts.iter().find_map(|(id, info)| {
            let usable = self
                .cloud
                .instance(*id)
                .map(|i| matches!(i.state, InstanceState::Running))
                .unwrap_or(false);
            match &info.market {
                Some(m) if markets.contains(m) && usable && info.hv.fits(&self.vm_spec) => {
                    Some((*id, m.clone()))
                }
                _ => None,
            }
        });
        if let Some((host, market)) = existing {
            self.place_vm(vm, host, Some(market), now, out);
            return;
        }
        // 1b. Join a host that is still booting and has uncommitted slots
        //     (e.g. the second medium VM of a freshly-sliced m3.large).
        let pending = self.host_waiters.iter().find_map(|(inst, waiters)| {
            let i = self.cloud.instance(*inst).ok()?;
            if !matches!(i.state, InstanceState::Pending) {
                return None;
            }
            let in_scope = match i.market() {
                Some(m) => markets.contains(&m),
                None => true,
            };
            if in_scope && (waiters.len() as u32) < i.spec.medium_slots {
                Some((*inst, i.market()))
            } else {
                None
            }
        });
        if let Some((inst, market)) = pending {
            self.host_waiters
                .get_mut(&inst)
                .expect("pending host has a waiter list")
                .push(vm);
            if let Some(r) = self.vms.get_mut(&vm) {
                if r.home_market.is_none() {
                    r.home_market = market;
                }
            }
            return;
        }
        // 2. Buy a new native spot server: placement policy over the
        //    mapping markets (greedy picks the cheapest per slot, which is
        //    the §4.2 slicing arbitrage).
        let ordered_markets: Vec<MarketId> = {
            let mut candidates = Vec::new();
            for (i, m) in markets.iter().enumerate() {
                if let (Some(trace), Some(spec)) = (
                    self.cloud.market_trace(m),
                    self.cloud.spec(m.type_name.as_str()),
                ) {
                    candidates.push((i, m.clone(), spec.medium_slots, trace));
                }
            }
            let cand_refs: Vec<Candidate<'_>> = candidates
                .iter()
                .map(|(i, _, slots, trace)| Candidate {
                    index: *i,
                    trace,
                    slots: *slots,
                })
                .collect();
            let mut order: Vec<usize> = Vec::new();
            if let Some(first) = choose_index(self.cfg.placement, &cand_refs, now) {
                order.push(first);
            }
            for (i, ..) in &candidates {
                if !order.contains(i) {
                    order.push(*i);
                }
            }
            order
                .into_iter()
                .map(|idx| {
                    candidates
                        .iter()
                        .find(|(i, ..)| *i == idx)
                        .expect("ordered index is a candidate")
                        .1
                        .clone()
                })
                .collect()
        };
        let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
        for market in ordered_markets {
            // Circuit breaker: a market that keeps failing (transient API
            // errors, boot races) is excluded for a cooldown; provisioning
            // falls through to the next-cheapest market or on-demand.
            if self.market_health.is_open(&market, now) {
                continue;
            }
            let od = self
                .cloud
                .spec(market.type_name.as_str())
                .expect("candidate spec exists")
                .on_demand_price;
            let bid = self.cfg.bidding.bid(od);
            match self
                .cloud
                .request_spot(market.type_name.as_str(), &zone, bid, now)
            {
                Ok((instance, op, ready)) => {
                    self.market_health.record_success(&market);
                    self.op_ctx.insert(op, OpCtx::HostBoot);
                    self.host_waiters.entry(instance).or_default().push(vm);
                    // Remember the VM's home market for return-to-spot.
                    if let Some(r) = self.vms.get_mut(&vm) {
                        r.home_market = Some(market);
                    }
                    out.push((ready, Event::CloudOp(op)));
                    return;
                }
                // Economic rejection, not ill health: the price is simply
                // above our bid right now.
                Err(CloudError::BidBelowPrice { .. }) => continue,
                Err(CloudError::ApiUnavailable) => {
                    self.market_health.record_failure(&market, now);
                    continue;
                }
                Err(_) => continue,
            }
        }
        // 3. Every spot market is above our bid right now: fall back to an
        //    on-demand host (the VM will move to spot when prices permit).
        match self.cloud.request_on_demand("m3.medium", &zone, now) {
            Ok((instance, op, ready)) => {
                self.op_ctx.insert(op, OpCtx::HostBoot);
                self.host_waiters.entry(instance).or_default().push(vm);
                if let Some(r) = self.vms.get_mut(&vm) {
                    if r.home_market.is_none() {
                        // Home defaults to the first mapping market.
                        r.home_market =
                            self.cfg.mapping.markets(&self.cfg.zone).into_iter().next();
                    }
                }
                out.push((ready, Event::CloudOp(op)));
            }
            // Nothing anywhere — spot markets above our bid, skipped, or
            // erroring, and on-demand stocked out or throttled. Back off
            // and try the whole ladder again; without this the VM would
            // sit in Provisioning forever.
            Err(_) if self.cfg.resilience.retry_enabled => {
                let attempt = self.provision_attempts.entry(vm).or_insert(0);
                *attempt += 1;
                let delay = self.cfg.resilience.retry.delay_for(*attempt, vm.0);
                out.push((now + delay, Event::ProvisionVm(vm)));
            }
            Err(_) => {}
        }
    }

    /// Boots the nested VM on `host` and starts attaching its ENI/volume.
    fn place_vm(
        &mut self,
        vm: NestedVmId,
        host: InstanceId,
        market: Option<MarketId>,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(record) = self.vms.get_mut(&vm) else {
            return;
        };
        let info = self.hosts.get_mut(&host).expect("host exists");
        if info.hv.boot(vm, self.vm_spec, now).is_err() {
            // Lost the slot to a race: retry provisioning.
            out.push((now, Event::ProvisionVm(vm)));
            return;
        }
        record.host = Some(host);
        if record.home_market.is_none() {
            record.home_market = market;
        }
        let ip = record.ip;
        let volume = record.volume;
        let eni = self.cloud.create_eni(Some(ip));
        if let Some(r) = self.vms.get_mut(&vm) {
            r.eni = Some(eni);
        }
        let mut pending = 0u8;
        if let Ok((op, ready)) = self.cloud.attach_eni(eni, host, now) {
            self.op_ctx.insert(op, OpCtx::ProvisionAttach(vm));
            out.push((ready, Event::CloudOp(op)));
            pending += 1;
        }
        if let Ok((op, ready)) = self.cloud.attach_volume(volume, host, now) {
            self.op_ctx.insert(op, OpCtx::ProvisionAttach(vm));
            out.push((ready, Event::CloudOp(op)));
            pending += 1;
        }
        if pending == 0 {
            // Host died under us: retry.
            out.push((now, Event::ProvisionVm(vm)));
            return;
        }
        self.provision_pending.insert(vm, pending);
    }

    fn finish_provisioning(&mut self, vm: NestedVmId, now: SimTime) {
        self.provision_attempts.remove(&vm);
        let Some(record) = self.vms.get_mut(&vm) else {
            return;
        };
        record.status = VmStatus::Running;
        if record.first_running_at.is_none() {
            record.first_running_at = Some(now);
            self.accounting.track(vm, now);
        } else {
            // A re-provision after a crash: the downtime clock has been
            // running since the host died.
            self.accounting.mark_up(vm, now);
        }
        let host = record.host;
        let workload = record.workload;
        // Protect the VM with a backup server when it sits on a spot host
        // and the mechanism uses bounded-time migration.
        let on_spot = host
            .and_then(|h| self.hosts.get(&h))
            .map(|i| i.market.is_some())
            .unwrap_or(false);
        let stateless = self.vms.get(&vm).map(|r| r.stateless).unwrap_or(false);
        if on_spot && !stateless && self.cfg.mechanism.needs_backup() {
            self.assign_backup(vm, now);
        }
        if let Some(h) = host {
            if let Some(info) = self.hosts.get_mut(&h) {
                if let Some(v) = info.hv.vm_mut(vm) {
                    v.state = if on_spot && !stateless && self.cfg.mechanism.needs_backup() {
                        NestedVmState::RunningProtected
                    } else {
                        NestedVmState::Running
                    };
                }
            }
        }
        let _ = workload;
    }

    /// Assigns a backup server and treats the initial full checkpoint as
    /// immediately acked (modeling simplification: the first push completes
    /// well within the provisioning window). Re-replication after a backup
    /// failure goes through [`Controller::assign_backup_inner`] instead and
    /// acks only when the re-push finishes.
    fn assign_backup(&mut self, vm: NestedVmId, now: SimTime) {
        if self.assign_backup_inner(vm, now) {
            if let Some(r) = self.vms.get_mut(&vm) {
                r.checkpoint_acked_at = Some(now);
            }
        }
    }

    /// Picks a backup server for `vm` (round-robin with same-pool
    /// spreading) without acking a checkpoint. Returns true on success.
    fn assign_backup_inner(&mut self, vm: NestedVmId, now: SimTime) -> bool {
        if self.backups.server_of(vm).is_some() {
            return false;
        }
        // Spread VMs of the same spot pool across distinct backup servers
        // (§4.2): avoid servers already protecting same-market VMs.
        let market = self.vms.get(&vm).and_then(|r| r.home_market.clone());
        let avoid: Vec<BackupServerId> = match &market {
            Some(m) => self
                .vms
                .values()
                .filter(|r| r.home_market.as_ref() == Some(m) && r.id != vm)
                .filter_map(|r| r.backup)
                .collect(),
            None => Vec::new(),
        };
        let before: Vec<BackupServerId> = self.backups.servers().map(|(id, _)| id).collect();
        if let Ok(server) = self.backups.assign(vm, self.vm_spec.pages(), &avoid) {
            if !before.contains(&server) {
                self.backup_birth.insert(server, now);
            }
            if let Some(r) = self.vms.get_mut(&vm) {
                r.backup = Some(server);
            }
            true
        } else {
            false
        }
    }

    // ------------------------------------------------------------------
    // Price dynamics
    // ------------------------------------------------------------------

    fn on_price_change(&mut self, market: &MarketId, now: SimTime, out: &mut Outbox) {
        // Re-arm the next change event for this market.
        if let Some(trace) = self.cloud.market_trace(market) {
            if let Some((t, _)) = trace.prices.next_change_after(now) {
                out.push((t, Event::PriceChange(market.clone())));
            }
        }
        // Revocation dynamics: warnings for spot instances whose bid is now
        // under water.
        let warnings = self.cloud.apply_price_change(market, now);
        for w in warnings {
            out.push((w.terminate_at, Event::ForcedTermination(w.instance)));
            self.on_warning(w.instance, w.terminate_at, now, out);
        }
        // Proactive dynamics (k>1 bids with proactive monitoring, §4.3):
        // when the price crosses the on-demand threshold but stays below
        // the bid, live-migrate away before any warning can arrive.
        if let Some(od) = self
            .cloud
            .spec(market.type_name.as_str())
            .map(|s| s.on_demand_price)
        {
            let threshold = self.cfg.bidding.proactive_threshold(od);
            let price = self.cloud.spot_price(market, now);
            let bid = self.cfg.bidding.bid(od);
            if let (Some(th), Some(p)) = (threshold, price) {
                if p > th && p <= bid {
                    let hosts_in_market: Vec<InstanceId> = self
                        .hosts
                        .iter()
                        .filter(|(id, info)| {
                            info.market.as_ref() == Some(market)
                                && self
                                    .cloud
                                    .instance(**id)
                                    .map(|i| matches!(i.state, InstanceState::Running))
                                    .unwrap_or(false)
                        })
                        .map(|(id, _)| *id)
                        .collect();
                    for host in hosts_in_market {
                        self.start_proactive_evacuation(host, now, out);
                    }
                }
            }
        }
        // Allocation dynamics: if this market is now cheaper than
        // on-demand, bring home VMs that fled to on-demand.
        if self.cfg.return_to_spot {
            let price = self.cloud.spot_price(market, now);
            let od = self
                .cloud
                .spec(market.type_name.as_str())
                .map(|s| s.on_demand_price);
            if let (Some(p), Some(od)) = (price, od) {
                if p < od {
                    let candidates: Vec<NestedVmId> = self
                        .vms
                        .values()
                        .filter(|r| {
                            r.status == VmStatus::Running
                                && r.home_market.as_ref() == Some(market)
                                && !self.returns.contains_key(&r.id)
                                && r.host
                                    .and_then(|h| self.hosts.get(&h))
                                    .map(|i| i.market.is_none())
                                    .unwrap_or(false)
                        })
                        .map(|r| r.id)
                        .collect();
                    for vm in candidates {
                        self.start_return(vm, market.clone(), now, out);
                    }
                }
            }
        }
    }

    fn on_warning(
        &mut self,
        instance: InstanceId,
        deadline: SimTime,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let residents: Vec<NestedVmId> = self
            .hosts
            .get(&instance)
            .map(|i| i.hv.resident_ids())
            .unwrap_or_default();
        let concurrent = residents.len().max(1);
        for vm in residents {
            // Skip VMs already mid-migration or being returned.
            if self.vms.get(&vm).map(|r| r.status) == Some(VmStatus::Running)
                && !self.returns.contains_key(&vm)
            {
                self.accounting.count_revocation(vm);
                self.start_migration(vm, instance, deadline, concurrent, now, out);
            }
        }
    }

    // ------------------------------------------------------------------
    // Revocation migration
    // ------------------------------------------------------------------

    fn start_migration(
        &mut self,
        vm: NestedVmId,
        source: InstanceId,
        deadline: SimTime,
        concurrent: usize,
        now: SimTime,
        out: &mut Outbox,
    ) {
        self.start_migration_inner(vm, source, Some(deadline), concurrent, now, out);
    }

    /// Proactively evacuates every resident VM of `host` by live migration
    /// (no warning involved, no downtime; §4.3's proactive optimization).
    fn start_proactive_evacuation(&mut self, host: InstanceId, now: SimTime, out: &mut Outbox) {
        let residents: Vec<NestedVmId> = self
            .hosts
            .get(&host)
            .map(|i| i.hv.resident_ids())
            .unwrap_or_default();
        let concurrent = residents.len().max(1);
        for vm in residents {
            if self.vms.get(&vm).map(|r| r.status) == Some(VmStatus::Running)
                && !self.returns.contains_key(&vm)
            {
                self.start_migration_inner(vm, host, None, concurrent, now, out);
            }
        }
    }

    fn start_migration_inner(
        &mut self,
        vm: NestedVmId,
        source: InstanceId,
        deadline: Option<SimTime>,
        concurrent: usize,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(record) = self.vms.get_mut(&vm) else {
            return;
        };
        record.status = VmStatus::Migrating;
        let workload = record.workload;
        let id = MigrationId(self.next_migration);
        self.next_migration += 1;
        // Proactive moves (no deadline) always use live migration; so do
        // stateless VMs (they have no backup to restore from); under a
        // deadline the configured mechanism otherwise decides.
        let proactive = deadline.is_none();
        let stateless = record.stateless;
        let live = proactive || stateless || self.cfg.mechanism == MechanismKind::XenLive;

        let dirty = workload.dirty_model();
        let pays_downtime = !live && self.cfg.mechanism.pays_cloud_op_downtime();
        // Commit (or live-migrate) duration.
        let (commit_duration, pause) = if live {
            let pre = simulate_precopy(
                self.vm_spec.mem_bytes,
                &dirty,
                &PreCopyConfig {
                    bandwidth_bps: self.cfg.backup.nic_bps / concurrent as f64,
                    ..PreCopyConfig::default()
                },
            );
            (pre.total_duration, SimDuration::ZERO)
        } else {
            let commit = simulate_final_commit(
                self.cfg.bounded.residue_budget_bytes(),
                &dirty,
                self.vm_spec.pages(),
                self.cfg.backup.nic_bps / concurrent as f64,
                &spotcheck_migrate::bounded::BoundedTimeConfig {
                    ramp: self.cfg.mechanism.ramp(),
                    ..self.cfg.bounded.clone()
                },
            );
            (commit.commit_duration, commit.downtime)
        };

        // Degraded window / restore gate durations for this mechanism at
        // this concurrency (live transfers restore nothing).
        let (restore_gate, degraded) = if live {
            (SimDuration::ZERO, SimDuration::ZERO)
        } else {
            match self.cfg.mechanism.restore() {
                None => (SimDuration::ZERO, SimDuration::ZERO),
                Some((mode, path)) => {
                    let outs = simulate_concurrent_restores(
                        concurrent,
                        self.vm_spec.mem_bytes,
                        self.vm_spec.skeleton_bytes(),
                        mode,
                        path,
                        &self.cfg.backup,
                        None,
                    );
                    let worst = &outs[outs.len() - 1];
                    (worst.downtime, worst.degraded)
                }
            }
        };

        self.migrations.insert(
            id,
            Migration {
                vm,
                source,
                dest: None,
                commit_started: false,
                commit_done: false,
                commit_duration,
                commit_pause: pause,
                dest_ready: false,
                phase: MigPhase::Prep,
                pending: 0,
                paused_at: None,
                pays_downtime,
                proactive,
                live,
                started_at: now,
                dest_attempts: 0,
                commit_aborted: false,
                vm_obj: None,
                degraded,
            },
        );
        self.restore_gates.insert(id, restore_gate);

        // Under a deadline, the commit (or live transfer) is deferred until
        // the destination is ready — the ramped checkpointing of §5 runs
        // through the warning period while the VM keeps serving — but a
        // deadline guard forces it early enough that the state always
        // reaches the backup before the platform pulls the plug. Proactive
        // moves have no deadline: the transfer starts when the destination
        // is up.
        if let Some(deadline) = deadline {
            let guard = deadline
                .saturating_since(SimTime::ZERO)
                .saturating_sub(commit_duration)
                .saturating_sub(SimDuration::from_secs(2));
            let guard_at = SimTime::ZERO + guard;
            out.push((guard_at.max(now), Event::CommitStart(id)));
        }

        // Acquire a destination: hot spare if available, else a fresh
        // on-demand server.
        if let Some(spare) = self.spares.pop() {
            if let Some(m) = self.migrations.get_mut(&id) {
                m.dest = Some(spare);
                m.dest_ready = true;
            }
            self.start_commit(id, now, out);
            // Refill the spare pool.
            self.request_spare(now, out);
        } else {
            let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
            match self.cloud.request_on_demand("m3.medium", &zone, now) {
                Ok((instance, op, ready)) => {
                    if let Some(m) = self.migrations.get_mut(&id) {
                        m.dest = Some(instance);
                    }
                    self.op_ctx.insert(op, OpCtx::DestBoot(id));
                    out.push((ready, Event::CloudOp(op)));
                }
                Err(_) => {
                    // On-demand stockout (§4.3): the VM's state is safe on
                    // the backup server; retry the destination with backoff
                    // so a zone-wide stockout isn't hammered in lockstep.
                    self.schedule_dest_retry(id, now, out);
                }
            }
        }
    }

    /// Schedules the next destination-acquisition retry for a stalled
    /// migration through the resilience [`crate::retry::RetryPolicy`]
    /// (capped exponential backoff, per-migration jitter). With retries
    /// disabled (ablation), the migration simply stalls.
    fn schedule_dest_retry(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let Some(m) = self.migrations.get_mut(&mig) else {
            return;
        };
        m.dest_attempts += 1;
        let attempt = m.dest_attempts;
        let started = m.started_at;
        let policy = &self.cfg.resilience.retry;
        if !self.cfg.resilience.retry_enabled || policy.deadline_exceeded(started, now) {
            return;
        }
        let delay = policy.delay_for(attempt, mig.0);
        out.push((now + delay, Event::CommitStart(mig)));
    }

    /// Begins a migration's final commit (idempotent).
    fn start_commit(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let Some(m) = self.migrations.get_mut(&mig) else {
            return;
        };
        if m.commit_started {
            return;
        }
        m.commit_started = true;
        if m.pays_downtime && !m.commit_pause.is_zero() {
            out.push((
                now + m.commit_duration.saturating_sub(m.commit_pause),
                Event::PauseStart(mig),
            ));
        }
        out.push((now + m.commit_duration, Event::CommitDone(mig)));
    }

    /// Deadline guard / destination retry.
    fn on_commit_start(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        // Ensure a destination acquisition is in flight (stockout retry).
        let needs_dest = self
            .migrations
            .get(&mig)
            .map(|m| m.dest.is_none())
            .unwrap_or(false);
        if needs_dest {
            let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
            match self.cloud.request_on_demand("m3.medium", &zone, now) {
                Ok((instance, op, ready)) => {
                    if let Some(m) = self.migrations.get_mut(&mig) {
                        m.dest = Some(instance);
                    }
                    self.op_ctx.insert(op, OpCtx::DestBoot(mig));
                    out.push((ready, Event::CloudOp(op)));
                }
                Err(_) => {
                    self.schedule_dest_retry(mig, now, out);
                }
            }
        }
        self.start_commit(mig, now, out);
    }

    fn on_pause_start(&mut self, mig: MigrationId, now: SimTime) {
        if let Some(m) = self.migrations.get_mut(&mig) {
            if m.pays_downtime && m.paused_at.is_none() {
                m.paused_at = Some(now);
                self.accounting.mark_down(m.vm, now);
                if let Some(info) = self.hosts.get_mut(&m.source) {
                    if let Some(v) = info.hv.vm_mut(m.vm) {
                        v.state = NestedVmState::PausedForMigration;
                    }
                }
            }
        }
    }

    fn try_advance(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let Some(m) = self.migrations.get_mut(&mig) else {
            return;
        };
        if !(m.commit_done && m.dest_ready && m.phase == MigPhase::Prep) {
            return;
        }
        m.phase = MigPhase::Detaching;
        // The VM pauses no later than here (zero-pause mechanisms keep it
        // conceptually running; EC2 ops still interrupt it — the paper's
        // 22.65 s — unless the mechanism is idealized live migration).
        if m.pays_downtime && m.paused_at.is_none() {
            m.paused_at = Some(now);
            self.accounting.mark_down(m.vm, now);
        }
        let vm = m.vm;
        let source = m.source;
        // Detach the ENI and the volume from the source (only possible
        // while the source still exists; a force-terminated source already
        // released them).
        let (eni, volume) = {
            let r = self.vms.get(&vm).expect("migrating VM exists");
            (r.eni, r.volume)
        };
        let mut pending = 0u8;
        let source_alive = self
            .cloud
            .instance(source)
            .map(|i| i.is_usable())
            .unwrap_or(false);
        if source_alive {
            if let Some(eni) = eni {
                if let Ok((op, ready)) = self.cloud.detach_eni(eni, now) {
                    self.op_ctx.insert(op, OpCtx::MigDetach(mig));
                    out.push((ready, Event::CloudOp(op)));
                    pending += 1;
                }
            }
            if let Ok((op, ready)) = self.cloud.detach_volume(volume, now) {
                self.op_ctx.insert(op, OpCtx::MigDetach(mig));
                out.push((ready, Event::CloudOp(op)));
                pending += 1;
            }
        }
        if let Some(m) = self.migrations.get_mut(&mig) {
            m.pending = pending;
        }
        if pending == 0 {
            self.begin_attach(mig, now, out);
        }
    }

    fn on_mig_gate_done(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let phase = match self.migrations.get_mut(&mig) {
            Some(m) => {
                m.pending = m.pending.saturating_sub(1);
                if m.pending > 0 {
                    return;
                }
                m.phase
            }
            None => return,
        };
        match phase {
            MigPhase::Detaching => self.begin_attach(mig, now, out),
            MigPhase::Attaching => self.complete_migration(mig, now, out),
            MigPhase::Prep => {}
        }
    }

    fn begin_attach(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let (vm, source, dest, live) = match self.migrations.get(&mig) {
            Some(m) => match m.dest {
                Some(d) => (m.vm, m.source, d, m.live),
                None => return,
            },
            None => return,
        };
        // Move the VM object: evicted from a still-alive source, carried
        // across a forced termination (live transfers only), or resurrected
        // from the backup server's checkpoint (non-live). A non-live VM
        // with no source, no carried object, and no backup is gone — its
        // memory existed nowhere else.
        let vm_obj = self
            .hosts
            .get_mut(&source)
            .and_then(|i| i.hv.evict(vm).ok())
            .or_else(|| self.migrations.get_mut(&mig).and_then(|m| m.vm_obj.take()));
        let vm_obj = match vm_obj {
            Some(obj) => obj,
            None => {
                let has_backup = self
                    .vms
                    .get(&vm)
                    .map(|r| r.backup.is_some())
                    .unwrap_or(false);
                if live || has_backup {
                    NestedVm::new(vm, self.vm_spec, now)
                } else {
                    self.abort_lost(mig, vm, now, out);
                    return;
                }
            }
        };
        // Relinquish the source once it has no residents left.
        let source_empty = self
            .hosts
            .get(&source)
            .map(|i| i.hv.resident_count() == 0)
            .unwrap_or(false);
        if source_empty
            && self
                .cloud
                .instance(source)
                .map(|i| i.is_usable())
                .unwrap_or(false)
        {
            self.terminate_host(source, now, out);
        }
        // Admit at the destination.
        if let Some(info) = self.hosts.get_mut(&dest) {
            let mut obj = vm_obj;
            obj.state = NestedVmState::Restoring;
            let _ = info.hv.admit(obj);
        }
        // New ENI at the destination carrying the same private IP
        // (Figure 4 / §3.4), plus the volume reattach, plus the memory
        // restore gate.
        let (ip, volume) = {
            let r = self.vms.get(&vm).expect("migrating VM exists");
            (r.ip, r.volume)
        };
        let eni = self.cloud.create_eni(Some(ip));
        if let Some(r) = self.vms.get_mut(&vm) {
            r.eni = Some(eni);
        }
        let mut pending = 0u8;
        if let Ok((op, ready)) = self.cloud.attach_eni(eni, dest, now) {
            self.op_ctx.insert(op, OpCtx::MigAttach(mig));
            out.push((ready, Event::CloudOp(op)));
            pending += 1;
        }
        if let Ok((op, ready)) = self.cloud.attach_volume(volume, dest, now) {
            self.op_ctx.insert(op, OpCtx::MigAttach(mig));
            out.push((ready, Event::CloudOp(op)));
            pending += 1;
        }
        let gate = self
            .restore_gates
            .get(&mig)
            .copied()
            .unwrap_or(SimDuration::ZERO);
        out.push((now + gate, Event::RestoreDone(mig)));
        pending += 1;
        if let Some(m) = self.migrations.get_mut(&mig) {
            m.phase = MigPhase::Attaching;
            m.pending = pending;
        }
    }

    fn complete_migration(&mut self, mig: MigrationId, now: SimTime, out: &mut Outbox) {
        let Some(m) = self.migrations.remove(&mig) else {
            return;
        };
        self.restore_gates.remove(&mig);
        let vm = m.vm;
        let dest = m.dest.expect("dest ready");
        if let Some(r) = self.vms.get_mut(&vm) {
            r.host = Some(dest);
            r.status = VmStatus::Running;
        }
        // Resume: downtime ends.
        if m.paused_at.is_some() {
            self.accounting.mark_up(vm, now);
        }
        if m.proactive {
            self.accounting.count_proactive(vm);
        } else {
            self.accounting.count_migration(vm);
        }
        // The VM now sits on a non-revocable on-demand server: it no longer
        // needs backup protection (§3.5), and any re-replication in flight
        // is moot.
        if self.backups.server_of(vm).is_some() {
            let _ = self.backups.release(vm);
        }
        if let Some(r) = self.vms.get_mut(&vm) {
            r.backup = None;
        }
        self.pending_rerepl.remove(&vm);
        self.accounting.mark_protected(vm, now);
        // Lazy restores run degraded while prefetching completes.
        let state = if m.degraded.is_zero() {
            NestedVmState::Running
        } else {
            let epoch = self.degraded_epoch.entry(vm).or_insert(0);
            *epoch += 1;
            let epoch = *epoch;
            self.accounting.mark_degraded(vm, now);
            out.push((now + m.degraded, Event::DegradedEnd { vm, epoch }));
            NestedVmState::LazyRestoring
        };
        if let Some(info) = self.hosts.get_mut(&dest) {
            if let Some(v) = info.hv.vm_mut(vm) {
                v.state = state;
            }
        }
    }

    /// Aborts a migration whose VM's memory is unrecoverable: the source
    /// is gone, nothing was carried forward, and no backup holds a copy.
    fn abort_lost(&mut self, mig: MigrationId, vm: NestedVmId, now: SimTime, out: &mut Outbox) {
        let Some(m) = self.migrations.remove(&mig) else {
            return;
        };
        self.restore_gates.remove(&mig);
        if m.paused_at.is_none() {
            self.accounting.mark_down(vm, now);
        }
        self.accounting.count_lost();
        self.pending_rerepl.remove(&vm);
        if let Some(r) = self.vms.get_mut(&vm) {
            r.status = VmStatus::Lost;
            r.host = None;
        }
        // Release the destination we acquired for a VM that will never
        // arrive.
        if let Some(dest) = m.dest {
            let empty = self
                .hosts
                .get(&dest)
                .map(|i| i.hv.resident_count() == 0)
                .unwrap_or(false);
            if empty {
                self.terminate_host(dest, now, out);
            }
        }
    }

    fn on_forced_termination(&mut self, instance: InstanceId, now: SimTime, out: &mut Outbox) {
        // Carry still-resident VM objects into their LIVE migrations before
        // the host record disappears: a live transfer streams memory
        // source-to-destination, so the object survives the termination.
        // Non-live (bounded-time) migrations restore strictly from the
        // backup server's last acked checkpoint — carrying the object would
        // smuggle state that never reached the backup.
        if let Some(info) = self.hosts.get_mut(&instance) {
            let residents = info.hv.resident_ids();
            for vm in residents {
                if let Some((_, m)) = self
                    .migrations
                    .iter_mut()
                    .find(|(_, m)| m.vm == vm && m.source == instance)
                {
                    if m.live {
                        if let Ok(obj) = info.hv.evict(vm) {
                            m.vm_obj = Some(obj);
                        }
                    }
                }
            }
        }
        let reclaimed = self.cloud.force_terminate(instance, now).unwrap_or(false);
        if reclaimed {
            self.hosts.remove(&instance);
        }
        let _ = out;
    }

    // ------------------------------------------------------------------
    // Fault handling (injected platform faults; resilience layer)
    // ------------------------------------------------------------------

    fn on_fault(&mut self, event: &FaultEvent, now: SimTime, out: &mut Outbox) {
        // Re-arm the next scheduled fault before reacting to this one.
        if let Some((t, f)) = self.cloud.next_scheduled_fault() {
            out.push((t.max(now), Event::Fault(f)));
        }
        let impact = self.cloud.apply_fault(event, now);
        // Revocation storms: ordinary warnings, just many at once.
        for w in &impact.warnings {
            out.push((w.terminate_at, Event::ForcedTermination(w.instance)));
            self.on_warning(w.instance, w.terminate_at, now, out);
        }
        for n in &impact.notifications {
            if let Notification::InstanceCrashed { instance } = n {
                self.on_instance_crash(*instance, now, out);
            }
        }
        if let Some(pick) = impact.backup_pick {
            self.on_backup_failure(pick, now, out);
        }
    }

    /// A native instance crash-stopped: no warning, memory lost. Each
    /// resident VM recovers from its backup's last acked checkpoint,
    /// re-provisions from scratch (stateless), or — if its state existed
    /// nowhere but the dead host — is lost.
    fn on_instance_crash(&mut self, instance: InstanceId, now: SimTime, out: &mut Outbox) {
        self.accounting.count_crash();
        self.spares.retain(|s| *s != instance);
        let (residents, was_spot) = self
            .hosts
            .remove(&instance)
            .map(|i| (i.hv.resident_ids(), i.market.is_some()))
            .unwrap_or((Vec::new(), false));
        // Migrations streaming their final commit FROM the crashed host die
        // mid-push: the backup must not be credited with a fresh ack.
        for m in self.migrations.values_mut() {
            if m.source == instance && !m.commit_done {
                m.commit_aborted = true;
            }
        }
        // Migrations targeting the crashed host as destination must
        // re-acquire one; their VM state is still safe on the backup.
        let orphaned_dests: Vec<MigrationId> = self
            .migrations
            .iter_mut()
            .filter(|(_, m)| m.dest == Some(instance) && m.phase == MigPhase::Prep)
            .map(|(id, m)| {
                m.dest = None;
                m.dest_ready = false;
                *id
            })
            .collect();
        for mig in orphaned_dests {
            out.push((now, Event::CommitStart(mig)));
        }
        for vm in residents {
            let Some(record) = self.vms.get(&vm) else {
                continue;
            };
            match record.status {
                VmStatus::Running => {}
                // In-flight migrations handle the missing source themselves
                // (begin_attach); provisioning retries via AttachFailed.
                _ => continue,
            }
            let stateless = record.stateless;
            self.accounting.mark_down(vm, now);
            self.returns.remove(&vm);
            let recoverable = record.backup.is_some() && !self.pending_rerepl.contains_key(&vm);
            if recoverable {
                self.start_crash_recovery(vm, instance, now, out);
            } else if stateless || !was_spot {
                // Stateless replicas tolerate memory loss by design; a
                // stateful VM on non-revocable capacity reboots from its
                // persistent EBS volume. Either way the VM reincarnates
                // (downtime runs until provisioning completes).
                if let Some(r) = self.vms.get_mut(&vm) {
                    r.host = None;
                    r.eni = None;
                    r.status = VmStatus::Provisioning;
                }
                out.push((now, Event::ProvisionVm(vm)));
            } else {
                // A spot-hosted stateful VM whose memory existed only on
                // the dead host: no backup (resilience ablated), or the
                // backup's image was still incomplete mid-re-replication.
                self.accounting.count_lost();
                if let Some(r) = self.vms.get_mut(&vm) {
                    if r.backup.is_some() {
                        let _ = self.backups.release(vm);
                        r.backup = None;
                    }
                    r.host = None;
                    r.status = VmStatus::Lost;
                }
                self.pending_rerepl.remove(&vm);
            }
        }
    }

    /// Restores a crashed VM from its backup's last acked checkpoint: a
    /// migration with a zero-length commit (there is no source to commit
    /// from; the residue since the last ack is lost) that pays downtime
    /// from the crash instant until the restore completes.
    fn start_crash_recovery(
        &mut self,
        vm: NestedVmId,
        source: InstanceId,
        now: SimTime,
        out: &mut Outbox,
    ) {
        let Some(record) = self.vms.get_mut(&vm) else {
            return;
        };
        record.status = VmStatus::Migrating;
        let id = MigrationId(self.next_migration);
        self.next_migration += 1;
        let (restore_gate, degraded) = match self.cfg.mechanism.restore() {
            None => (SimDuration::ZERO, SimDuration::ZERO),
            Some((mode, path)) => {
                let outs = simulate_concurrent_restores(
                    1,
                    self.vm_spec.mem_bytes,
                    self.vm_spec.skeleton_bytes(),
                    mode,
                    path,
                    &self.cfg.backup,
                    None,
                );
                let worst = &outs[outs.len() - 1];
                (worst.downtime, worst.degraded)
            }
        };
        self.migrations.insert(
            id,
            Migration {
                vm,
                source,
                dest: None,
                commit_started: true,
                commit_done: true,
                commit_duration: SimDuration::ZERO,
                commit_pause: SimDuration::ZERO,
                dest_ready: false,
                phase: MigPhase::Prep,
                pending: 0,
                paused_at: Some(now),
                pays_downtime: true,
                proactive: false,
                live: false,
                started_at: now,
                dest_attempts: 0,
                commit_aborted: false,
                vm_obj: None,
                degraded,
            },
        );
        self.restore_gates.insert(id, restore_gate);
        if let Some(spare) = self.spares.pop() {
            if let Some(m) = self.migrations.get_mut(&id) {
                m.dest = Some(spare);
                m.dest_ready = true;
            }
            self.try_advance(id, now, out);
            self.request_spare(now, out);
        } else {
            let zone = spotcheck_spotmarket::market::ZoneName::new(self.cfg.zone.clone());
            match self.cloud.request_on_demand("m3.medium", &zone, now) {
                Ok((instance, op, ready)) => {
                    if let Some(m) = self.migrations.get_mut(&id) {
                        m.dest = Some(instance);
                    }
                    self.op_ctx.insert(op, OpCtx::DestBoot(id));
                    out.push((ready, Event::CloudOp(op)));
                }
                Err(_) => {
                    self.schedule_dest_retry(id, now, out);
                }
            }
        }
    }

    /// A backup server crash-stopped: every VM it protected is unprotected
    /// until its full checkpoint is re-pushed to a replacement server.
    fn on_backup_failure(&mut self, pick: u64, now: SimTime, out: &mut Outbox) {
        let ids = self.backups.server_ids();
        if ids.is_empty() {
            return;
        }
        let victim = ids[(pick % ids.len() as u64) as usize];
        self.accounting.count_backup_failure();
        self.backup_death.insert(victim, now);
        let Ok(orphans) = self.backups.fail_server(victim) else {
            return;
        };
        // Re-pushing a full image takes mem / NIC bandwidth (the VM itself
        // is the data source — its host streams the checkpoint afresh).
        let push = SimDuration::from_secs_f64(
            self.vm_spec.mem_bytes as f64 / self.cfg.backup.nic_bps,
        );
        for vm in orphans {
            if let Some(r) = self.vms.get_mut(&vm) {
                r.backup = None;
            }
            self.pending_rerepl.remove(&vm);
            self.accounting.mark_unprotected(vm, now);
            if !self.cfg.resilience.rereplication_enabled {
                continue;
            }
            if self.assign_backup_inner(vm, now) {
                self.repl_epoch += 1;
                let epoch = self.repl_epoch;
                self.pending_rerepl.insert(vm, epoch);
                out.push((now + push, Event::ReplicationDone { vm, epoch }));
            }
        }
    }

    /// A re-replication push finished: the replacement backup now holds a
    /// complete, current checkpoint (unless a newer event superseded it).
    fn on_replication_done(&mut self, vm: NestedVmId, epoch: u32, now: SimTime) {
        if self.pending_rerepl.get(&vm) != Some(&epoch) {
            return; // Stale: superseded by a commit, landing, or newer push.
        }
        self.pending_rerepl.remove(&vm);
        let protected = self.vms.get(&vm).map(|r| r.backup.is_some()).unwrap_or(false);
        if protected {
            if let Some(r) = self.vms.get_mut(&vm) {
                r.checkpoint_acked_at = Some(now);
            }
            self.accounting.mark_protected(vm, now);
            self.accounting.count_rereplication(vm);
        }
    }

    // ------------------------------------------------------------------
    // Return-to-spot (allocation dynamics)
    // ------------------------------------------------------------------

    fn start_return(&mut self, vm: NestedVmId, market: MarketId, now: SimTime, out: &mut Outbox) {
        let zone = spotcheck_spotmarket::market::ZoneName::new(market.zone.as_str());
        let od = self
            .cloud
            .spec(market.type_name.as_str())
            .map(|s| s.on_demand_price)
            .unwrap_or(0.07);
        let bid = self.cfg.bidding.bid(od);
        let Ok((instance, op, ready)) =
            self.cloud
                .request_spot(market.type_name.as_str(), &zone, bid, now)
        else {
            return;
        };
        self.op_ctx.insert(op, OpCtx::ReturnBoot(vm));
        self.returns.insert(
            vm,
            ReturnState {
                dest: instance,
                phase: ReturnPhase::Transferring,
                pending: 0,
            },
        );
        out.push((ready, Event::CloudOp(op)));
    }

    fn on_return_transfer_done(&mut self, vm: NestedVmId, now: SimTime, out: &mut Outbox) {
        // Pre-copy finished; move the IP and volume (no downtime counted:
        // live migration keeps the VM serving until switchover).
        let Some(ret) = self.returns.get_mut(&vm) else {
            return;
        };
        ret.phase = ReturnPhase::Detaching;
        let (eni, volume, host) = {
            let Some(r) = self.vms.get(&vm) else {
                self.returns.remove(&vm);
                return;
            };
            (r.eni, r.volume, r.host)
        };
        let mut pending = 0u8;
        let source_alive = host
            .and_then(|h| self.cloud.instance(h).ok().map(|i| i.is_usable()))
            .unwrap_or(false);
        if source_alive {
            if let Some(eni) = eni {
                if let Ok((op, ready)) = self.cloud.detach_eni(eni, now) {
                    self.op_ctx.insert(op, OpCtx::ReturnDetach(vm));
                    out.push((ready, Event::CloudOp(op)));
                    pending += 1;
                }
            }
            if let Ok((op, ready)) = self.cloud.detach_volume(volume, now) {
                self.op_ctx.insert(op, OpCtx::ReturnDetach(vm));
                out.push((ready, Event::CloudOp(op)));
                pending += 1;
            }
        }
        if pending == 0 {
            self.begin_return_attach(vm, now, out);
        } else if let Some(ret) = self.returns.get_mut(&vm) {
            ret.pending = pending;
        }
    }

    fn begin_return_attach(&mut self, vm: NestedVmId, now: SimTime, out: &mut Outbox) {
        let dest = match self.returns.get_mut(&vm) {
            Some(r) => {
                r.phase = ReturnPhase::Attaching;
                r.dest
            }
            None => return,
        };
        // Move the VM object from the od host to the spot host.
        let old_host = self.vms.get(&vm).and_then(|r| r.host);
        let obj = old_host
            .and_then(|h| self.hosts.get_mut(&h).and_then(|i| i.hv.evict(vm).ok()))
            .unwrap_or_else(|| NestedVm::new(vm, self.vm_spec, now));
        if let Some(info) = self.hosts.get_mut(&dest) {
            let _ = info.hv.admit(obj);
        }
        // Relinquish the empty od host.
        if let Some(h) = old_host {
            let empty = self
                .hosts
                .get(&h)
                .map(|i| i.hv.resident_count() == 0)
                .unwrap_or(false);
            if empty {
                self.terminate_host(h, now, out);
            }
        }
        let (ip, volume) = {
            let r = self.vms.get(&vm).expect("returning VM exists");
            (r.ip, r.volume)
        };
        let eni = self.cloud.create_eni(Some(ip));
        let mut pending = 0u8;
        if let Ok((op, ready)) = self.cloud.attach_eni(eni, dest, now) {
            self.op_ctx.insert(op, OpCtx::ReturnAttach(vm));
            out.push((ready, Event::CloudOp(op)));
            pending += 1;
        }
        if let Ok((op, ready)) = self.cloud.attach_volume(volume, dest, now) {
            self.op_ctx.insert(op, OpCtx::ReturnAttach(vm));
            out.push((ready, Event::CloudOp(op)));
            pending += 1;
        }
        if let Some(r) = self.vms.get_mut(&vm) {
            r.eni = Some(eni);
            r.host = Some(dest);
        }
        if pending == 0 {
            self.complete_return(vm, now);
        } else if let Some(ret) = self.returns.get_mut(&vm) {
            ret.pending = pending;
        }
    }

    fn complete_return(&mut self, vm: NestedVmId, now: SimTime) {
        self.returns.remove(&vm);
        self.accounting.count_migration(vm);
        // Back on revocable spot: re-establish backup protection (unless
        // the VM is stateless).
        let stateless = self.vms.get(&vm).map(|r| r.stateless).unwrap_or(false);
        if self.cfg.mechanism.needs_backup() && !stateless {
            self.assign_backup(vm, now);
        }
        let host = self.vms.get(&vm).and_then(|r| r.host);
        if let Some(h) = host {
            if let Some(info) = self.hosts.get_mut(&h) {
                if let Some(v) = info.hv.vm_mut(vm) {
                    v.state = if self.cfg.mechanism.needs_backup() {
                        NestedVmState::RunningProtected
                    } else {
                        NestedVmState::Running
                    };
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Cloud-op completion dispatch
    // ------------------------------------------------------------------

    fn on_cloud_op(&mut self, op: OpId, now: SimTime, out: &mut Outbox) {
        let Some(ctx) = self.op_ctx.remove(&op) else {
            return;
        };
        let Ok(notif) = self.cloud.complete_op(op, now) else {
            return;
        };
        match (ctx, notif) {
            (OpCtx::HostBoot, Notification::InstanceStarted { instance }) => {
                let spec = self
                    .cloud
                    .instance(instance)
                    .expect("instance exists")
                    .spec
                    .clone();
                let market = self
                    .cloud
                    .instance(instance)
                    .expect("instance exists")
                    .market();
                self.hosts.insert(
                    instance,
                    HostInfo {
                        hv: HostVm::new(spec.medium_slots),
                        market: market.clone(),
                    },
                );
                for vm in self.host_waiters.remove(&instance).unwrap_or_default() {
                    self.place_vm(vm, instance, market.clone(), now, out);
                }
            }
            (OpCtx::HostBoot, Notification::SpotStartFailed { instance }) => {
                // A boot race (price moved during startup) counts against
                // the market's health.
                if let Some(market) = self.cloud.instance(instance).ok().and_then(|i| i.market()) {
                    self.market_health.record_failure(&market, now);
                }
                for vm in self.host_waiters.remove(&instance).unwrap_or_default() {
                    out.push((now, Event::ProvisionVm(vm)));
                }
            }
            (OpCtx::SpareBoot, Notification::InstanceStarted { instance }) => {
                let slots = self
                    .cloud
                    .instance(instance)
                    .expect("instance exists")
                    .spec
                    .medium_slots;
                self.hosts.insert(
                    instance,
                    HostInfo {
                        hv: HostVm::new(slots),
                        market: None,
                    },
                );
                self.spares.push(instance);
            }
            (OpCtx::DestBoot(mig), Notification::InstanceStarted { instance }) => {
                let slots = self
                    .cloud
                    .instance(instance)
                    .expect("instance exists")
                    .spec
                    .medium_slots;
                self.hosts.insert(
                    instance,
                    HostInfo {
                        hv: HostVm::new(slots),
                        market: None,
                    },
                );
                if let Some(m) = self.migrations.get_mut(&mig) {
                    m.dest_ready = true;
                }
                self.start_commit(mig, now, out);
                self.try_advance(mig, now, out);
            }
            (OpCtx::ProvisionAttach(vm), n) => {
                match n {
                    Notification::EniAttached { .. } | Notification::VolumeAttached { .. } => {
                        let left = self
                            .provision_pending
                            .get_mut(&vm)
                            .map(|p| {
                                *p = p.saturating_sub(1);
                                *p
                            })
                            .unwrap_or(0);
                        if left == 0 {
                            self.provision_pending.remove(&vm);
                            self.finish_provisioning(vm, now);
                        }
                    }
                    Notification::EniAttachFailed { .. }
                    | Notification::VolumeAttachFailed { .. } => {
                        // The host died mid-provision: start over.
                        self.provision_pending.remove(&vm);
                        if let Some(r) = self.vms.get_mut(&vm) {
                            r.host = None;
                        }
                        out.push((now, Event::ProvisionVm(vm)));
                    }
                    _ => {}
                }
            }
            (OpCtx::MigDetach(mig), _) => self.on_mig_gate_done(mig, now, out),
            (OpCtx::MigAttach(mig), n) => match n {
                Notification::EniAttachFailed { .. } | Notification::VolumeAttachFailed { .. } => {
                    // The on-demand destination cannot be revoked; a failure
                    // here means the driver terminated it externally. Drop
                    // the gate so the migration can still complete.
                    self.on_mig_gate_done(mig, now, out);
                }
                _ => self.on_mig_gate_done(mig, now, out),
            },
            (OpCtx::ReturnBoot(vm), Notification::InstanceStarted { instance }) => {
                // The return may have been abandoned (e.g. the od source
                // crashed mid-return): release the now-pointless spot host.
                if !self.returns.contains_key(&vm) {
                    if let Ok((op, ready)) = self.cloud.terminate(instance, now) {
                        self.op_ctx.insert(op, OpCtx::Terminate);
                        out.push((ready, Event::CloudOp(op)));
                    }
                    return;
                }
                let inst = self.cloud.instance(instance).expect("instance exists");
                let slots = inst.spec.medium_slots;
                let market = inst.market();
                self.hosts.insert(
                    instance,
                    HostInfo {
                        hv: HostVm::new(slots),
                        market,
                    },
                );
                // Live pre-copy transfer of the running VM.
                let dirty = self
                    .vms
                    .get(&vm)
                    .map(|r| r.workload.dirty_model())
                    .unwrap_or_else(|| WorkloadKind::TpcW.dirty_model());
                let pre = simulate_precopy(
                    self.vm_spec.mem_bytes,
                    &dirty,
                    &PreCopyConfig::default(),
                );
                out.push((now + pre.total_duration, Event::ReturnTransferDone(vm)));
            }
            (OpCtx::ReturnBoot(vm), Notification::SpotStartFailed { .. }) => {
                // The market moved against us during boot; abandon the
                // return and stay on on-demand.
                self.returns.remove(&vm);
            }
            (OpCtx::ReturnDetach(vm), _) => {
                let done = self
                    .returns
                    .get_mut(&vm)
                    .map(|r| {
                        r.pending = r.pending.saturating_sub(1);
                        r.pending == 0
                    })
                    .unwrap_or(false);
                if done {
                    self.begin_return_attach(vm, now, out);
                }
            }
            (OpCtx::ReturnAttach(vm), _) => {
                let done = self
                    .returns
                    .get_mut(&vm)
                    .map(|r| {
                        r.pending = r.pending.saturating_sub(1);
                        r.pending == 0
                    })
                    .unwrap_or(false);
                if done {
                    self.complete_return(vm, now);
                }
            }
            (OpCtx::Terminate, _) => {}
            // Remaining combinations (e.g. a boot op completing after its
            // purpose evaporated) are benign.
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Reporting
    // ------------------------------------------------------------------

    /// Availability/degradation report across all VMs, closing clocks at
    /// `now`.
    pub fn availability_report(&mut self, now: SimTime) -> AvailabilityReport {
        self.accounting.report(now)
    }

    /// Cost report at `now`.
    pub fn cost_report(&self, now: SimTime) -> CostReport {
        let mut native = 0.0;
        for inst in self.cloud.instances() {
            native += self.cloud.instance_cost(inst.id, now).unwrap_or(0.0);
        }
        let mut backup = 0.0;
        for (id, birth) in self.backup_birth.iter() {
            // A failed backup server stops billing at its death.
            let end = self
                .backup_death
                .get(id)
                .copied()
                .unwrap_or(now)
                .min(now);
            backup += self.cfg.backup.hourly_price * end.saturating_since(*birth).as_hours_f64();
        }
        let mut vm_hours = 0.0;
        for r in self.vms.values() {
            if let Some(start) = r.first_running_at {
                vm_hours += now.saturating_since(start).as_hours_f64();
            }
        }
        let total = native + backup;
        CostReport {
            native_cost: native,
            backup_cost: backup,
            total,
            vm_hours,
            cost_per_vm_hr: if vm_hours > 0.0 { total / vm_hours } else { 0.0 },
        }
    }

    /// Number of VMs currently in each status (for tests/diagnostics).
    pub fn status_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut counts = BTreeMap::new();
        for r in self.vms.values() {
            let k = match r.status {
                VmStatus::Provisioning => "provisioning",
                VmStatus::Running => "running",
                VmStatus::Migrating => "migrating",
                VmStatus::Released => "released",
                VmStatus::Lost => "lost",
            };
            *counts.entry(k).or_insert(0) += 1;
        }
        counts
    }

    /// Markets whose health circuit is currently open (diagnostics).
    pub fn open_markets(&self, now: SimTime) -> Vec<MarketId> {
        self.market_health.open_markets(now)
    }

    /// VMs currently awaiting a re-replication push (diagnostics).
    pub fn pending_rereplications(&self) -> usize {
        self.pending_rerepl.len()
    }

    /// The private IP of a VM (stable across migrations).
    pub fn vm_ip(&self, vm: NestedVmId) -> Option<PrivateIp> {
        self.vms.get(&vm).map(|r| r.ip)
    }

    /// The EBS volume of a VM.
    pub fn vm_volume(&self, vm: NestedVmId) -> Option<VolumeId> {
        self.vms.get(&vm).map(|r| r.volume)
    }
}
