//! Crash-consistent snapshots of the [`Engine`](crate::engine::Engine).
//!
//! A snapshot is *logical*, not physical: instead of serializing every
//! controller and platform field (fragile across refactors, and the
//! platform holds RNG streams mid-draw), it records the minimum that —
//! combined with the deterministic simulation — reconstructs the exact
//! state:
//!
//! 1. the digest of the [`Scenario`](crate::engine::Scenario) the engine
//!    was built from (traces + configs);
//! 2. the instant the snapshot was taken and the events processed by then;
//! 3. the full command log (every externally injected command with its
//!    exact simulation time);
//! 4. a 64-bit state signature over the live engine.
//!
//! Restore rebuilds a fresh engine from the same scenario, replays the
//! command log under the [replay discipline](crate::engine), advances to
//! the snapshot instant, and then *verifies* the step count and state
//! signature. A mismatch — different scenario inputs, a corrupted log, a
//! code change that altered the trajectory — is a hard error, never a
//! silently wrong resume. Restore cost is O(history) simulated events
//! rather than O(state) bytes; for the multi-day scenarios SpotCheck
//! targets that is seconds of wall clock, and the journal spill sink
//! keeps the tail of commands past the snapshot equally replayable.
//!
//! # Text format (version 1)
//!
//! ```text
//! spotcheck-snapshot v1
//! scenario <16-hex digest>
//! taken_at <micros>
//! steps <count>
//! commands <count>
//! cmd <seq> <micros> <kind> <a> <b> <c> <journaled:0|1>
//! ...
//! signature <16-hex digest>
//! ```
//!
//! Line-oriented, integer-only (times in exact microseconds, digests in
//! hex), self-describing counts — parseable without any serialization
//! dependency and diffable by eye.

use std::fmt;
use std::io;
use std::path::Path;

use spotcheck_simcore::queue::QueueBackend;
use spotcheck_simcore::time::SimTime;

use crate::engine::{Command, Engine, Scenario, TimedCommand};

/// The snapshot format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A parsed (or freshly taken) engine snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Format version (see [`SNAPSHOT_VERSION`]).
    pub version: u32,
    /// Digest of the scenario the engine was built from.
    pub scenario_digest: u64,
    /// The instant the snapshot was taken.
    pub taken_at: SimTime,
    /// Events processed by `taken_at`.
    pub steps: u64,
    /// The full command log up to `taken_at`.
    pub commands: Vec<TimedCommand>,
    /// State signature of the live engine at `taken_at`.
    pub signature: u64,
}

/// A malformed snapshot text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// 1-based line of the offending text, 0 for whole-file problems.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "snapshot: {}", self.reason)
        } else {
            write!(f, "snapshot line {}: {}", self.line, self.reason)
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why a restore was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot's format version is not supported by this build.
    UnsupportedVersion(u32),
    /// The snapshot was taken from a different scenario.
    ScenarioMismatch {
        /// Digest recorded in the snapshot.
        expected: u64,
        /// Digest of the scenario offered for restore.
        actual: u64,
    },
    /// A command could not be replayed (out-of-order log).
    Replay(String),
    /// Replay converged on a different step count than recorded.
    StepMismatch {
        /// Steps recorded in the snapshot.
        expected: u64,
        /// Steps after replay.
        actual: u64,
    },
    /// Replay converged on a different state signature than recorded.
    SignatureMismatch {
        /// Signature recorded in the snapshot.
        expected: u64,
        /// Signature after replay.
        actual: u64,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::UnsupportedVersion(v) => {
                write!(f, "restore: unsupported snapshot version {v}")
            }
            RestoreError::ScenarioMismatch { expected, actual } => write!(
                f,
                "restore: scenario mismatch (snapshot {expected:016x}, given {actual:016x})"
            ),
            RestoreError::Replay(msg) => write!(f, "restore: {msg}"),
            RestoreError::StepMismatch { expected, actual } => write!(
                f,
                "restore: step count diverged (snapshot {expected}, replay {actual})"
            ),
            RestoreError::SignatureMismatch { expected, actual } => write!(
                f,
                "restore: state signature diverged (snapshot {expected:016x}, replay {actual:016x})"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

impl Snapshot {
    /// Renders the snapshot in the version-1 text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(128 + self.commands.len() * 48);
        let _ = writeln!(s, "spotcheck-snapshot v{}", self.version);
        let _ = writeln!(s, "scenario {:016x}", self.scenario_digest);
        let _ = writeln!(s, "taken_at {}", self.taken_at.as_micros());
        let _ = writeln!(s, "steps {}", self.steps);
        let _ = writeln!(s, "commands {}", self.commands.len());
        for c in &self.commands {
            let (a, b, v) = c.cmd.encode_args();
            let _ = writeln!(
                s,
                "cmd {} {} {} {a} {b} {v} {}",
                c.seq,
                c.at.as_micros(),
                c.cmd.kind(),
                u64::from(c.journaled)
            );
        }
        let _ = writeln!(s, "signature {:016x}", self.signature);
        s
    }

    /// Parses the version-1 text format.
    ///
    /// # Errors
    ///
    /// Rejects truncated, reordered, or otherwise malformed text with the
    /// offending line.
    pub fn parse(text: &str) -> Result<Snapshot, SnapshotError> {
        fn err(line: usize, reason: impl Into<String>) -> SnapshotError {
            SnapshotError {
                line,
                reason: reason.into(),
            }
        }
        fn field<'a>(
            lines: &mut impl Iterator<Item = (usize, &'a str)>,
            key: &str,
        ) -> Result<(usize, String), SnapshotError> {
            let (n, line) = lines.next().ok_or_else(|| err(0, format!("missing {key}")))?;
            let rest = line
                .strip_prefix(key)
                .and_then(|r| r.strip_prefix(' '))
                .ok_or_else(|| err(n, format!("expected `{key} ...`")))?;
            Ok((n, rest.to_string()))
        }

        let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l.trim_end()));
        let (n, header) = lines.next().ok_or_else(|| err(0, "empty snapshot"))?;
        let version: u32 = header
            .strip_prefix("spotcheck-snapshot v")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| err(n, "bad header (want `spotcheck-snapshot v<N>`)"))?;

        let (n, v) = field(&mut lines, "scenario")?;
        let scenario_digest =
            u64::from_str_radix(&v, 16).map_err(|_| err(n, "bad scenario digest"))?;
        let (n, v) = field(&mut lines, "taken_at")?;
        let taken_at = v
            .parse()
            .map(SimTime::from_micros)
            .map_err(|_| err(n, "bad taken_at"))?;
        let (n, v) = field(&mut lines, "steps")?;
        let steps: u64 = v.parse().map_err(|_| err(n, "bad steps"))?;
        let (n, v) = field(&mut lines, "commands")?;
        let count: usize = v.parse().map_err(|_| err(n, "bad command count"))?;

        let mut commands = Vec::with_capacity(count);
        for i in 0..count {
            let (n, v) = field(&mut lines, "cmd")
                .map_err(|e| err(e.line, format!("command {i}: {}", e.reason)))?;
            let parts: Vec<&str> = v.split(' ').collect();
            if parts.len() != 7 {
                return Err(err(n, format!("command {i}: want 7 fields")));
            }
            let seq: u64 = parts[0].parse().map_err(|_| err(n, "bad seq"))?;
            if seq != i as u64 {
                return Err(err(n, format!("command {i}: seq {seq} out of order")));
            }
            let at = parts[1]
                .parse()
                .map(SimTime::from_micros)
                .map_err(|_| err(n, "bad command time"))?;
            let a: u64 = parts[3].parse().map_err(|_| err(n, "bad arg a"))?;
            let b: u64 = parts[4].parse().map_err(|_| err(n, "bad arg b"))?;
            let c: u64 = parts[5].parse().map_err(|_| err(n, "bad arg c"))?;
            let journaled = match parts[6] {
                "0" => false,
                "1" => true,
                _ => return Err(err(n, "bad journaled flag")),
            };
            let cmd = Command::decode(parts[2], a, b, c)
                .ok_or_else(|| err(n, format!("unknown command kind `{}`", parts[2])))?;
            commands.push(TimedCommand {
                seq,
                at,
                journaled,
                cmd,
            });
        }

        let (n, v) = field(&mut lines, "signature")?;
        let signature = u64::from_str_radix(&v, 16).map_err(|_| err(n, "bad signature"))?;
        if let Some((n, l)) = lines.next() {
            if !l.is_empty() {
                return Err(err(n, "trailing content after signature"));
            }
        }
        Ok(Snapshot {
            version,
            scenario_digest,
            taken_at,
            steps,
            commands,
            signature,
        })
    }

    /// Writes the snapshot to `path` atomically: the text goes to a
    /// `.tmp` sibling first and is renamed into place, so a crash mid-write
    /// never leaves a truncated snapshot where a valid one should be.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_atomic(&self, path: &Path) -> io::Result<()> {
        let tmp = match path.file_name() {
            Some(name) => {
                let mut n = name.to_os_string();
                n.push(".tmp");
                path.with_file_name(n)
            }
            None => return Err(io::Error::new(io::ErrorKind::InvalidInput, "bad path")),
        };
        std::fs::write(&tmp, self.to_text())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and parses a snapshot file.
    ///
    /// # Errors
    ///
    /// Propagates read failures; parse failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read(path: &Path) -> io::Result<Snapshot> {
        let text = std::fs::read_to_string(path)?;
        Snapshot::parse(&text)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

impl Engine {
    /// Takes a logical snapshot of the engine at the current instant.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            version: SNAPSHOT_VERSION,
            scenario_digest: self.scenario_digest(),
            taken_at: self.now(),
            steps: self.steps(),
            commands: self.command_log().to_vec(),
            signature: self.state_signature(),
        }
    }

    /// Rebuilds an engine from a scenario and a snapshot by deterministic
    /// replay, verifying convergence (see the [module docs](crate::snapshot)).
    ///
    /// # Errors
    ///
    /// Refuses unsupported versions, scenario mismatches, unreplayable
    /// logs, and any step-count or signature divergence.
    pub fn restore(scenario: &Scenario, snap: &Snapshot) -> Result<Engine, RestoreError> {
        Engine::restore_with_backend(scenario, snap, spotcheck_simcore::queue::default_backend())
    }

    /// Like [`Engine::restore`] with an explicit queue backend. Both
    /// backends pop bit-identically, so restoring under a different
    /// backend than the original run still converges.
    pub fn restore_with_backend(
        scenario: &Scenario,
        snap: &Snapshot,
        backend: QueueBackend,
    ) -> Result<Engine, RestoreError> {
        if snap.version != SNAPSHOT_VERSION {
            return Err(RestoreError::UnsupportedVersion(snap.version));
        }
        let actual = scenario.digest();
        if snap.scenario_digest != actual {
            return Err(RestoreError::ScenarioMismatch {
                expected: snap.scenario_digest,
                actual,
            });
        }
        let mut engine = scenario.build_with_backend(backend);
        for cmd in &snap.commands {
            engine.replay(cmd).map_err(RestoreError::Replay)?;
        }
        engine.step_until(snap.taken_at);
        if engine.steps() != snap.steps {
            return Err(RestoreError::StepMismatch {
                expected: snap.steps,
                actual: engine.steps(),
            });
        }
        let signature = engine.state_signature();
        if signature != snap.signature {
            return Err(RestoreError::SignatureMismatch {
                expected: snap.signature,
                actual: signature,
            });
        }
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpotCheckConfig;
    use crate::engine::CommandOutcome;
    use crate::sim::standard_traces;
    use spotcheck_simcore::time::SimDuration;
    use spotcheck_workloads::WorkloadKind;

    fn quick_scenario() -> Scenario {
        Scenario::new(
            standard_traces("us-east-1a", SimDuration::from_days(2), 42),
            SpotCheckConfig::default(),
        )
    }

    fn driven_engine(scenario: &Scenario) -> Engine {
        let mut engine = scenario.build();
        let c = match engine.apply(Command::CreateCustomer) {
            Ok(CommandOutcome::Customer(c)) => c,
            other => panic!("unexpected outcome {other:?}"),
        };
        engine
            .apply(Command::Provision {
                customer: c,
                workload: WorkloadKind::TpcW,
                stateless: false,
            })
            .unwrap();
        engine.step_until(SimTime::from_hours(6));
        engine
            .apply(Command::Provision {
                customer: c,
                workload: WorkloadKind::SpecJbb,
                stateless: true,
            })
            .unwrap();
        engine.step_until(SimTime::from_hours(12));
        engine
    }

    #[test]
    fn text_roundtrip_is_lossless() {
        let scenario = quick_scenario();
        let engine = driven_engine(&scenario);
        let snap = engine.snapshot();
        let parsed = Snapshot::parse(&snap.to_text()).expect("parse own output");
        assert_eq!(parsed, snap);
    }

    #[test]
    fn restore_converges_and_extends() {
        let scenario = quick_scenario();
        let mut original = driven_engine(&scenario);
        let snap = original.snapshot();

        let mut restored = Engine::restore(&scenario, &snap).expect("restore");
        assert_eq!(restored.now(), original.now());
        assert_eq!(restored.state_signature(), original.state_signature());

        // The restored engine continues exactly like the original.
        let horizon = SimTime::from_days(1);
        original.step_until(horizon);
        restored.step_until(horizon);
        assert_eq!(restored.steps(), original.steps());
        assert_eq!(restored.state_signature(), original.state_signature());
        assert_eq!(
            restored.journal().to_json(),
            original.journal().to_json()
        );
    }

    #[test]
    fn restore_rejects_wrong_scenario() {
        let scenario = quick_scenario();
        let snap = driven_engine(&scenario).snapshot();
        let mut other = quick_scenario();
        other.config.seed = 1;
        match Engine::restore(&other, &snap) {
            Err(RestoreError::ScenarioMismatch { .. }) => {}
            Err(other) => panic!("expected scenario mismatch, got {other:?}"),
            Ok(_) => panic!("restore against a different scenario succeeded"),
        }
    }

    #[test]
    fn restore_rejects_tampered_log() {
        let scenario = quick_scenario();
        let mut snap = driven_engine(&scenario).snapshot();
        // Flip the second provision to stateless=false: replay diverges.
        if let Command::Provision { stateless, .. } = &mut snap.commands[2].cmd {
            *stateless = false;
        } else {
            panic!("expected a provision at log position 2");
        }
        assert!(Engine::restore(&scenario, &snap).is_err());
    }

    #[test]
    fn parse_rejects_malformed_text() {
        let scenario = quick_scenario();
        let text = driven_engine(&scenario).snapshot().to_text();
        assert!(Snapshot::parse("").is_err());
        assert!(Snapshot::parse("spotcheck-snapshot v1\n").is_err());
        let truncated = &text[..text.len() - 20];
        assert!(Snapshot::parse(truncated).is_err());
        let reordered = text.replace("cmd 0", "cmd 9");
        assert!(Snapshot::parse(&reordered).is_err());
    }

    #[test]
    fn atomic_write_then_read() {
        let scenario = quick_scenario();
        let snap = driven_engine(&scenario).snapshot();
        let mut path = std::env::temp_dir();
        path.push(format!("spotcheck-snap-test-{}", std::process::id()));
        snap.write_atomic(&path).expect("write");
        let back = Snapshot::read(&path).expect("read");
        assert_eq!(back, snap);
        std::fs::remove_file(&path).ok();
    }
}
