//! The trace-driven policy simulator behind Figures 10-12 and Table 3.
//!
//! Exactly like the paper's evaluation, long-horizon policy results are
//! produced by replaying spot-price history against the pool-management
//! policies, *seeded with the mechanism measurements*: each revocation
//! charges the per-migration impact computed by the page-level mechanism
//! models (`spotcheck-migrate`) plus the EC2 control-plane downtime
//! distribution of Table 1 (~22.65 s mean across the four EBS/ENI
//! operations).
//!
//! Every VM mapped to the same pool behaves identically (same bid, same
//! trace), so the simulator walks each pool's trace once and weights pool
//! outcomes by the mapping policy's VM distribution.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_cloudsim::latency::{CloudOp, LatencyModel};
use spotcheck_migrate::bounded::BoundedTimeConfig;
use spotcheck_migrate::mechanisms::{migration_impact, MechanismKind};
use spotcheck_nestedvm::vm::NestedVmSpec;
use spotcheck_simcore::metrics;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::generator::TraceGenerator;
use spotcheck_spotmarket::market::MarketId;
use spotcheck_spotmarket::profiles::profile_for;
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use crate::policy::{BiddingPolicy, MappingPolicy};

/// One experiment cell of the Figure 10/11/12 grid.
#[derive(Debug, Clone)]
pub struct PolicyExperiment {
    /// Customer-to-pool mapping (Table 2).
    pub mapping: MappingPolicy,
    /// Migration mechanism variant.
    pub mechanism: MechanismKind,
    /// Bidding policy.
    pub bidding: BiddingPolicy,
    /// Simulation horizon (paper: six months, April-October).
    pub horizon: SimDuration,
    /// VMs multiplexed per backup server (paper: 40); also Table 3's `N`.
    pub vms_per_backup: usize,
    /// Workload running in every nested VM.
    pub workload: WorkloadKind,
    /// If true, per-revocation migration impact is computed at the storm
    /// concurrency (all same-pool VMs of a backup restoring together); if
    /// false (default), impact uses the single-VM microbenchmark numbers —
    /// exactly how the paper seeds its simulation from §6.1.
    pub storm_scaled_impacts: bool,
    /// RNG seed (trace generation + latency sampling).
    pub seed: u64,
}

impl PolicyExperiment {
    /// The paper's default configuration for a given policy/mechanism cell.
    pub fn paper_default(mapping: MappingPolicy, mechanism: MechanismKind, seed: u64) -> Self {
        PolicyExperiment {
            mapping,
            mechanism,
            bidding: BiddingPolicy::OnDemandPrice,
            horizon: SimDuration::from_days(183),
            vms_per_backup: 40,
            workload: WorkloadKind::TpcW,
            storm_scaled_impacts: false,
            seed,
        }
    }
}

/// What happened to the VMs of one pool.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolOutcome {
    /// The pool's market.
    pub market: MarketId,
    /// Fraction of VMs mapped to this pool.
    pub weight: f64,
    /// VMs of this pool sharing one backup server (revocation-storm
    /// concurrency).
    pub concurrency: usize,
    /// Native (spot + on-demand fail-over) cost per VM, $/hr.
    pub native_cost_per_vm_hr: f64,
    /// Revocations (bid crossings) over the horizon.
    pub revocations: usize,
    /// Proactive live migrations (k-bid policies only).
    pub proactive_migrations: usize,
    /// Migrations back to spot after spikes abated.
    pub returns_to_spot: usize,
    /// Total downtime per VM over the horizon.
    pub downtime_per_vm: SimDuration,
    /// Total degraded-performance time per VM over the horizon.
    pub degraded_per_vm: SimDuration,
    /// Fraction of the horizon spent failed-over on on-demand.
    pub fraction_on_demand: f64,
    /// Times of revocation events (for storm statistics).
    pub revocation_times: Vec<SimTime>,
}

/// Table 3 row: the empirical distribution of the maximum number of
/// concurrent revocations hitting one backup server within an interval.
#[derive(Debug, Clone, PartialEq)]
pub struct StormStats {
    /// `N`: VMs per backup server.
    pub n: usize,
    /// Bucketing interval (revocations within it count as concurrent).
    pub interval: SimDuration,
    /// `(fraction_of_n, probability_per_interval)` for N/4, N/2, 3N/4, N.
    pub buckets: Vec<(f64, f64)>,
}

impl StormStats {
    /// Probability of a *full* mass revocation (all N at once).
    pub fn p_full(&self) -> f64 {
        self.buckets
            .iter()
            .find(|(f, _)| (*f - 1.0).abs() < 1e-9)
            .map(|(_, p)| *p)
            .unwrap_or(0.0)
    }
}

/// The aggregate result of one experiment cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyReport {
    /// The experiment.
    pub mapping: MappingPolicy,
    /// The mechanism variant.
    pub mechanism: MechanismKind,
    /// Average cost per VM, $/hr, including amortized backup servers.
    pub avg_cost_per_vm_hr: f64,
    /// Unavailability over the horizon, percent.
    pub unavailability_pct: f64,
    /// Availability over the horizon, percent.
    pub availability_pct: f64,
    /// Time under degraded performance, percent.
    pub degradation_pct: f64,
    /// Mean revocations per VM over the horizon.
    pub revocations_per_vm: f64,
    /// Per-pool detail.
    pub pools: Vec<PoolOutcome>,
    /// Table 3 statistics.
    pub storms: StormStats,
}

/// Result of walking one pool's trace under a bid policy.
#[derive(Debug, Clone)]
struct PoolWalk {
    cost_dollars: f64,
    revocation_times: Vec<SimTime>,
    proactive: usize,
    returns: usize,
    time_on_od: SimDuration,
}

/// Walks a pool's price trace with the §4.3 dynamics: revocation on bid
/// crossings (fail-over to on-demand), return to spot when the price drops
/// back below on-demand, optional proactive live migration at the
/// on-demand crossing.
fn walk_pool(
    trace: &PriceTrace,
    bid: f64,
    proactive_threshold: Option<f64>,
    from: SimTime,
    to: SimTime,
) -> PoolWalk {
    #[derive(PartialEq, Clone, Copy)]
    enum Loc {
        Spot,
        OnDemand,
    }
    let od = trace.on_demand_price;
    let mut out = PoolWalk {
        cost_dollars: 0.0,
        revocation_times: Vec::new(),
        proactive: 0,
        returns: 0,
        time_on_od: SimDuration::ZERO,
    };
    // One seek to the window start, then a linear walk over the change
    // points — the six-month traces make this the simulator's inner loop.
    let points = trace.prices.points();
    let mut idx = points.partition_point(|(t, _)| *t <= from);
    if idx == 0 {
        return out;
    }
    let mut price = points[idx - 1].1;
    let mut loc = if price <= bid && proactive_threshold.map_or(true, |t| price <= t) {
        Loc::Spot
    } else {
        Loc::OnDemand
    };
    let mut cursor = from;
    let mut walked = 0u64;
    while cursor < to {
        walked += 1;
        let (next, next_price) = match points.get(idx) {
            Some(&(t, p)) if t < to => (t, Some(p)),
            _ => (to, None),
        };
        idx += 1;
        let dt_hr = next.since(cursor).as_hours_f64();
        match loc {
            Loc::Spot => out.cost_dollars += price * dt_hr,
            Loc::OnDemand => {
                out.cost_dollars += od * dt_hr;
                out.time_on_od += next.since(cursor);
            }
        }
        let Some(p) = next_price else {
            break;
        };
        match loc {
            Loc::Spot => {
                if p > bid {
                    out.revocation_times.push(next);
                    loc = Loc::OnDemand;
                } else if proactive_threshold.is_some_and(|t| p > t) {
                    out.proactive += 1;
                    loc = Loc::OnDemand;
                }
            }
            Loc::OnDemand => {
                // Return when spot is again strictly cheaper than on-demand
                // (and below any proactive threshold).
                if p < od && p <= bid && proactive_threshold.map_or(true, |t| p <= t) {
                    out.returns += 1;
                    loc = Loc::Spot;
                }
            }
        }
        price = p;
        cursor = next;
    }
    metrics::add(walked);
    out
}

/// Generates the standard six-month m3-family traces for one zone.
///
/// Markets are generated in parallel on independent forked RNG streams;
/// the result is identical at every worker count.
pub fn standard_traces(zone: &str, horizon: SimDuration, seed: u64) -> Vec<PriceTrace> {
    let root = SimRng::seed(seed);
    let markets: Vec<(MarketId, _)> = ["m3.medium", "m3.large", "m3.xlarge", "m3.2xlarge"]
        .iter()
        .map(|name| {
            let entry = profile_for(name).expect("m3 family is in the catalog");
            (MarketId::new(*name, zone), entry.profile)
        })
        .collect();
    spotcheck_simcore::parallel::parallel_map(markets, |_, (id, profile)| {
        let mut rng = root.fork_named(&id.to_string());
        TraceGenerator::new(profile).generate(id, horizon, &mut rng)
    })
}

/// Runs one experiment cell against the given market traces.
///
/// `traces` must cover every market the mapping policy uses (same zone).
///
/// # Panics
///
/// Panics if a required market trace is missing.
pub fn run_policy(traces: &[PriceTrace], exp: &PolicyExperiment) -> PolicyReport {
    let zone = traces
        .first()
        .map(|t| t.market.zone.as_str().to_string())
        .expect("at least one trace");
    let markets = exp.mapping.markets(&zone);
    let pool_traces: Vec<&PriceTrace> = markets
        .iter()
        .map(|m| {
            traces
                .iter()
                .find(|t| &t.market == m)
                .unwrap_or_else(|| panic!("missing trace for market {m}"))
        })
        .collect();
    let horizon_end = SimTime::ZERO + exp.horizon;
    let weights = exp
        .mapping
        .weights(&pool_traces, SimTime::ZERO, horizon_end);

    // Mechanism impact inputs: the paper's medium nested VM running the
    // configured workload, with the bounded-time defaults (30 s bound).
    let spec = NestedVmSpec::medium();
    let dirty = exp.workload.dirty_model();
    let backup_cfg = BackupServerConfig::default();
    let bt_cfg = BoundedTimeConfig::default();
    let latency = LatencyModel::table1();
    let mut rng = SimRng::seed(exp.seed).fork_named("policy-sim");

    let mut pools = Vec::new();
    for ((market, trace), weight) in markets.iter().zip(&pool_traces).zip(&weights) {
        let entry = profile_for(market.type_name.as_str()).expect("known type");
        let slots = entry.medium_slots as f64;
        let bid = exp.bidding.bid(trace.on_demand_price);
        let proactive = exp.bidding.proactive_threshold(trace.on_demand_price);
        let walk = walk_pool(trace, bid, proactive, SimTime::ZERO, horizon_end);

        // Concurrency: VMs of this pool multiplexed on one backup server.
        let concurrency = ((exp.vms_per_backup as f64 * weight).round() as usize).max(1);

        // Per-revocation mechanism impact (identical VMs => computed once).
        // The paper seeds its policy simulation with the single-VM
        // microbenchmark impact; `storm_scaled_impacts` charges the full
        // storm contention instead (an ablation).
        let impact_concurrency = if exp.storm_scaled_impacts {
            concurrency
        } else {
            1
        };
        let commit_bps = backup_cfg.nic_bps / impact_concurrency as f64;
        let impact = migration_impact(
            exp.mechanism,
            impact_concurrency,
            spec.mem_bytes,
            spec.skeleton_bytes(),
            &dirty,
            bt_cfg.residue_budget_bytes(),
            commit_bps,
            &backup_cfg,
            &bt_cfg,
        );

        // EC2 control-plane downtime per migration, sampled per event from
        // the Table 1 distributions (detach/attach EBS + NIC).
        let mut downtime = SimDuration::ZERO;
        let mut degraded = SimDuration::ZERO;
        for _ in &walk.revocation_times {
            downtime += impact.downtime;
            degraded += impact.degraded;
            if exp.mechanism.pays_cloud_op_downtime() {
                downtime += latency.sample(CloudOp::DetachEbs, &mut rng)
                    + latency.sample(CloudOp::AttachEbs, &mut rng)
                    + latency.sample(CloudOp::DetachNic, &mut rng)
                    + latency.sample(CloudOp::AttachNic, &mut rng);
            }
        }

        let hours = exp.horizon.as_hours_f64();
        pools.push(PoolOutcome {
            market: market.clone(),
            weight: *weight,
            concurrency,
            native_cost_per_vm_hr: walk.cost_dollars / slots / hours,
            revocations: walk.revocation_times.len(),
            proactive_migrations: walk.proactive,
            returns_to_spot: walk.returns,
            downtime_per_vm: downtime,
            degraded_per_vm: degraded,
            fraction_on_demand: walk.time_on_od.as_secs_f64() / exp.horizon.as_secs_f64(),
            revocation_times: walk.revocation_times,
        });
    }

    // Aggregate, weighting pools by their VM share.
    let backup_per_vm = if exp.mechanism.needs_backup() {
        backup_cfg.hourly_price / backup_cfg.max_vms as f64
    } else {
        0.0
    };
    let horizon_secs = exp.horizon.as_secs_f64();
    let mut cost = 0.0;
    let mut unavail = 0.0;
    let mut degr = 0.0;
    let mut revs = 0.0;
    for p in &pools {
        cost += p.weight * p.native_cost_per_vm_hr;
        unavail += p.weight * p.downtime_per_vm.as_secs_f64() / horizon_secs;
        degr += p.weight * p.degraded_per_vm.as_secs_f64() / horizon_secs;
        revs += p.weight * p.revocations as f64;
    }
    let storms = storm_stats(&pools, exp.vms_per_backup, exp.horizon);

    PolicyReport {
        mapping: exp.mapping,
        mechanism: exp.mechanism,
        avg_cost_per_vm_hr: cost + backup_per_vm,
        unavailability_pct: unavail * 100.0,
        availability_pct: (1.0 - unavail) * 100.0,
        degradation_pct: degr * 100.0,
        revocations_per_vm: revs,
        pools,
        storms,
    }
}

/// Computes Table 3: bucket revocation events into 5-minute intervals and
/// measure, per interval, how many of one backup server's `n` VMs revoke
/// concurrently.
fn storm_stats(pools: &[PoolOutcome], n: usize, horizon: SimDuration) -> StormStats {
    let interval = SimDuration::from_secs(60);
    let slots = (horizon.as_micros() / interval.as_micros()).max(1);
    // Map: interval index -> concurrent revocation count.
    let mut per_interval: std::collections::HashMap<u64, usize> =
        std::collections::HashMap::new();
    for p in pools {
        for t in &p.revocation_times {
            let idx = t.as_micros() / interval.as_micros();
            *per_interval.entry(idx).or_insert(0) += p.concurrency;
        }
    }
    let quarter = (n as f64 / 4.0).round() as usize;
    let mut buckets = vec![(0.25, 0.0), (0.5, 0.0), (0.75, 0.0), (1.0, 0.0)];
    for &count in per_interval.values() {
        // Snap to the nearest quarter bucket (counts are sums of pool
        // concurrencies, which are near-quarter multiples by construction).
        let frac = count as f64 / n as f64;
        let bucket = ((frac * 4.0).round() as usize).clamp(1, 4);
        buckets[bucket - 1].1 += 1.0;
    }
    for (_, p) in &mut buckets {
        *p /= slots as f64;
    }
    let _ = quarter;
    StormStats {
        n,
        interval,
        buckets,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::series::StepSeries;

    fn mini_traces() -> Vec<PriceTrace> {
        // Deterministic miniature markets over 10 hours.
        // medium: calm at 0.014, one spike in hour 5.
        let mut m = StepSeries::new();
        m.push(SimTime::ZERO, 0.014);
        m.push(SimTime::from_hours(5), 0.50);
        m.push(SimTime::from_hours(5) + SimDuration::from_secs(600), 0.014);
        // large: two spikes.
        let mut l = StepSeries::new();
        l.push(SimTime::ZERO, 0.030);
        l.push(SimTime::from_hours(2), 1.0);
        l.push(SimTime::from_hours(2) + SimDuration::from_secs(300), 0.030);
        l.push(SimTime::from_hours(7), 1.0);
        l.push(SimTime::from_hours(7) + SimDuration::from_secs(300), 0.030);
        // xlarge, 2xlarge: flat.
        let x = StepSeries::from_points(vec![(SimTime::ZERO, 0.060)]);
        let xx = StepSeries::from_points(vec![(SimTime::ZERO, 0.120)]);
        vec![
            PriceTrace::new(MarketId::new("m3.medium", "z"), 0.070, m),
            PriceTrace::new(MarketId::new("m3.large", "z"), 0.140, l),
            PriceTrace::new(MarketId::new("m3.xlarge", "z"), 0.280, x),
            PriceTrace::new(MarketId::new("m3.2xlarge", "z"), 0.560, xx),
        ]
    }

    fn exp(mapping: MappingPolicy, mech: MechanismKind) -> PolicyExperiment {
        PolicyExperiment {
            mapping,
            mechanism: mech,
            bidding: BiddingPolicy::OnDemandPrice,
            horizon: SimDuration::from_hours(10),
            vms_per_backup: 40,
            workload: WorkloadKind::TpcW,
            storm_scaled_impacts: false,
            seed: 7,
        }
    }

    #[test]
    fn walk_pool_counts_events_and_costs() {
        let traces = mini_traces();
        let w = walk_pool(&traces[0], 0.070, None, SimTime::ZERO, SimTime::from_hours(10));
        assert_eq!(w.revocation_times.len(), 1);
        assert_eq!(w.returns, 1);
        assert_eq!(w.proactive, 0);
        // Cost: 0.014 everywhere except 600 s at od 0.07.
        let expect = 0.014 * (10.0 - 1.0 / 6.0) + 0.07 / 6.0;
        assert!((w.cost_dollars - expect).abs() < 1e-9, "cost={}", w.cost_dollars);
        assert_eq!(w.time_on_od, SimDuration::from_secs(600));
    }

    #[test]
    fn high_bid_avoids_revocation_but_pays_spike() {
        let traces = mini_traces();
        // Bid 10x od on the medium pool: the 0.50 spike stays below 0.70.
        let w = walk_pool(&traces[0], 0.70, None, SimTime::ZERO, SimTime::from_hours(10));
        assert_eq!(w.revocation_times.len(), 0);
        // The VM pays 0.50 during the spike: more than the od fail-over.
        let base = walk_pool(&traces[0], 0.07, None, SimTime::ZERO, SimTime::from_hours(10));
        assert!(w.cost_dollars > base.cost_dollars);
    }

    #[test]
    fn proactive_converts_revocations_to_live_migrations() {
        let traces = mini_traces();
        let w = walk_pool(
            &traces[0],
            0.70,
            Some(0.070),
            SimTime::ZERO,
            SimTime::from_hours(10),
        );
        assert_eq!(w.revocation_times.len(), 0);
        assert_eq!(w.proactive, 1);
        assert_eq!(w.returns, 1);
        // The VM sits on od during the spike: cost equals the od fail-over
        // walk.
        let base = walk_pool(&traces[0], 0.07, None, SimTime::ZERO, SimTime::from_hours(10));
        assert!((w.cost_dollars - base.cost_dollars).abs() < 1e-9);
    }

    #[test]
    fn one_pool_report_shape() {
        let traces = mini_traces();
        let r = run_policy(&traces, &exp(MappingPolicy::OneM, MechanismKind::SpotCheckLazy));
        assert_eq!(r.pools.len(), 1);
        assert_eq!(r.pools[0].concurrency, 40);
        assert_eq!(r.revocations_per_vm, 1.0);
        assert!(r.unavailability_pct > 0.0);
        assert!(r.availability_pct < 100.0);
        // Cost includes the $0.007 backup amortization.
        assert!(r.avg_cost_per_vm_hr > 0.014);
        assert!(r.avg_cost_per_vm_hr < 0.07, "cost={}", r.avg_cost_per_vm_hr);
    }

    #[test]
    fn live_mechanism_has_zero_downtime_and_no_backup_cost() {
        let traces = mini_traces();
        let live = run_policy(&traces, &exp(MappingPolicy::OneM, MechanismKind::XenLive));
        let lazy = run_policy(&traces, &exp(MappingPolicy::OneM, MechanismKind::SpotCheckLazy));
        assert_eq!(live.unavailability_pct, 0.0);
        assert!(live.avg_cost_per_vm_hr < lazy.avg_cost_per_vm_hr);
    }

    #[test]
    fn mechanism_downtime_ordering_holds_in_reports() {
        let traces = mini_traces();
        let yank = run_policy(&traces, &exp(MappingPolicy::TwoML, MechanismKind::UnoptimizedFull));
        let full = run_policy(&traces, &exp(MappingPolicy::TwoML, MechanismKind::SpotCheckFull));
        let lazy = run_policy(&traces, &exp(MappingPolicy::TwoML, MechanismKind::SpotCheckLazy));
        assert!(yank.unavailability_pct > full.unavailability_pct);
        assert!(full.unavailability_pct > lazy.unavailability_pct);
        // Lazy trades downtime for degradation.
        assert!(lazy.degradation_pct > full.degradation_pct);
    }

    #[test]
    fn storm_stats_distinguish_pool_counts() {
        let traces = mini_traces();
        let one = run_policy(&traces, &exp(MappingPolicy::OneM, MechanismKind::SpotCheckLazy));
        let two = run_policy(&traces, &exp(MappingPolicy::TwoML, MechanismKind::SpotCheckLazy));
        // 1P: the single revocation is a full-N storm.
        assert!(one.storms.p_full() > 0.0);
        // 2P: medium and large never spike in the same 5-min interval here,
        // so no full storms — only N/2 events.
        assert_eq!(two.storms.p_full(), 0.0);
        let half = two.storms.buckets[1].1;
        assert!(half > 0.0);
    }

    #[test]
    fn four_pool_spreads_weights() {
        let traces = mini_traces();
        let r = run_policy(&traces, &exp(MappingPolicy::FourEd, MechanismKind::SpotCheckLazy));
        assert_eq!(r.pools.len(), 4);
        for p in &r.pools {
            assert_eq!(p.weight, 0.25);
            assert_eq!(p.concurrency, 10);
        }
    }

    #[test]
    fn standard_traces_cover_the_m3_family() {
        let ts = standard_traces("us-east-1a", SimDuration::from_days(2), 3);
        assert_eq!(ts.len(), 4);
        assert!(ts.iter().all(|t| t.prices.len() > 10));
    }
}
