//! Structured event journal of the controller's internal activity.
//!
//! Every subsystem of the [`crate::controller`] records compact typed
//! entries here as it works: state transitions (VM status, migration
//! phase, return phase), effects emitted on the effect bus (host
//! acquisitions, ENI/volume attaches and detaches, terminations,
//! scheduled events), retries, faults, and cloud-operation deliveries.
//! Each entry carries the simulation time and the subsystem that produced
//! it, so a run can be replayed *semantically* after the fact — which
//! migration stalled, which market's retries exploded, which crash lost a
//! VM — without re-running the simulation under a debugger.
//!
//! The journal is always on. Exact [`JournalCounters`] are maintained for
//! every record kind regardless of volume; the record list itself is
//! capped (default 65 536 entries) so month-scale experiments cannot
//! accumulate unbounded memory — entries past the cap are counted in
//! [`Journal::dropped`] but not stored.
//!
//! Records serialize to JSON via [`Journal::to_json`] (hand-rolled, no
//! external dependencies) for the bench harness's `--journal` dump and the
//! CI schema check.

use spotcheck_cloudsim::ids::InstanceId;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::time::SimTime;

use crate::types::MigrationId;

/// Which controller subsystem produced a journal entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subsystem {
    /// The top-level dispatcher (bootstrap, customer API, price routing).
    Controller,
    /// Host/spare pool management.
    Pools,
    /// VM provisioning and placement.
    Provision,
    /// The bounded-time migration state machine.
    Migration,
    /// Backup assignment and re-replication.
    Replication,
    /// Crash taxonomy, forced termination, and revocation warnings.
    Recovery,
    /// Return-to-spot live migrations.
    Returns,
}

impl Subsystem {
    /// Stable lowercase name (used in JSON and queries).
    pub fn as_str(self) -> &'static str {
        match self {
            Subsystem::Controller => "controller",
            Subsystem::Pools => "pools",
            Subsystem::Provision => "provision",
            Subsystem::Migration => "migration",
            Subsystem::Replication => "replication",
            Subsystem::Recovery => "recovery",
            Subsystem::Returns => "returns",
        }
    }
}

/// A typed side effect emitted by a subsystem onto the effect bus.
///
/// Effects are the only way subsystems touch the platform or the event
/// queue: the bus executes each one synchronously (preserving the exact
/// platform call order, which seeded latency draws depend on) and records
/// it here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// A spot host was requested (boot in flight).
    AcquireSpot {
        /// The new instance.
        instance: InstanceId,
    },
    /// An on-demand host was requested (boot in flight).
    AcquireOnDemand {
        /// The new instance.
        instance: InstanceId,
    },
    /// An ENI attach was issued against `instance`.
    AttachEni {
        /// The target instance.
        instance: InstanceId,
    },
    /// A volume attach was issued against `instance`.
    AttachVolume {
        /// The target instance.
        instance: InstanceId,
    },
    /// An ENI detach was issued.
    DetachEni,
    /// A volume detach was issued.
    DetachVolume,
    /// A termination was issued for `instance`.
    Terminate {
        /// The doomed instance.
        instance: InstanceId,
    },
    /// The platform's forced termination of `instance` was executed.
    ForceTerminate {
        /// The revoked instance.
        instance: InstanceId,
    },
    /// A follow-up event was scheduled on the outbox.
    Schedule {
        /// The event kind (see [`crate::events::Event::kind`]).
        event: &'static str,
    },
}

impl Effect {
    /// Stable lowercase name of the effect variant.
    pub fn kind(self) -> &'static str {
        match self {
            Effect::AcquireSpot { .. } => "acquire_spot",
            Effect::AcquireOnDemand { .. } => "acquire_on_demand",
            Effect::AttachEni { .. } => "attach_eni",
            Effect::AttachVolume { .. } => "attach_volume",
            Effect::DetachEni => "detach_eni",
            Effect::DetachVolume => "detach_volume",
            Effect::Terminate { .. } => "terminate",
            Effect::ForceTerminate { .. } => "force_terminate",
            Effect::Schedule { .. } => "schedule",
        }
    }
}

/// One typed journal record.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A VM's lifecycle status changed.
    VmStatus {
        /// The VM.
        vm: NestedVmId,
        /// Previous status name.
        from: &'static str,
        /// New status name.
        to: &'static str,
    },
    /// A migration began.
    MigStarted {
        /// The migration.
        mig: MigrationId,
        /// The VM being moved.
        vm: NestedVmId,
        /// True for live transfers.
        live: bool,
        /// True for proactive evacuations (no warning involved).
        proactive: bool,
    },
    /// A migration's state machine took a legal transition.
    MigPhase {
        /// The migration.
        mig: MigrationId,
        /// Previous phase name.
        from: &'static str,
        /// New phase name.
        to: &'static str,
    },
    /// A migration completed; the VM runs at its destination.
    MigCompleted {
        /// The migration.
        mig: MigrationId,
        /// The VM.
        vm: NestedVmId,
    },
    /// A migration aborted because the VM's memory was unrecoverable.
    MigAborted {
        /// The migration.
        mig: MigrationId,
        /// The lost VM.
        vm: NestedVmId,
    },
    /// An illegal migration transition was attempted (and refused).
    Illegal {
        /// The migration.
        mig: MigrationId,
        /// The phase it was in.
        from: &'static str,
        /// The refused transition.
        attempted: &'static str,
    },
    /// A return-to-spot live migration began.
    ReturnStarted {
        /// The returning VM.
        vm: NestedVmId,
    },
    /// A return's phase advanced.
    ReturnPhase {
        /// The returning VM.
        vm: NestedVmId,
        /// Previous phase name.
        from: &'static str,
        /// New phase name.
        to: &'static str,
    },
    /// A return completed; the VM is back on spot.
    ReturnCompleted {
        /// The VM.
        vm: NestedVmId,
    },
    /// A return was abandoned (market moved, or the source died).
    ReturnAbandoned {
        /// The VM (still on its on-demand host).
        vm: NestedVmId,
    },
    /// An effect executed on the effect bus.
    Effect(Effect),
    /// A retry was scheduled.
    Retry {
        /// What is being retried ("provision", "terminate", "dest").
        what: &'static str,
        /// Attempt number (1-based).
        attempt: u32,
    },
    /// An injected platform fault was delivered.
    Fault {
        /// The fault kind name.
        kind: &'static str,
        /// Revocation warnings it produced.
        warnings: u32,
        /// Instance crashes it produced.
        crashes: u32,
    },
    /// A revocation warning hit a host.
    Warning {
        /// The doomed instance.
        instance: InstanceId,
    },
    /// An asynchronous cloud operation's completion was delivered.
    OpDelivered {
        /// The semantic purpose of the operation.
        purpose: &'static str,
        /// The notification (or error) it resolved to.
        outcome: &'static str,
    },
    /// A backup server was assigned to protect a VM.
    BackupAssigned {
        /// The protected VM.
        vm: NestedVmId,
    },
    /// A backup server failed, orphaning its VMs.
    BackupFailed {
        /// VMs left without a complete checkpoint.
        orphans: u32,
    },
    /// A backup server acknowledged a complete checkpoint.
    CheckpointAcked {
        /// The protected VM.
        vm: NestedVmId,
    },
    /// A re-replication push to a replacement backup began.
    RereplicationStarted {
        /// The VM being re-protected.
        vm: NestedVmId,
        /// The guarding epoch.
        epoch: u32,
    },
    /// A re-replication push completed and was current.
    RereplicationDone {
        /// The re-protected VM.
        vm: NestedVmId,
        /// The epoch that landed.
        epoch: u32,
    },
    /// A crashed VM began restoring from its backup checkpoint.
    CrashRecovery {
        /// The VM.
        vm: NestedVmId,
        /// The recovery migration.
        mig: MigrationId,
    },
    /// A VM was lost unrecoverably.
    VmLost {
        /// The VM.
        vm: NestedVmId,
    },
    /// The 30 s migration guarantee was violated: the dirty residue did not
    /// reach the backup before the platform's forced termination.
    DeadlineViolation {
        /// The migration whose bound broke.
        mig: MigrationId,
        /// The VM.
        vm: NestedVmId,
        /// Why: "contention" (the commit flow was still transferring),
        /// "queue_wait" (admission staging delayed the commit past its
        /// deadline), or "residue_lost" (the host died with the commit
        /// still in flight).
        cause: &'static str,
    },
    /// Graceful degradation: the bound provably could not hold, so the VM
    /// fell back to Yank-style pause-and-flush (downtime charged to
    /// availability).
    FallbackYank {
        /// The migration.
        mig: MigrationId,
        /// The VM.
        vm: NestedVmId,
    },
    /// Admission control staged a final commit behind the concurrency cap.
    CommitQueued {
        /// The migration.
        mig: MigrationId,
        /// The VM.
        vm: NestedVmId,
    },
    /// A staged final commit was admitted and its flow launched.
    CommitAdmitted {
        /// The migration.
        mig: MigrationId,
        /// The VM.
        vm: NestedVmId,
        /// Milliseconds spent waiting in the admission queue.
        waited_ms: u64,
    },
    /// An external command was injected into the engine (the daemon's
    /// socket API). These records make the journal a complete replay tail:
    /// cold start = snapshot + re-apply every journaled command after it.
    Command {
        /// Dense position in the engine's command log.
        seq: u64,
        /// The command kind (see `crate::engine::Command::kind`).
        cmd: &'static str,
        /// First encoded argument.
        a: u64,
        /// Second encoded argument.
        b: u64,
        /// Third encoded argument.
        c: u64,
    },
}

impl Record {
    /// Stable lowercase name of the record variant.
    pub fn kind(&self) -> &'static str {
        match self {
            Record::VmStatus { .. } => "vm_status",
            Record::MigStarted { .. } => "mig_started",
            Record::MigPhase { .. } => "mig_phase",
            Record::MigCompleted { .. } => "mig_completed",
            Record::MigAborted { .. } => "mig_aborted",
            Record::Illegal { .. } => "illegal_transition",
            Record::ReturnStarted { .. } => "return_started",
            Record::ReturnPhase { .. } => "return_phase",
            Record::ReturnCompleted { .. } => "return_completed",
            Record::ReturnAbandoned { .. } => "return_abandoned",
            Record::Effect(e) => e.kind(),
            Record::Retry { .. } => "retry",
            Record::Fault { .. } => "fault",
            Record::Warning { .. } => "warning",
            Record::OpDelivered { .. } => "op_delivered",
            Record::BackupAssigned { .. } => "backup_assigned",
            Record::BackupFailed { .. } => "backup_failed",
            Record::CheckpointAcked { .. } => "checkpoint_acked",
            Record::RereplicationStarted { .. } => "rereplication_started",
            Record::RereplicationDone { .. } => "rereplication_done",
            Record::CrashRecovery { .. } => "crash_recovery",
            Record::VmLost { .. } => "vm_lost",
            Record::DeadlineViolation { .. } => "deadline_violation",
            Record::FallbackYank { .. } => "fallback_yank",
            Record::CommitQueued { .. } => "commit_queued",
            Record::CommitAdmitted { .. } => "commit_admitted",
            Record::Command { .. } => "command",
        }
    }

    /// Appends this record's detail fields as JSON object members.
    fn write_json_fields(&self, s: &mut String) {
        use std::fmt::Write as _;
        match self {
            Record::VmStatus { vm, from, to } => {
                let _ = write!(s, r#", "vm": {}, "from": "{from}", "to": "{to}""#, vm.0);
            }
            Record::MigStarted { mig, vm, live, proactive } => {
                let _ = write!(
                    s,
                    r#", "mig": {}, "vm": {}, "live": {live}, "proactive": {proactive}"#,
                    mig.0, vm.0
                );
            }
            Record::MigPhase { mig, from, to } => {
                let _ = write!(s, r#", "mig": {}, "from": "{from}", "to": "{to}""#, mig.0);
            }
            Record::MigCompleted { mig, vm } | Record::MigAborted { mig, vm } => {
                let _ = write!(s, r#", "mig": {}, "vm": {}"#, mig.0, vm.0);
            }
            Record::Illegal { mig, from, attempted } => {
                let _ = write!(
                    s,
                    r#", "mig": {}, "from": "{from}", "attempted": "{attempted}""#,
                    mig.0
                );
            }
            Record::ReturnStarted { vm }
            | Record::ReturnCompleted { vm }
            | Record::ReturnAbandoned { vm } => {
                let _ = write!(s, r#", "vm": {}"#, vm.0);
            }
            Record::ReturnPhase { vm, from, to } => {
                let _ = write!(s, r#", "vm": {}, "from": "{from}", "to": "{to}""#, vm.0);
            }
            Record::Effect(e) => match e {
                Effect::AcquireSpot { instance }
                | Effect::AcquireOnDemand { instance }
                | Effect::AttachEni { instance }
                | Effect::AttachVolume { instance }
                | Effect::Terminate { instance }
                | Effect::ForceTerminate { instance } => {
                    let _ = write!(s, r#", "instance": {}"#, instance.0);
                }
                Effect::DetachEni | Effect::DetachVolume => {}
                Effect::Schedule { event } => {
                    let _ = write!(s, r#", "event": "{event}""#);
                }
            },
            Record::Retry { what, attempt } => {
                let _ = write!(s, r#", "what": "{what}", "attempt": {attempt}"#);
            }
            Record::Fault { kind, warnings, crashes } => {
                let _ = write!(
                    s,
                    r#", "fault": "{kind}", "warnings": {warnings}, "crashes": {crashes}"#
                );
            }
            Record::Warning { instance } => {
                let _ = write!(s, r#", "instance": {}"#, instance.0);
            }
            Record::OpDelivered { purpose, outcome } => {
                let _ = write!(s, r#", "purpose": "{purpose}", "outcome": "{outcome}""#);
            }
            Record::BackupAssigned { vm }
            | Record::CheckpointAcked { vm }
            | Record::VmLost { vm } => {
                let _ = write!(s, r#", "vm": {}"#, vm.0);
            }
            Record::BackupFailed { orphans } => {
                let _ = write!(s, r#", "orphans": {orphans}"#);
            }
            Record::RereplicationStarted { vm, epoch }
            | Record::RereplicationDone { vm, epoch } => {
                let _ = write!(s, r#", "vm": {}, "epoch": {epoch}"#, vm.0);
            }
            Record::CrashRecovery { vm, mig } => {
                let _ = write!(s, r#", "vm": {}, "mig": {}"#, vm.0, mig.0);
            }
            Record::DeadlineViolation { mig, vm, cause } => {
                let _ = write!(s, r#", "mig": {}, "vm": {}, "cause": "{cause}""#, mig.0, vm.0);
            }
            Record::FallbackYank { mig, vm } | Record::CommitQueued { mig, vm } => {
                let _ = write!(s, r#", "mig": {}, "vm": {}"#, mig.0, vm.0);
            }
            Record::CommitAdmitted { mig, vm, waited_ms } => {
                let _ = write!(
                    s,
                    r#", "mig": {}, "vm": {}, "waited_ms": {waited_ms}"#,
                    mig.0, vm.0
                );
            }
            Record::Command { seq, cmd, a, b, c } => {
                let _ = write!(
                    s,
                    r#", "seq": {seq}, "cmd": "{cmd}", "a": {a}, "b": {b}, "c": {c}"#
                );
            }
        }
    }
}

/// One journal entry: a timestamped, subsystem-tagged [`Record`].
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// When the record was produced.
    pub at: SimTime,
    /// The subsystem that produced it.
    pub subsystem: Subsystem,
    /// The typed record.
    pub record: Record,
}

impl Entry {
    /// Appends this entry as a single-line JSON object (no surrounding
    /// whitespace, no trailing newline). With `shard`, a `"shard"` member
    /// follows `"t"` (the sharded fleet's merged-dump format).
    ///
    /// This is the one rendering used everywhere an entry serializes: the
    /// in-memory dumps ([`Journal::to_json`], [`Journal::merged_json`])
    /// and the JSONL spill sink, so the sink's lines are always parseable
    /// as dump entries.
    pub fn write_json_object(&self, s: &mut String, shard: Option<u16>) {
        use std::fmt::Write as _;
        let _ = write!(s, "{{\"t\": {:.6}", self.at.as_secs_f64());
        if let Some(id) = shard {
            let _ = write!(s, ", \"shard\": {id}");
        }
        let _ = write!(
            s,
            ", \"subsystem\": \"{}\", \"kind\": \"{}\"",
            self.subsystem.as_str(),
            self.record.kind()
        );
        self.record.write_json_fields(s);
        s.push('}');
    }
}

/// Exact counters over every record ever journaled (never capped).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // Field names are the documentation.
pub struct JournalCounters {
    pub effects: u64,
    pub schedules: u64,
    pub spot_requests: u64,
    pub on_demand_requests: u64,
    pub attaches: u64,
    pub detaches: u64,
    pub terminates: u64,
    pub vm_transitions: u64,
    pub mig_transitions: u64,
    pub migrations_started: u64,
    pub migrations_completed: u64,
    pub migrations_aborted: u64,
    pub illegal_transitions: u64,
    pub returns_started: u64,
    pub returns_completed: u64,
    pub returns_abandoned: u64,
    pub return_transitions: u64,
    pub retries: u64,
    pub faults: u64,
    pub revocation_warnings: u64,
    pub ops_delivered: u64,
    pub backups_assigned: u64,
    pub backup_failures: u64,
    pub checkpoints_acked: u64,
    pub rereplications_started: u64,
    pub rereplications_completed: u64,
    pub crash_recoveries: u64,
    pub vms_lost: u64,
    pub deadline_violations: u64,
    pub violations_contention: u64,
    pub violations_queue_wait: u64,
    pub violations_residue_lost: u64,
    pub fallback_yanks: u64,
    pub commits_queued: u64,
    pub commit_queue_wait_ms: u64,
    pub commands: u64,
}

impl JournalCounters {
    /// Every counter as a stable `(name, value)` list (JSON/report order).
    pub fn pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("effects", self.effects),
            ("schedules", self.schedules),
            ("spot_requests", self.spot_requests),
            ("on_demand_requests", self.on_demand_requests),
            ("attaches", self.attaches),
            ("detaches", self.detaches),
            ("terminates", self.terminates),
            ("vm_transitions", self.vm_transitions),
            ("mig_transitions", self.mig_transitions),
            ("migrations_started", self.migrations_started),
            ("migrations_completed", self.migrations_completed),
            ("migrations_aborted", self.migrations_aborted),
            ("illegal_transitions", self.illegal_transitions),
            ("returns_started", self.returns_started),
            ("returns_completed", self.returns_completed),
            ("returns_abandoned", self.returns_abandoned),
            ("return_transitions", self.return_transitions),
            ("retries", self.retries),
            ("faults", self.faults),
            ("revocation_warnings", self.revocation_warnings),
            ("ops_delivered", self.ops_delivered),
            ("backups_assigned", self.backups_assigned),
            ("backup_failures", self.backup_failures),
            ("checkpoints_acked", self.checkpoints_acked),
            ("rereplications_started", self.rereplications_started),
            ("rereplications_completed", self.rereplications_completed),
            ("crash_recoveries", self.crash_recoveries),
            ("vms_lost", self.vms_lost),
            ("deadline_violations", self.deadline_violations),
            ("violations_contention", self.violations_contention),
            ("violations_queue_wait", self.violations_queue_wait),
            ("violations_residue_lost", self.violations_residue_lost),
            ("fallback_yanks", self.fallback_yanks),
            ("commits_queued", self.commits_queued),
            ("commit_queue_wait_ms", self.commit_queue_wait_ms),
            ("commands", self.commands),
        ]
    }

    fn count(&mut self, record: &Record) {
        match record {
            Record::VmStatus { .. } => self.vm_transitions += 1,
            Record::MigStarted { .. } => self.migrations_started += 1,
            Record::MigPhase { .. } => self.mig_transitions += 1,
            Record::MigCompleted { .. } => self.migrations_completed += 1,
            Record::MigAborted { .. } => self.migrations_aborted += 1,
            Record::Illegal { .. } => self.illegal_transitions += 1,
            Record::ReturnStarted { .. } => self.returns_started += 1,
            Record::ReturnPhase { .. } => self.return_transitions += 1,
            Record::ReturnCompleted { .. } => self.returns_completed += 1,
            Record::ReturnAbandoned { .. } => self.returns_abandoned += 1,
            Record::Effect(e) => {
                self.effects += 1;
                match e {
                    Effect::AcquireSpot { .. } => self.spot_requests += 1,
                    Effect::AcquireOnDemand { .. } => self.on_demand_requests += 1,
                    Effect::AttachEni { .. } | Effect::AttachVolume { .. } => self.attaches += 1,
                    Effect::DetachEni | Effect::DetachVolume => self.detaches += 1,
                    Effect::Terminate { .. } | Effect::ForceTerminate { .. } => {
                        self.terminates += 1
                    }
                    Effect::Schedule { .. } => self.schedules += 1,
                }
            }
            Record::Retry { .. } => self.retries += 1,
            Record::Fault { .. } => self.faults += 1,
            Record::Warning { .. } => self.revocation_warnings += 1,
            Record::OpDelivered { .. } => self.ops_delivered += 1,
            Record::BackupAssigned { .. } => self.backups_assigned += 1,
            Record::BackupFailed { .. } => self.backup_failures += 1,
            Record::CheckpointAcked { .. } => self.checkpoints_acked += 1,
            Record::RereplicationStarted { .. } => self.rereplications_started += 1,
            Record::RereplicationDone { .. } => self.rereplications_completed += 1,
            Record::CrashRecovery { .. } => self.crash_recoveries += 1,
            Record::VmLost { .. } => self.vms_lost += 1,
            Record::DeadlineViolation { cause, .. } => {
                self.deadline_violations += 1;
                match *cause {
                    "contention" => self.violations_contention += 1,
                    "queue_wait" => self.violations_queue_wait += 1,
                    _ => self.violations_residue_lost += 1,
                }
            }
            Record::FallbackYank { .. } => self.fallback_yanks += 1,
            Record::CommitQueued { .. } => self.commits_queued += 1,
            Record::CommitAdmitted { waited_ms, .. } => self.commit_queue_wait_ms += waited_ms,
            Record::Command { .. } => self.commands += 1,
        }
    }
}

/// Per-run summary of 30 s-guarantee violations, derived from the exact
/// [`JournalCounters`] (never affected by the record cap).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ViolationReport {
    /// Warned migrations started (the guarantee's denominator).
    pub migrations_started: u64,
    /// Total deadline violations.
    pub violations: u64,
    /// Violations where the commit flow was still transferring at the
    /// deadline (pure bandwidth contention).
    pub contention: u64,
    /// Violations where admission staging delayed the commit past its
    /// deadline.
    pub queue_wait: u64,
    /// Violations where the host died with the commit still in flight
    /// (dirty residue lost; recovery falls back to the last complete
    /// checkpoint).
    pub residue_lost: u64,
    /// Graceful-degradation fallbacks to Yank-style pause-and-flush.
    pub fallback_yanks: u64,
    /// Final commits staged behind the admission cap.
    pub commits_queued: u64,
    /// Total milliseconds commits spent in the admission queue.
    pub queue_wait_ms: u64,
}

impl ViolationReport {
    /// Builds the report from a run's counters.
    pub fn from_counters(c: &JournalCounters) -> Self {
        ViolationReport {
            migrations_started: c.migrations_started,
            violations: c.deadline_violations,
            contention: c.violations_contention,
            queue_wait: c.violations_queue_wait,
            residue_lost: c.violations_residue_lost,
            fallback_yanks: c.fallback_yanks,
            commits_queued: c.commits_queued,
            queue_wait_ms: c.commit_queue_wait_ms,
        }
    }

    /// Fraction of started migrations that violated the bound (0 when no
    /// migration started).
    pub fn violation_rate(&self) -> f64 {
        if self.migrations_started == 0 {
            0.0
        } else {
            self.violations as f64 / self.migrations_started as f64
        }
    }
}

/// Default cap on stored records (counters are always exact).
pub const DEFAULT_RECORD_CAP: usize = 65_536;

/// An open JSONL spill sink.
struct JournalSink {
    writer: std::io::BufWriter<std::fs::File>,
    /// Failed line writes (the journal itself never errors; losses are
    /// counted and surfaced instead).
    errors: u64,
}

impl JournalSink {
    fn write_entry(&mut self, entry: &Entry) -> bool {
        use std::io::Write as _;
        let mut line = String::with_capacity(96);
        entry.write_json_object(&mut line, None);
        line.push('\n');
        match self.writer.write_all(line.as_bytes()) {
            Ok(()) => true,
            Err(_) => {
                self.errors += 1;
                false
            }
        }
    }
}

/// The structured event journal.
pub struct Journal {
    entries: Vec<Entry>,
    counters: JournalCounters,
    cap: usize,
    dropped: u64,
    /// Records that exceeded the in-memory cap but were preserved by the
    /// spill sink (disjoint from `dropped`: a record is either stored,
    /// spilled, or dropped).
    spilled: u64,
    sink: Option<JournalSink>,
}

// The sink holds an open file handle, so `Clone` (used by differential
// harnesses to duplicate in-memory journals) yields a sink-less copy, and
// `Debug` elides the writer.
impl Clone for Journal {
    fn clone(&self) -> Self {
        Journal {
            entries: self.entries.clone(),
            counters: self.counters,
            cap: self.cap,
            dropped: self.dropped,
            spilled: self.spilled,
            sink: None,
        }
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("entries", &self.entries.len())
            .field("counters", &self.counters)
            .field("cap", &self.cap)
            .field("dropped", &self.dropped)
            .field("spilled", &self.spilled)
            .field("sink", &self.sink.is_some())
            .finish()
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl Journal {
    /// Creates an empty journal with the default record cap.
    pub fn new() -> Self {
        Journal {
            entries: Vec::new(),
            counters: JournalCounters::default(),
            cap: DEFAULT_RECORD_CAP,
            dropped: 0,
            spilled: 0,
            sink: None,
        }
    }

    /// Creates an empty journal storing at most `cap` records.
    pub fn with_cap(cap: usize) -> Self {
        Journal {
            cap,
            ..Journal::new()
        }
    }

    /// Opens (creating or truncating) a JSONL spill sink at `path`.
    ///
    /// Every record from here on is appended to the file as one JSON line
    /// — including records past the in-memory cap, which makes the on-disk
    /// journal complete for long-running replay where the ring alone would
    /// be lossy. Records already stored in memory are backfilled first, so
    /// a sink opened before any record was dropped captures the entire
    /// run from t=0.
    ///
    /// # Errors
    ///
    /// Fails if the file cannot be created. Later per-line write failures
    /// never panic or error the simulation; they are counted in
    /// [`Journal::sink_errors`].
    pub fn set_sink(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut sink = JournalSink {
            writer: std::io::BufWriter::new(file),
            errors: 0,
        };
        for e in &self.entries {
            sink.write_entry(e);
        }
        self.sink = Some(sink);
        Ok(())
    }

    /// Flushes the spill sink, if one is open (graceful-shutdown path).
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn flush_sink(&mut self) -> std::io::Result<()> {
        use std::io::Write as _;
        match &mut self.sink {
            Some(s) => s.writer.flush(),
            None => Ok(()),
        }
    }

    /// True if a spill sink is currently open.
    pub fn has_sink(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends a record (counters always update; storage respects the cap;
    /// an open sink receives every record).
    pub fn record(&mut self, at: SimTime, subsystem: Subsystem, record: Record) {
        self.counters.count(&record);
        let entry = Entry {
            at,
            subsystem,
            record,
        };
        let written = match &mut self.sink {
            Some(s) => s.write_entry(&entry),
            None => false,
        };
        if self.entries.len() < self.cap {
            self.entries.push(entry);
        } else if written {
            self.spilled += 1;
        } else {
            self.dropped += 1;
        }
    }

    /// The stored entries, in record order (earliest first).
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing has been stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Records counted but not stored because the cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records past the in-memory cap that the spill sink preserved.
    pub fn spilled(&self) -> u64 {
        self.spilled
    }

    /// Sink line writes that failed (those records count as dropped).
    pub fn sink_errors(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.errors)
    }

    /// Exact counters over every record ever journaled.
    pub fn counters(&self) -> &JournalCounters {
        &self.counters
    }

    /// Summary of 30 s-guarantee violations (exact, cap-independent).
    pub fn violation_report(&self) -> ViolationReport {
        ViolationReport::from_counters(&self.counters)
    }

    /// Stored entries produced by `subsystem`.
    pub fn of_subsystem(&self, subsystem: Subsystem) -> impl Iterator<Item = &Entry> {
        self.entries.iter().filter(move |e| e.subsystem == subsystem)
    }

    /// Stored entries whose record kind equals `kind`.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a Entry> {
        self.entries.iter().filter(move |e| e.record.kind() == kind)
    }

    /// Serializes the journal (counters, drop count, stored entries) as a
    /// JSON object. Times are fractional seconds since simulation start.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(64 + self.entries.len() * 96);
        s.push_str("{\n  \"counters\": {");
        let pairs = self.counters.pairs();
        for (i, (k, v)) in pairs.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{k}\": {v}");
        }
        s.push_str("\n  },\n");
        let _ = writeln!(s, "  \"dropped\": {},", self.dropped);
        let _ = writeln!(s, "  \"spilled\": {},", self.spilled);
        s.push_str("  \"entries\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str("\n    ");
            e.write_json_object(&mut s, None);
        }
        s.push_str("\n  ]\n}\n");
        s
    }

    /// Serializes a fleet of per-shard journals as one JSON object with a
    /// deterministic merge: counters and drop counts are summed across
    /// shards, and entries are tagged `"shard": k` and ordered by
    /// `(t, shard, per-shard index)` — the same Lamport-style key the
    /// cross-shard message layer uses, so the merged stream is identical
    /// at any worker count.
    pub fn merged_json<'a>(shards: impl IntoIterator<Item = (u16, &'a Journal)>) -> String {
        use std::fmt::Write as _;
        let shards: Vec<(u16, &Journal)> = shards.into_iter().collect();
        // Counters sum positionally over the stable `pairs()` order, so a
        // future counter is merged automatically the day it is added.
        let mut counters: Vec<(&'static str, u64)> = Vec::new();
        let mut dropped = 0u64;
        let mut spilled = 0u64;
        // (at, shard, per-shard index) is unique per entry and already the
        // merge order; each shard's entry slice is time-sorted, so a k-way
        // index walk would also do — a sort keeps the invariant explicit.
        let mut order: Vec<(SimTime, u16, usize)> = Vec::new();
        for &(id, j) in &shards {
            let pairs = j.counters().pairs();
            if counters.is_empty() {
                counters = pairs;
            } else {
                for (sum, (_, v)) in counters.iter_mut().zip(pairs) {
                    sum.1 += v;
                }
            }
            dropped += j.dropped();
            spilled += j.spilled();
            order.extend(j.entries().iter().enumerate().map(|(i, e)| (e.at, id, i)));
        }
        order.sort_unstable();
        let mut s = String::with_capacity(64 + order.len() * 96);
        s.push_str("{\n  \"shards\": [");
        for (i, (id, _)) in shards.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{id}");
        }
        s.push_str("],\n  \"counters\": {");
        for (i, (k, v)) in counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{k}\": {v}");
        }
        s.push_str("\n  },\n");
        let _ = writeln!(s, "  \"dropped\": {dropped},");
        let _ = writeln!(s, "  \"spilled\": {spilled},");
        s.push_str("  \"entries\": [");
        for (i, &(_, id, idx)) in order.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let j = shards
                .iter()
                .find(|(sid, _)| *sid == id)
                .expect("shard id came from this set")
                .1;
            let e = &j.entries()[idx];
            s.push_str("\n    ");
            e.write_json_object(&mut s, Some(id));
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_every_record() {
        let mut j = Journal::new();
        j.record(
            SimTime::from_secs(1),
            Subsystem::Migration,
            Record::MigStarted {
                mig: MigrationId(0),
                vm: NestedVmId(3),
                live: false,
                proactive: false,
            },
        );
        j.record(
            SimTime::from_secs(2),
            Subsystem::Migration,
            Record::Effect(Effect::AcquireOnDemand {
                instance: InstanceId(7),
            }),
        );
        assert_eq!(j.counters().migrations_started, 1);
        assert_eq!(j.counters().on_demand_requests, 1);
        assert_eq!(j.counters().effects, 1);
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn cap_bounds_storage_but_not_counters() {
        let mut j = Journal::with_cap(2);
        for i in 0..5 {
            j.record(
                SimTime::from_secs(i),
                Subsystem::Pools,
                Record::Effect(Effect::DetachEni),
            );
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        assert_eq!(j.counters().detaches, 5);
    }

    #[test]
    fn json_shape_is_balanced_and_typed() {
        let mut j = Journal::new();
        j.record(
            SimTime::from_millis(1_500),
            Subsystem::Recovery,
            Record::Fault {
                kind: "instance_crash",
                warnings: 0,
                crashes: 1,
            },
        );
        let json = j.to_json();
        assert!(json.contains("\"counters\""));
        assert!(json.contains("\"t\": 1.500000"));
        assert!(json.contains("\"subsystem\": \"recovery\""));
        assert!(json.contains("\"kind\": \"fault\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn violation_taxonomy_counts_by_cause() {
        let mut j = Journal::new();
        j.record(
            SimTime::ZERO,
            Subsystem::Migration,
            Record::MigStarted {
                mig: MigrationId(0),
                vm: NestedVmId(0),
                live: false,
                proactive: false,
            },
        );
        for (i, cause) in ["contention", "queue_wait", "residue_lost", "contention"]
            .iter()
            .enumerate()
        {
            j.record(
                SimTime::from_secs(i as u64),
                Subsystem::Migration,
                Record::DeadlineViolation {
                    mig: MigrationId(i as u64),
                    vm: NestedVmId(i as u64),
                    cause,
                },
            );
        }
        j.record(
            SimTime::ZERO,
            Subsystem::Migration,
            Record::FallbackYank {
                mig: MigrationId(9),
                vm: NestedVmId(9),
            },
        );
        j.record(
            SimTime::ZERO,
            Subsystem::Migration,
            Record::CommitQueued {
                mig: MigrationId(9),
                vm: NestedVmId(9),
            },
        );
        j.record(
            SimTime::ZERO,
            Subsystem::Migration,
            Record::CommitAdmitted {
                mig: MigrationId(9),
                vm: NestedVmId(9),
                waited_ms: 250,
            },
        );
        let r = j.violation_report();
        assert_eq!(r.violations, 4);
        assert_eq!(r.contention, 2);
        assert_eq!(r.queue_wait, 1);
        assert_eq!(r.residue_lost, 1);
        assert_eq!(r.fallback_yanks, 1);
        assert_eq!(r.commits_queued, 1);
        assert_eq!(r.queue_wait_ms, 250);
        assert_eq!(r.violation_rate(), 4.0);
        let json = j.to_json();
        assert!(json.contains(r#""cause": "queue_wait""#));
        assert!(json.contains(r#""waited_ms": 250"#));
        assert!(json.contains(r#""deadline_violations": 4"#));
    }

    #[test]
    fn queries_filter_by_subsystem_and_kind() {
        let mut j = Journal::new();
        j.record(
            SimTime::ZERO,
            Subsystem::Pools,
            Record::Effect(Effect::Terminate {
                instance: InstanceId(1),
            }),
        );
        j.record(
            SimTime::ZERO,
            Subsystem::Migration,
            Record::MigCompleted {
                mig: MigrationId(0),
                vm: NestedVmId(0),
            },
        );
        assert_eq!(j.of_subsystem(Subsystem::Pools).count(), 1);
        assert_eq!(j.of_kind("mig_completed").count(), 1);
        assert_eq!(j.of_kind("nope").count(), 0);
    }

    fn sink_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spotcheck-journal-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn sink_captures_every_record_past_the_cap() {
        let path = sink_path("spill");
        let mut j = Journal::with_cap(2);
        j.set_sink(&path).expect("create sink");
        for i in 0..5 {
            j.record(
                SimTime::from_secs(i),
                Subsystem::Pools,
                Record::Effect(Effect::DetachEni),
            );
        }
        j.flush_sink().expect("flush");
        assert_eq!(j.len(), 2);
        assert_eq!(j.spilled(), 3);
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.sink_errors(), 0);
        let text = std::fs::read_to_string(&path).expect("read sink");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"t\": {i}.000000, ")));
            assert!(line.contains("\"kind\": \"detach_eni\""));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sink_backfills_already_stored_entries() {
        let path = sink_path("backfill");
        let mut j = Journal::new();
        j.record(
            SimTime::from_secs(1),
            Subsystem::Pools,
            Record::Effect(Effect::DetachEni),
        );
        j.set_sink(&path).expect("create sink");
        j.record(
            SimTime::from_secs(2),
            Subsystem::Pools,
            Record::Effect(Effect::DetachEni),
        );
        j.flush_sink().expect("flush");
        let text = std::fs::read_to_string(&path).expect("read sink");
        assert_eq!(text.lines().count(), 2);
        // Sink lines are exactly the dump's entry objects.
        let dump = j.to_json();
        for line in text.lines() {
            assert!(dump.contains(line), "dump missing sink line: {line}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn clone_detaches_the_sink() {
        let path = sink_path("clone");
        let mut j = Journal::new();
        j.set_sink(&path).expect("create sink");
        let copy = j.clone();
        assert!(j.has_sink());
        assert!(!copy.has_sink());
        std::fs::remove_file(&path).ok();
    }
}
