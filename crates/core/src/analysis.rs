//! The cost and availability analysis of paper §4.4.
//!
//! The paper models a nested VM's expected cost as
//! `E(c) = (1 - p) * E(c_spot(t)) + p * c_od`, where `p` is the
//! probability the spot price exceeds the bid; with prices changing every
//! `T` time units the revocation rate is `R = p / T`, and each revocation
//! costs `D` seconds of downtime, so the downtime fraction is `D * p / T`.
//! This module implements those closed forms plus the empirical estimation
//! of `p` and `T` from a price trace, and cross-checks them against the
//! trace-driven simulator in the tests.

use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::trace::PriceTrace;

/// Inputs to the §4.4 closed-form model, estimated from a trace.
#[derive(Debug, Clone, Copy)]
pub struct MarketModel {
    /// `P(c_spot(t) > bid)`.
    pub p_revoke: f64,
    /// Expected spot price while at or below the bid, $/hr.
    pub e_spot_below_bid: f64,
    /// The equivalent on-demand price, $/hr.
    pub c_od: f64,
    /// Mean time between price changes, seconds.
    pub t_secs: f64,
}

impl MarketModel {
    /// Estimates the model from `trace` at `bid` over `[from, to)`.
    ///
    /// Returns `None` if the window is invalid for the trace.
    pub fn from_trace(
        trace: &PriceTrace,
        bid: f64,
        from: SimTime,
        to: SimTime,
    ) -> Option<MarketModel> {
        let availability = trace.availability_at_bid(bid, from, to)?;
        let p_revoke = 1.0 - availability;
        // E[spot | spot <= bid]: integrate min(spot, bid) and subtract the
        // above-bid mass, normalizing by the below-bid time.
        let mean_all = trace.mean_capped_price(bid, from, to)?;
        let e_spot_below_bid = if availability > 0.0 {
            (mean_all - p_revoke * bid) / availability
        } else {
            bid
        };
        // Mean time between price changes within the window.
        let mut changes = 0usize;
        let mut cursor = from;
        while let Some((t, _)) = trace.prices.next_change_after(cursor) {
            if t >= to {
                break;
            }
            changes += 1;
            cursor = t;
        }
        let window = to.since(from).as_secs_f64();
        let t_secs = if changes == 0 {
            window
        } else {
            window / changes as f64
        };
        Some(MarketModel {
            p_revoke,
            e_spot_below_bid,
            c_od: trace.on_demand_price,
            t_secs,
        })
    }

    /// `E(c) = (1 - p) * E(c_spot) + p * c_od`, $/hr (excluding backup).
    pub fn expected_cost(&self) -> f64 {
        (1.0 - self.p_revoke) * self.e_spot_below_bid + self.p_revoke * self.c_od
    }

    /// Revocation rate `R = p / T`, events per second.
    pub fn revocation_rate_per_sec(&self) -> f64 {
        self.p_revoke / self.t_secs
    }

    /// Expected downtime fraction `D * p / T` for per-revocation downtime
    /// `d`.
    pub fn downtime_fraction(&self, d: SimDuration) -> f64 {
        d.as_secs_f64() * self.revocation_rate_per_sec()
    }

    /// Availability as a percentage, given per-revocation downtime `d`.
    pub fn availability_pct(&self, d: SimDuration) -> f64 {
        (1.0 - self.downtime_fraction(d).min(1.0)) * 100.0
    }
}

/// The savings multiple vs. always-on-demand: `c_od / (E(c) + backup)`.
pub fn savings_factor(model: &MarketModel, backup_cost_per_hr: f64) -> f64 {
    model.c_od / (model.expected_cost() + backup_cost_per_hr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::series::StepSeries;
    use spotcheck_spotmarket::market::MarketId;

    /// od = 0.07; price 0.014 except above-bid spikes 10% of the time.
    fn trace() -> PriceTrace {
        let mut s = StepSeries::new();
        // 10 cycles of 1000 s: 900 s at 0.014, 100 s at 0.50.
        for i in 0..10u64 {
            s.push(SimTime::from_secs(i * 1_000), 0.014);
            s.push(SimTime::from_secs(i * 1_000 + 900), 0.50);
        }
        s.push(SimTime::from_secs(10_000), 0.014);
        PriceTrace::new(MarketId::new("m3.medium", "z"), 0.07, s)
    }

    fn model() -> MarketModel {
        MarketModel::from_trace(&trace(), 0.07, SimTime::ZERO, SimTime::from_secs(10_000))
            .unwrap()
    }

    #[test]
    fn p_and_e_spot_are_estimated() {
        let m = model();
        assert!((m.p_revoke - 0.1).abs() < 1e-9, "p={}", m.p_revoke);
        assert!((m.e_spot_below_bid - 0.014).abs() < 1e-9);
        assert_eq!(m.c_od, 0.07);
    }

    #[test]
    fn expected_cost_formula() {
        let m = model();
        // (0.9 * 0.014) + (0.1 * 0.07) = 0.0196.
        assert!((m.expected_cost() - 0.0196).abs() < 1e-9);
    }

    #[test]
    fn revocation_rate_and_downtime_fraction() {
        let m = model();
        // ~19 changes strictly inside the 10000 s window -> T ~ 526 s.
        assert!((450.0..600.0).contains(&m.t_secs), "T={}", m.t_secs);
        let r = m.revocation_rate_per_sec();
        assert!((r - m.p_revoke / m.t_secs).abs() < 1e-12);
        // 23 s downtime per revocation: fraction = 23 * p / T.
        let f = m.downtime_fraction(SimDuration::from_secs(23));
        assert!((f - 23.0 * r).abs() < 1e-12);
        let a = m.availability_pct(SimDuration::from_secs(23));
        assert!((a - (1.0 - f) * 100.0).abs() < 1e-9);
        assert!((99.0..100.0).contains(&a), "availability={a}");
    }

    #[test]
    fn savings_factor_near_5x_with_paper_numbers() {
        // The headline: E(c) ~ 0.008, backup 0.007 -> ~0.015 vs od 0.07.
        let m = MarketModel {
            p_revoke: 0.0005,
            e_spot_below_bid: 0.008,
            c_od: 0.07,
            t_secs: 300.0,
        };
        let s = savings_factor(&m, 0.007);
        assert!((4.2..5.2).contains(&s), "savings={s}");
    }

    #[test]
    fn closed_form_matches_trace_integration() {
        // The model's E(c) must equal the trace's capped mean (bid = od,
        // so revoked time is charged at od).
        let t = trace();
        let m = model();
        let capped = t
            .mean_capped_price(0.07, SimTime::ZERO, SimTime::from_secs(10_000))
            .unwrap();
        assert!((m.expected_cost() - capped).abs() < 1e-9);
    }

    #[test]
    fn degenerate_windows_return_none() {
        let t = trace();
        assert!(MarketModel::from_trace(&t, 0.07, SimTime::from_secs(5), SimTime::from_secs(5)).is_none());
    }
}
