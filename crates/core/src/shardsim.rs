//! Sharded fleet simulation: one [`Controller`] + platform per
//! availability-zone group, running over
//! [`spotcheck_simcore::shard::ShardedSim`] with deterministic
//! cross-shard message passing.
//!
//! # Shard topology
//!
//! The *logical* shard set is fixed by the scenario — one shard per AZ
//! group, each owning its own controller, cloud platform, spot markets,
//! backup pool, and nested VMs. The `--shards` knob on the experiments
//! CLI ([`spotcheck_simcore::shard::set_shard_workers`]) only chooses how
//! many worker threads execute those fixed shards, so output is
//! byte-identical at any setting.
//!
//! Fleet-wide aggregates (the free-slot placement index, anti-affinity
//! pressure, migration load) are per-shard state; shards learn about the
//! rest of the fleet only through explicit cross-shard messages
//! ([`FleetMsg`]): periodic [`FleetMsg::StatsReport`] gossip into a
//! coordinator shard, answered by a fleet-wide [`FleetMsg::Advisory`]
//! broadcast. Both legs travel at the cross-shard latency (the sharded
//! engine's lookahead), so every delivery is conservative and the whole
//! run replays bit-for-bit.

use std::collections::BTreeMap;

use spotcheck_cloudsim::cloud::{CloudConfig, CloudSim};
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::shard::{set_shard_workers, ShardCtx, ShardId, ShardWorld, ShardedSim};
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::trace::PriceTrace;
use spotcheck_workloads::WorkloadKind;

use crate::config::SpotCheckConfig;
use crate::controller::Controller;
use crate::events::Event;
use crate::journal::Journal;
use crate::types::CustomerId;

/// A shard-local event: a controller event or a step of the fleet script.
#[derive(Debug)]
pub enum ShardEvent {
    /// A controller/platform event, handled by this shard's controller.
    Core(Event),
    /// Ramp step: admit the next customer and request its VMs.
    RampBatch {
        /// Index of the customer to admit (shard-local).
        next: usize,
    },
    /// Churn step: release every Nth tracked VM.
    ChurnRelease,
    /// Churn step: request replacements for the churned VMs.
    ChurnReplace,
    /// Gossip step: report shard stats to the coordinator.
    GossipTick,
}

/// Per-shard aggregate snapshot carried by the stats gossip.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Nested VMs currently running.
    pub vms_running: u64,
    /// Hosts in the free-slot placement index (spare spot capacity).
    pub free_slot_hosts: u64,
    /// In-flight migrations.
    pub active_migrations: u64,
    /// Idle hot spares.
    pub idle_spares: u64,
}

impl ShardStats {
    fn add(&mut self, o: ShardStats) {
        self.vms_running += o.vms_running;
        self.free_slot_hosts += o.free_slot_hosts;
        self.active_migrations += o.active_migrations;
        self.idle_spares += o.idle_spares;
    }
}

/// The cross-shard message taxonomy of the sharded fleet.
#[derive(Debug, Clone, Copy)]
pub enum FleetMsg {
    /// A shard's periodic aggregate report to the coordinator (shard 0) —
    /// the explicit cross-shard query that replaces fleet-wide state.
    StatsReport {
        /// Gossip round the report belongs to.
        round: u64,
        /// The reporting shard's aggregates.
        stats: ShardStats,
    },
    /// The coordinator's fleet-wide aggregate broadcast once every shard
    /// has reported for a round.
    Advisory {
        /// Gossip round the advisory closes.
        round: u64,
        /// Fleet-wide sums over every shard's report.
        fleet: ShardStats,
    },
}

/// The scripted load a shard drives through its controller: ramp-up,
/// optional churn wave, gossip cadence.
#[derive(Debug, Clone)]
pub struct FleetScript {
    /// Customers this shard admits.
    pub customers: usize,
    /// VMs requested per customer.
    pub vms_per_customer: usize,
    /// Clock gap between customer admissions during ramp-up.
    pub ramp_gap: SimDuration,
    /// When the churn wave (release + replace) fires, if any.
    pub churn_at: Option<SimTime>,
    /// Every Nth tracked VM is churned (`0`/`1` churns all).
    pub churn_every: usize,
    /// Settle time between churn releases and replacement requests.
    pub churn_replace_delay: SimDuration,
    /// Workload of every requested VM.
    pub workload: WorkloadKind,
}

impl FleetScript {
    /// VMs this script requests during ramp-up.
    pub fn fleet_size(&self) -> usize {
        self.customers * self.vms_per_customer
    }
}

/// Everything needed to build one shard: its markets, configuration,
/// platform (with its per-shard fault plan and seed), and script.
pub struct FleetShardSpec {
    /// The shard's spot-market traces.
    pub traces: Vec<PriceTrace>,
    /// Controller configuration (per-shard seed).
    pub config: SpotCheckConfig,
    /// Platform configuration (per-shard seed + fault plan).
    pub cloud: CloudConfig,
    /// The load script this shard drives.
    pub script: FleetScript,
}

/// One AZ-group shard: a full controller + platform plus the script and
/// gossip state, implementing [`ShardWorld`].
pub struct FleetShard {
    controller: Controller,
    script: FleetScript,
    shard_count: u16,
    /// Cross-shard latency; equals the sharded engine's lookahead.
    latency: SimDuration,
    gossip_period: SimDuration,
    /// (customer, vm) per requested VM, in request order.
    tracked: Vec<(CustomerId, NestedVmId)>,
    /// Indices churned out, with their owning customer.
    churned: Vec<(usize, CustomerId)>,
    churn_count: usize,
    gossip_round: u64,
    /// Coordinator only: partial sums per open gossip round.
    round_acc: BTreeMap<u64, (u16, ShardStats)>,
    advisories_seen: u64,
    last_advisory: Option<ShardStats>,
    /// High-water mark of fleet-wide free-slot hosts seen in advisories.
    pub_peak_fleet_free_slots: u64,
}

impl FleetShard {
    fn stats(&self) -> ShardStats {
        ShardStats {
            vms_running: self
                .controller
                .status_counts()
                .get("running")
                .copied()
                .unwrap_or(0) as u64,
            free_slot_hosts: self.controller.free_slot_host_count() as u64,
            active_migrations: self.controller.active_migrations() as u64,
            idle_spares: self.controller.idle_spares() as u64,
        }
    }

    /// Schedules a controller outbox as shard-local events.
    fn sched_outbox(
        out: Vec<(SimTime, Event)>,
        ctx: &mut ShardCtx<'_, '_, ShardEvent, FleetMsg>,
    ) {
        for (t, e) in out {
            ctx.at(t, ShardEvent::Core(e));
        }
    }

    /// This shard's controller (reports, journal, diagnostics).
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// VMs requested by the script so far (including replacements).
    pub fn tracked_vms(&self) -> usize {
        self.tracked.len()
    }

    /// VMs churned out by the script's churn wave.
    pub fn churned_vms(&self) -> usize {
        self.churn_count
    }

    /// Fleet-wide advisories this shard has received.
    pub fn advisories_seen(&self) -> u64 {
        self.advisories_seen
    }

    /// The most recent fleet-wide advisory, if any arrived yet.
    pub fn last_advisory(&self) -> Option<ShardStats> {
        self.last_advisory
    }

    /// High-water mark of fleet-wide free-slot hosts across advisories.
    pub fn peak_fleet_free_slots(&self) -> u64 {
        self.pub_peak_fleet_free_slots
    }

    /// Gossip rounds this shard has reported.
    pub fn gossip_rounds(&self) -> u64 {
        self.gossip_round
    }
}

impl ShardWorld for FleetShard {
    type Event = ShardEvent;
    type Msg = FleetMsg;

    fn handle(
        &mut self,
        event: ShardEvent,
        ctx: &mut ShardCtx<'_, '_, ShardEvent, FleetMsg>,
    ) {
        let now = ctx.now();
        match event {
            ShardEvent::Core(e) => {
                let out = self.controller.handle_event(e, now);
                Self::sched_outbox(out, ctx);
            }
            ShardEvent::RampBatch { next } => {
                let customer = self.controller.create_customer();
                for _ in 0..self.script.vms_per_customer {
                    let (vm, out) = self
                        .controller
                        .request_server_opts(customer, self.script.workload, false, now)
                        .expect("script customer exists");
                    self.tracked.push((customer, vm));
                    Self::sched_outbox(out, ctx);
                }
                if next + 1 < self.script.customers {
                    ctx.at(now + self.script.ramp_gap, ShardEvent::RampBatch { next: next + 1 });
                }
            }
            ShardEvent::ChurnRelease => {
                let step = self.script.churn_every.max(1);
                for i in (0..self.tracked.len()).step_by(step) {
                    let (customer, vm) = self.tracked[i];
                    let out = self
                        .controller
                        .release_server(vm, now)
                        .expect("script VM is releasable");
                    Self::sched_outbox(out, ctx);
                    self.churned.push((i, customer));
                }
                self.churn_count = self.churned.len();
                ctx.at(now + self.script.churn_replace_delay, ShardEvent::ChurnReplace);
            }
            ShardEvent::ChurnReplace => {
                let churned = std::mem::take(&mut self.churned);
                for (i, customer) in churned {
                    let (vm, out) = self
                        .controller
                        .request_server_opts(customer, self.script.workload, false, now)
                        .expect("script customer exists");
                    self.tracked[i] = (customer, vm);
                    Self::sched_outbox(out, ctx);
                }
            }
            ShardEvent::GossipTick => {
                let stats = self.stats();
                let round = self.gossip_round;
                self.gossip_round += 1;
                ctx.send(
                    ShardId(0),
                    now + self.latency,
                    FleetMsg::StatsReport { round, stats },
                );
                ctx.after(self.gossip_period, ShardEvent::GossipTick);
            }
        }
    }

    fn on_message(
        &mut self,
        _src: ShardId,
        msg: FleetMsg,
        ctx: &mut ShardCtx<'_, '_, ShardEvent, FleetMsg>,
    ) {
        let now = ctx.now();
        match msg {
            FleetMsg::StatsReport { round, stats } => {
                debug_assert_eq!(ctx.shard(), ShardId(0), "reports route to the coordinator");
                let (seen, acc) = self.round_acc.entry(round).or_default();
                *seen += 1;
                acc.add(stats);
                if *seen == self.shard_count {
                    let fleet = *acc;
                    self.round_acc.remove(&round);
                    for dst in 0..self.shard_count {
                        ctx.send(
                            ShardId(dst),
                            now + self.latency,
                            FleetMsg::Advisory { round, fleet },
                        );
                    }
                }
            }
            FleetMsg::Advisory { round: _, fleet } => {
                self.advisories_seen += 1;
                self.pub_peak_fleet_free_slots =
                    self.pub_peak_fleet_free_slots.max(fleet.free_slot_hosts);
                self.last_advisory = Some(fleet);
            }
        }
    }
}

/// A sharded fleet deployment: per-AZ-group controllers over the
/// deterministic sharded engine.
///
/// # Examples
///
/// ```no_run
/// use spotcheck_core::config::SpotCheckConfig;
/// use spotcheck_core::shardsim::{FleetScript, FleetShardSpec, ShardedFleetSim};
/// use spotcheck_core::sim::standard_traces;
/// use spotcheck_cloudsim::cloud::CloudConfig;
/// use spotcheck_simcore::time::{SimDuration, SimTime};
/// use spotcheck_workloads::WorkloadKind;
///
/// let specs = (0..4)
///     .map(|s| FleetShardSpec {
///         traces: standard_traces(&format!("us-east-1{}", (b'a' + s) as char), SimDuration::from_days(7), 42 + s as u64),
///         config: SpotCheckConfig { seed: 42 + s as u64, ..SpotCheckConfig::default() },
///         cloud: CloudConfig { seed: 142 + s as u64, ..CloudConfig::default() },
///         script: FleetScript {
///             customers: 5,
///             vms_per_customer: 20,
///             ramp_gap: SimDuration::from_secs(300),
///             churn_at: None,
///             churn_every: 20,
///             churn_replace_delay: SimDuration::from_hours(1),
///             workload: WorkloadKind::TpcW,
///         },
///     })
///     .collect();
/// let mut sim = ShardedFleetSim::new(specs, SimDuration::from_secs(60), SimDuration::from_hours(6));
/// sim.run_until(SimTime::ZERO + SimDuration::from_days(7));
/// println!("{}", sim.merged_journal_json().len());
/// ```
pub struct ShardedFleetSim {
    sim: ShardedSim<FleetShard>,
}

impl ShardedFleetSim {
    /// Builds the sharded fleet: one shard per spec, cross-shard latency
    /// `latency` (which becomes the engine's conservative lookahead), and
    /// the given gossip cadence. Bootstraps every controller and schedules
    /// each shard's script at time zero.
    ///
    /// # Panics
    ///
    /// Panics if `specs` is empty or `latency` is zero.
    pub fn new(
        specs: Vec<FleetShardSpec>,
        latency: SimDuration,
        gossip_period: SimDuration,
    ) -> Self {
        let shard_count = specs.len() as u16;
        let mut boots: Vec<Vec<(SimTime, Event)>> = Vec::with_capacity(specs.len());
        let worlds: Vec<FleetShard> = specs
            .into_iter()
            .map(|spec| {
                let cloud = CloudSim::new(spec.traces, spec.cloud);
                let mut controller = Controller::new(cloud, spec.config);
                boots.push(controller.bootstrap(SimTime::ZERO));
                FleetShard {
                    controller,
                    script: spec.script,
                    shard_count,
                    latency,
                    gossip_period,
                    tracked: Vec::new(),
                    churned: Vec::new(),
                    churn_count: 0,
                    gossip_round: 0,
                    round_acc: BTreeMap::new(),
                    advisories_seen: 0,
                    last_advisory: None,
                    pub_peak_fleet_free_slots: 0,
                }
            })
            .collect();
        let mut sim = ShardedSim::new(worlds, latency);
        for (i, boot) in boots.into_iter().enumerate() {
            for (t, e) in boot {
                sim.schedule_at(i, t, ShardEvent::Core(e));
            }
            let script = &sim.world(i).script;
            let churn_at = script.churn_at;
            if script.customers > 0 && script.vms_per_customer > 0 {
                sim.schedule_at(i, SimTime::ZERO, ShardEvent::RampBatch { next: 0 });
            }
            if let Some(at) = churn_at {
                sim.schedule_at(i, at, ShardEvent::ChurnRelease);
            }
            // First gossip report one period in, once the ramp has begun.
            sim.schedule_at(i, SimTime::ZERO + gossip_period, ShardEvent::GossipTick);
        }
        ShardedFleetSim { sim }
    }

    /// Sets the worker-thread count (0 follows `--threads`); forwarded to
    /// [`set_shard_workers`]. Output is byte-identical at any setting.
    pub fn set_workers(n: usize) {
        set_shard_workers(n);
    }

    /// Runs every shard up to (and including) `horizon`.
    pub fn run_until(&mut self, horizon: SimTime) {
        self.sim.run_until(horizon);
    }

    /// The last completed epoch boundary.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Number of logical shards.
    pub fn shard_count(&self) -> usize {
        self.sim.shard_count()
    }

    /// Shard `i` (panics if out of range).
    pub fn shard(&self, i: usize) -> &FleetShard {
        self.sim.world(i)
    }

    /// Iterates every shard in shard-id order.
    pub fn shards(&self) -> impl Iterator<Item = &FleetShard> {
        self.sim.worlds()
    }

    /// Cross-shard messages delivered so far.
    pub fn messages_delivered(&self) -> u64 {
        self.sim.messages_delivered()
    }

    /// Epoch windows actually executed so far.
    pub fn epochs(&self) -> u64 {
        self.sim.epochs()
    }

    /// Empty epoch windows fast-forwarded over instead of executed
    /// (zero when fast-forward is disabled).
    pub fn epochs_fast_forwarded(&self) -> u64 {
        self.sim.epochs_fast_forwarded()
    }

    /// Total epoch-grid windows covered (executed + fast-forwarded) —
    /// invariant across every execution-mode knob.
    pub fn epoch_windows(&self) -> u64 {
        self.sim.epoch_windows()
    }

    /// Worker threads the next run will use for epoch windows.
    pub fn window_workers(&self) -> usize {
        self.sim.window_workers()
    }

    /// Events + messages processed across every shard.
    pub fn total_steps(&self) -> u64 {
        self.sim.total_steps()
    }

    /// Journal records dropped to the cap, summed across shards.
    pub fn journal_dropped(&self) -> u64 {
        self.shards().map(|s| s.controller().journal().dropped()).sum()
    }

    /// The deterministic shard-tagged merge of every shard's journal
    /// (entries ordered by `(t, shard, index)`, counters summed).
    pub fn merged_journal_json(&self) -> String {
        Journal::merged_json(
            self.shards()
                .enumerate()
                .map(|(i, s)| (i as u16, s.controller().journal())),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::standard_traces;
    use spotcheck_simcore::shard::set_shard_workers;

    fn small_specs(shards: u16) -> Vec<FleetShardSpec> {
        (0..shards)
            .map(|s| FleetShardSpec {
                traces: standard_traces(
                    &format!("us-east-1{}", (b'a' + s as u8) as char),
                    SimDuration::from_days(3),
                    90 + s as u64,
                ),
                config: SpotCheckConfig {
                    zone: format!("us-east-1{}", (b'a' + s as u8) as char),
                    seed: 90 + s as u64,
                    ..SpotCheckConfig::default()
                },
                cloud: CloudConfig {
                    seed: 1_090 + s as u64,
                    ..CloudConfig::default()
                },
                script: FleetScript {
                    customers: 2,
                    vms_per_customer: 5,
                    ramp_gap: SimDuration::from_secs(300),
                    churn_at: Some(SimTime::ZERO + SimDuration::from_days(1)),
                    churn_every: 3,
                    churn_replace_delay: SimDuration::from_hours(1),
                    workload: WorkloadKind::TpcW,
                },
            })
            .collect()
    }

    fn run(shards: u16, workers: usize) -> (String, u64, Vec<u64>) {
        set_shard_workers(workers);
        let mut sim = ShardedFleetSim::new(
            small_specs(shards),
            SimDuration::from_secs(60),
            SimDuration::from_hours(6),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_days(3));
        set_shard_workers(0);
        let advisories: Vec<u64> = sim.shards().map(|s| s.advisories_seen()).collect();
        (sim.merged_journal_json(), sim.messages_delivered(), advisories)
    }

    #[test]
    fn gossip_reaches_every_shard() {
        let (_, delivered, advisories) = run(3, 1);
        assert!(delivered > 0, "cross-shard messages flowed");
        // 3 days at a 6 h cadence (first report at 6 h, latency 60 s on
        // each leg): every shard hears most rounds back.
        for (i, a) in advisories.iter().enumerate() {
            assert!(*a >= 10, "shard {i} saw only {a} advisories");
        }
    }

    #[test]
    fn merged_journal_is_identical_at_any_worker_count() {
        let (baseline, delivered, _) = run(3, 1);
        for workers in [2, 3, 8] {
            let (json, d, _) = run(3, workers);
            assert_eq!(json, baseline, "journal diverged at {workers} workers");
            assert_eq!(d, delivered);
        }
    }

    #[test]
    fn shards_run_the_full_script() {
        set_shard_workers(1);
        let mut sim = ShardedFleetSim::new(
            small_specs(2),
            SimDuration::from_secs(60),
            SimDuration::from_hours(6),
        );
        sim.run_until(SimTime::ZERO + SimDuration::from_days(3));
        set_shard_workers(0);
        for s in sim.shards() {
            assert_eq!(s.tracked_vms(), 10);
            assert!(s.churned_vms() > 0);
            assert!(s.controller().journal().counters().vm_transitions > 0);
        }
    }
}
