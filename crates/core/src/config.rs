//! SpotCheck controller configuration.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_migrate::bounded::BoundedTimeConfig;
use spotcheck_migrate::mechanisms::MechanismKind;

use crate::policy::{BiddingPolicy, MappingPolicy, PlacementPolicy};
use crate::retry::ResilienceConfig;

/// Configuration of a SpotCheck deployment.
#[derive(Debug, Clone)]
pub struct SpotCheckConfig {
    /// The availability zone this deployment operates in.
    pub zone: String,
    /// Customer-to-pool mapping policy (Table 2).
    pub mapping: MappingPolicy,
    /// Native-server selection policy (§4.2).
    pub placement: PlacementPolicy,
    /// Bid policy for spot pools (§4.3).
    pub bidding: BiddingPolicy,
    /// Migration mechanism variant.
    pub mechanism: MechanismKind,
    /// Hot spares: on-demand servers kept running to receive revoked VMs
    /// instantly instead of waiting ~60 s for a fresh boot (§4.3).
    pub hot_spares: usize,
    /// Migrate VMs back to their home spot pool when the price spike
    /// abates (the "allocation dynamics" of §4.3).
    pub return_to_spot: bool,
    /// Backup-server hardware parameters.
    pub backup: BackupServerConfig,
    /// Continuous-checkpointing parameters (30 s bound by default).
    pub bounded: BoundedTimeConfig,
    /// Retry/backoff, circuit-breaker, and re-replication behavior.
    pub resilience: ResilienceConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpotCheckConfig {
    fn default() -> Self {
        SpotCheckConfig {
            zone: "us-east-1a".to_string(),
            mapping: MappingPolicy::OneM,
            placement: PlacementPolicy::GreedyCheapest,
            bidding: BiddingPolicy::OnDemandPrice,
            mechanism: MechanismKind::SpotCheckLazy,
            hot_spares: 0,
            return_to_spot: true,
            backup: BackupServerConfig::default(),
            bounded: BoundedTimeConfig::default(),
            resilience: ResilienceConfig::default(),
            seed: 0,
        }
    }
}
