//! SpotCheck controller configuration.

use spotcheck_backup::server::BackupServerConfig;
use spotcheck_migrate::bounded::BoundedTimeConfig;
use spotcheck_migrate::mechanisms::MechanismKind;

use crate::policy::{BiddingPolicy, MappingPolicy, PlacementPolicy};
use crate::retry::ResilienceConfig;

/// Configuration of a SpotCheck deployment.
#[derive(Debug, Clone)]
pub struct SpotCheckConfig {
    /// The availability zone this deployment operates in.
    pub zone: String,
    /// Customer-to-pool mapping policy (Table 2).
    pub mapping: MappingPolicy,
    /// Native-server selection policy (§4.2).
    pub placement: PlacementPolicy,
    /// Bid policy for spot pools (§4.3).
    pub bidding: BiddingPolicy,
    /// Migration mechanism variant.
    pub mechanism: MechanismKind,
    /// Hot spares: on-demand servers kept running to receive revoked VMs
    /// instantly instead of waiting ~60 s for a fresh boot (§4.3).
    pub hot_spares: usize,
    /// Migrate VMs back to their home spot pool when the price spike
    /// abates (the "allocation dynamics" of §4.3).
    pub return_to_spot: bool,
    /// Backup-server hardware parameters.
    pub backup: BackupServerConfig,
    /// Continuous-checkpointing parameters (30 s bound by default).
    pub bounded: BoundedTimeConfig,
    /// Retry/backoff, circuit-breaker, and re-replication behavior.
    pub resilience: ResilienceConfig,
    /// Fleet-wide bandwidth contention model and defenses (off by default:
    /// transfer durations stay closed-form i.i.d. draws).
    pub contention: ContentionConfig,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SpotCheckConfig {
    fn default() -> Self {
        SpotCheckConfig {
            zone: "us-east-1a".to_string(),
            mapping: MappingPolicy::OneM,
            placement: PlacementPolicy::GreedyCheapest,
            bidding: BiddingPolicy::OnDemandPrice,
            mechanism: MechanismKind::SpotCheckLazy,
            hot_spares: 0,
            return_to_spot: true,
            backup: BackupServerConfig::default(),
            bounded: BoundedTimeConfig::default(),
            resilience: ResilienceConfig::default(),
            contention: ContentionConfig::default(),
            seed: 0,
        }
    }
}

/// Fleet-wide bandwidth contention: shared-link fluid model + defenses.
///
/// When `enabled`, every host gets a NIC link, every backup server NIC +
/// disk links, and the AZ an aggregate uplink; checkpoint streams, final
/// commits, re-replications, return transfers, and lazy restores become
/// max-min-fair flows whose completion instants emerge from progressive
/// filling — so a revocation storm can genuinely blow the 30 s bound.
#[derive(Debug, Clone)]
pub struct ContentionConfig {
    /// Model transfers as contending flows instead of i.i.d. closed-form
    /// durations.
    pub enabled: bool,
    /// Per-host NIC capacity in bytes/second.
    pub host_nic_bps: f64,
    /// AZ aggregate uplink capacity in bytes/second.
    pub az_uplink_bps: f64,
    /// Defense: place re-replications off hot backup NICs (>50% loaded).
    pub spread_by_load: bool,
    /// Defense: stage concurrent final commits earliest-deadline-first.
    pub admission: bool,
    /// Maximum concurrently admitted final commits when `admission` is on.
    pub admission_cap: usize,
    /// Defense: fall back to Yank-style pause-and-flush (weight-boosted
    /// flow, honest downtime accounting) when the bound provably cannot
    /// hold.
    pub fallback: bool,
}

impl Default for ContentionConfig {
    fn default() -> Self {
        ContentionConfig {
            enabled: false,
            host_nic_bps: 125e6,
            az_uplink_bps: 1.25e9,
            spread_by_load: false,
            admission: false,
            admission_cap: 8,
            fallback: false,
        }
    }
}

impl ContentionConfig {
    /// Enables the contention model with every defense off (the
    /// "attack" configuration of the `contention_storm` experiment).
    pub fn enabled_undefended() -> Self {
        ContentionConfig {
            enabled: true,
            ..ContentionConfig::default()
        }
    }

    /// Enables the contention model with every defense on.
    pub fn enabled_defended() -> Self {
        ContentionConfig {
            enabled: true,
            spread_by_load: true,
            admission: true,
            fallback: true,
            ..ContentionConfig::default()
        }
    }
}
