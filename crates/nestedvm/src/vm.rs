//! Nested VMs: the unit SpotCheck sells to customers.

use std::fmt;

use spotcheck_simcore::time::SimTime;

use crate::memory::{pages_for_bytes, MemoryImage};

/// Identifies a nested VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NestedVmId(pub u64);

impl fmt::Display for NestedVmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nvm-{:06}", self.0)
    }
}

// Allocated monotonically by the controller, so it indexes dense
// `spotcheck_simcore::slab::IdMap` storage directly.
impl spotcheck_simcore::slab::DenseKey for NestedVmId {
    fn dense_index(self) -> usize {
        self.0 as usize
    }
    fn from_dense_index(index: usize) -> Self {
        NestedVmId(index as u64)
    }
}

/// Static sizing of a nested VM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NestedVmSpec {
    /// Guest memory in bytes.
    pub mem_bytes: u64,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Size in `m3.medium`-equivalent host slots.
    pub slots: u32,
}

impl NestedVmSpec {
    /// A medium nested VM: the paper's default customer unit, sized to fit
    /// in one m3.medium host (3.75 GiB, of which the nested hypervisor and
    /// dom-0 reserve some).
    pub fn medium() -> Self {
        NestedVmSpec {
            mem_bytes: 3 * 1024 * 1024 * 1024, // 3 GiB usable
            vcpus: 1,
            slots: 1,
        }
    }

    /// A nested VM with the given memory, one slot per started 3.75 GiB.
    pub fn with_mem_bytes(mem_bytes: u64) -> Self {
        let slot_bytes = (3.75 * (1u64 << 30) as f64) as u64;
        NestedVmSpec {
            mem_bytes,
            vcpus: 1,
            slots: mem_bytes.div_ceil(slot_bytes).max(1) as u32,
        }
    }

    /// Returns the page count of the guest memory.
    pub fn pages(&self) -> usize {
        pages_for_bytes(self.mem_bytes)
    }

    /// Size of the *skeleton state* needed to lazily resume this VM: vCPU
    /// state plus page tables plus hypervisor bookkeeping. Dominated by the
    /// page tables at ~8 bytes per 4 KiB page; the paper reports "typically
    /// around 5 MB" for its VMs (§5).
    pub fn skeleton_bytes(&self) -> u64 {
        const FIXED: u64 = 1 << 20; // vCPU + hardware state, ~1 MiB
        FIXED + self.pages() as u64 * 8
    }
}

/// Execution state of a nested VM, from SpotCheck's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NestedVmState {
    /// Executing normally on its host.
    Running,
    /// Executing, with continuous checkpointing to a backup server active
    /// (the normal state on a spot host).
    RunningProtected,
    /// Paused for the final copy phase of a migration.
    PausedForMigration,
    /// Execution resumed but memory is still being lazily restored
    /// (degraded performance window).
    LazyRestoring,
    /// Fully stopped pending a full restore.
    Restoring,
    /// Released by the customer.
    Terminated,
}

impl NestedVmState {
    /// Returns true when the customer's applications are making progress.
    pub fn is_executing(&self) -> bool {
        matches!(
            self,
            NestedVmState::Running
                | NestedVmState::RunningProtected
                | NestedVmState::LazyRestoring
        )
    }

    /// Returns true when the VM is visibly down to the customer.
    pub fn is_down(&self) -> bool {
        matches!(
            self,
            NestedVmState::PausedForMigration | NestedVmState::Restoring
        )
    }

    /// Returns true when performance is degraded (running, but slower than
    /// baseline due to restoration page faults).
    pub fn is_degraded(&self) -> bool {
        matches!(self, NestedVmState::LazyRestoring)
    }
}

/// A nested VM instance.
#[derive(Debug, Clone)]
pub struct NestedVm {
    /// Id.
    pub id: NestedVmId,
    /// Sizing.
    pub spec: NestedVmSpec,
    /// Execution state.
    pub state: NestedVmState,
    /// Guest memory image (dirty-page tracking).
    pub memory: MemoryImage,
    /// When the VM was created.
    pub created_at: SimTime,
}

impl NestedVm {
    /// Creates a running nested VM.
    pub fn new(id: NestedVmId, spec: NestedVmSpec, now: SimTime) -> Self {
        NestedVm {
            id,
            spec,
            state: NestedVmState::Running,
            memory: MemoryImage::new(spec.mem_bytes),
            created_at: now,
        }
    }

    /// Memory size in bytes.
    pub fn mem_bytes(&self) -> u64 {
        self.spec.mem_bytes
    }

    /// Whether a pre-copy live migration of this VM reliably completes
    /// within `warning_secs`, given `bandwidth_bps` of transfer bandwidth
    /// and the workload's page-dirty rate in bytes/sec (paper §3.2: "small"
    /// VMs can live-migrate inside the warning period; larger ones need
    /// bounded-time migration).
    ///
    /// Uses the standard pre-copy bound: with dirty rate `d` and bandwidth
    /// `b > d`, total transfer is at most `M * b / (b - d)`.
    pub fn live_migratable_within(
        &self,
        warning_secs: f64,
        bandwidth_bps: f64,
        dirty_bps: f64,
    ) -> bool {
        if bandwidth_bps <= dirty_bps {
            return false;
        }
        let m = self.mem_bytes() as f64;
        let total = m * bandwidth_bps / (bandwidth_bps - dirty_bps);
        total / bandwidth_bps <= warning_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::PAGE_SIZE;

    #[test]
    fn medium_spec_sizes() {
        let s = NestedVmSpec::medium();
        assert_eq!(s.slots, 1);
        assert_eq!(s.pages(), (3usize << 30) / PAGE_SIZE as usize);
        // Skeleton ~ 1 MiB + 8 B/page = 1 MiB + 6 MiB = 7 MiB for 3 GiB;
        // the paper's ~5 MB referred to its (smaller) test VMs.
        let skel = s.skeleton_bytes();
        assert!(skel > 4 << 20 && skel < 8 << 20, "skeleton {skel}");
    }

    #[test]
    fn with_mem_bytes_slot_rounding() {
        assert_eq!(NestedVmSpec::with_mem_bytes(1 << 30).slots, 1);
        assert_eq!(NestedVmSpec::with_mem_bytes(4 << 30).slots, 2);
        assert_eq!(NestedVmSpec::with_mem_bytes(15 << 30).slots, 4);
    }

    #[test]
    fn skeleton_is_about_5mb_for_2gib() {
        // The paper's statement: skeleton "typically around 5MB".
        let s = NestedVmSpec::with_mem_bytes(2 << 30);
        let mb = s.skeleton_bytes() as f64 / (1 << 20) as f64;
        assert!((4.0..6.0).contains(&mb), "skeleton {mb} MB");
    }

    #[test]
    fn state_classification() {
        assert!(NestedVmState::Running.is_executing());
        assert!(NestedVmState::RunningProtected.is_executing());
        assert!(NestedVmState::LazyRestoring.is_executing());
        assert!(NestedVmState::LazyRestoring.is_degraded());
        assert!(NestedVmState::PausedForMigration.is_down());
        assert!(NestedVmState::Restoring.is_down());
        assert!(!NestedVmState::Running.is_degraded());
        assert!(!NestedVmState::Terminated.is_executing());
    }

    #[test]
    fn live_migratability_depends_on_size_and_rate() {
        let small = NestedVm::new(NestedVmId(1), NestedVmSpec::with_mem_bytes(1 << 30), SimTime::ZERO);
        let big = NestedVm::new(NestedVmId(2), NestedVmSpec::with_mem_bytes(16 << 30), SimTime::ZERO);
        let bw = 125e6; // 1 Gbit/s
        let dirty = 10e6;
        // 1 GiB at ~125 MB/s: ~9 s << 120 s warning.
        assert!(small.live_migratable_within(120.0, bw, dirty));
        // 16 GiB: ~148 s > 120 s warning.
        assert!(!big.live_migratable_within(120.0, bw, dirty));
        // Dirty rate >= bandwidth never converges.
        assert!(!small.live_migratable_within(120.0, bw, bw));
    }
}
