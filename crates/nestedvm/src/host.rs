//! Host VMs running the nested hypervisor (XenBlanket).
//!
//! A *host* is a native instance on which SpotCheck installed its nested
//! hypervisor. The hypervisor slices the host into `m3.medium`-equivalent
//! slots and runs one nested VM per slot (or a larger nested VM across
//! several slots), providing isolation between customers and — crucially —
//! the migration capability the native platform does not expose (paper
//! §3.1). It also owns the NAT table mapping each nested VM's private IP
//! to its host interface (§3.4).

use std::collections::BTreeMap;

use spotcheck_simcore::time::SimTime;

use crate::vm::{NestedVm, NestedVmId, NestedVmSpec};

/// Errors from host-slot management.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HostError {
    /// Not enough free slots to place the nested VM.
    InsufficientCapacity {
        /// Slots requested.
        requested: u32,
        /// Slots free.
        free: u32,
    },
    /// The nested VM is not resident on this host.
    NotResident(NestedVmId),
    /// The nested VM is already resident on this host.
    AlreadyResident(NestedVmId),
}

impl std::fmt::Display for HostError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HostError::InsufficientCapacity { requested, free } => {
                write!(f, "need {requested} slots, only {free} free")
            }
            HostError::NotResident(id) => write!(f, "{id} is not resident on this host"),
            HostError::AlreadyResident(id) => write!(f, "{id} is already resident on this host"),
        }
    }
}

impl std::error::Error for HostError {}

/// A host VM running the nested hypervisor.
#[derive(Debug, Clone)]
pub struct HostVm {
    /// Total nested-VM slots (the native type's `medium_slots`).
    capacity_slots: u32,
    /// Resident nested VMs.
    residents: BTreeMap<NestedVmId, NestedVm>,
}

impl HostVm {
    /// Creates a host with the given slot capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_slots` is zero.
    pub fn new(capacity_slots: u32) -> Self {
        assert!(capacity_slots > 0, "host must have at least one slot");
        HostVm {
            capacity_slots,
            residents: BTreeMap::new(),
        }
    }

    /// Total slot capacity.
    pub fn capacity_slots(&self) -> u32 {
        self.capacity_slots
    }

    /// Slots currently in use.
    pub fn used_slots(&self) -> u32 {
        self.residents.values().map(|vm| vm.spec.slots).sum()
    }

    /// Slots currently free.
    pub fn free_slots(&self) -> u32 {
        self.capacity_slots - self.used_slots()
    }

    /// Returns true if a VM of `spec` fits.
    pub fn fits(&self, spec: &NestedVmSpec) -> bool {
        spec.slots <= self.free_slots()
    }

    /// Boots a new nested VM on this host.
    ///
    /// # Errors
    ///
    /// Fails if capacity is insufficient.
    pub fn boot(
        &mut self,
        id: NestedVmId,
        spec: NestedVmSpec,
        now: SimTime,
    ) -> Result<&NestedVm, HostError> {
        self.admit(NestedVm::new(id, spec, now))
    }

    /// Admits an existing nested VM (e.g. one arriving by migration).
    ///
    /// # Errors
    ///
    /// Fails if capacity is insufficient or the id is already resident.
    pub fn admit(&mut self, vm: NestedVm) -> Result<&NestedVm, HostError> {
        if self.residents.contains_key(&vm.id) {
            return Err(HostError::AlreadyResident(vm.id));
        }
        if vm.spec.slots > self.free_slots() {
            return Err(HostError::InsufficientCapacity {
                requested: vm.spec.slots,
                free: self.free_slots(),
            });
        }
        let id = vm.id;
        self.residents.insert(id, vm);
        Ok(self.residents.get(&id).expect("just inserted"))
    }

    /// Removes a nested VM (migration departure or customer release),
    /// returning it.
    ///
    /// # Errors
    ///
    /// Fails if the VM is not resident.
    pub fn evict(&mut self, id: NestedVmId) -> Result<NestedVm, HostError> {
        self.residents.remove(&id).ok_or(HostError::NotResident(id))
    }

    /// Returns a shared view of a resident VM.
    pub fn vm(&self, id: NestedVmId) -> Option<&NestedVm> {
        self.residents.get(&id)
    }

    /// Returns an exclusive view of a resident VM.
    pub fn vm_mut(&mut self, id: NestedVmId) -> Option<&mut NestedVm> {
        self.residents.get_mut(&id)
    }

    /// Iterates over resident VMs.
    pub fn residents(&self) -> impl Iterator<Item = &NestedVm> {
        self.residents.values()
    }

    /// Returns the resident VM ids (the set that must all migrate if this
    /// host's native instance is revoked — the slicing risk of §4.2).
    pub fn resident_ids(&self) -> Vec<NestedVmId> {
        self.residents.keys().copied().collect()
    }

    /// Number of resident VMs.
    pub fn resident_count(&self) -> usize {
        self.residents.len()
    }

    /// Returns true when any resident VM is executing.
    pub fn any_executing(&self) -> bool {
        self.residents.values().any(|vm| vm.state.is_executing())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::NestedVmState;

    fn medium() -> NestedVmSpec {
        NestedVmSpec::medium()
    }

    #[test]
    fn slicing_respects_capacity() {
        // An m3.large host has two medium slots.
        let mut host = HostVm::new(2);
        host.boot(NestedVmId(1), medium(), SimTime::ZERO).unwrap();
        assert_eq!(host.free_slots(), 1);
        assert!(host.fits(&medium()));
        host.boot(NestedVmId(2), medium(), SimTime::ZERO).unwrap();
        assert_eq!(host.free_slots(), 0);
        let err = host.boot(NestedVmId(3), medium(), SimTime::ZERO).unwrap_err();
        assert_eq!(
            err,
            HostError::InsufficientCapacity {
                requested: 1,
                free: 0
            }
        );
    }

    #[test]
    fn multi_slot_vm_takes_multiple_slots() {
        let mut host = HostVm::new(4);
        let big = NestedVmSpec::with_mem_bytes(7 << 30); // 2 slots
        host.boot(NestedVmId(1), big, SimTime::ZERO).unwrap();
        assert_eq!(host.used_slots(), 2);
        assert_eq!(host.free_slots(), 2);
    }

    #[test]
    fn evict_and_admit_roundtrip_preserves_vm() {
        let mut a = HostVm::new(1);
        let mut b = HostVm::new(1);
        a.boot(NestedVmId(7), medium(), SimTime::from_secs(5)).unwrap();
        a.vm_mut(NestedVmId(7)).unwrap().memory.mark_dirty(42);
        let vm = a.evict(NestedVmId(7)).unwrap();
        assert_eq!(a.resident_count(), 0);
        assert_eq!(vm.created_at, SimTime::from_secs(5));
        b.admit(vm).unwrap();
        assert_eq!(b.vm(NestedVmId(7)).unwrap().memory.dirty_pages(), 1);
    }

    #[test]
    fn duplicate_admission_rejected() {
        let mut host = HostVm::new(2);
        host.boot(NestedVmId(1), medium(), SimTime::ZERO).unwrap();
        let dup = NestedVm::new(NestedVmId(1), medium(), SimTime::ZERO);
        assert_eq!(host.admit(dup).unwrap_err(), HostError::AlreadyResident(NestedVmId(1)));
    }

    #[test]
    fn evict_unknown_fails() {
        let mut host = HostVm::new(1);
        assert_eq!(
            host.evict(NestedVmId(9)).unwrap_err(),
            HostError::NotResident(NestedVmId(9))
        );
    }

    #[test]
    fn resident_ids_lists_all_for_revocation() {
        let mut host = HostVm::new(8);
        for i in 0..5 {
            host.boot(NestedVmId(i), medium(), SimTime::ZERO).unwrap();
        }
        assert_eq!(host.resident_ids().len(), 5);
        assert!(host.any_executing());
        for vm in host.resident_ids() {
            host.vm_mut(vm).unwrap().state = NestedVmState::Restoring;
        }
        assert!(!host.any_executing());
    }
}
