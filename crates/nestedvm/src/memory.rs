//! Nested-VM memory model.
//!
//! Migration mechanics are governed by two quantities: the VM's memory size
//! and the rate at which the workload dirties pages (paper §3.2). The model
//! here is a classic hot/cold working-set: writes concentrate on a *hot set*
//! of pages, so the number of *distinct* dirty pages saturates toward the
//! working-set size rather than growing linearly — which is exactly why
//! pre-copy live migration converges for modest write rates and why
//! bounded-time migration can hold the dirty residue below a threshold.

use spotcheck_simcore::bitset::BitSet;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::SimDuration;

/// Page size used throughout: 4 KiB.
pub const PAGE_SIZE: u64 = 4_096;

/// Converts bytes to a page count (rounding up).
pub fn pages_for_bytes(bytes: u64) -> usize {
    (bytes.div_ceil(PAGE_SIZE)) as usize
}

/// A nested VM's guest-physical memory image, tracked at page granularity.
#[derive(Debug, Clone)]
pub struct MemoryImage {
    total_pages: usize,
    dirty: BitSet,
}

impl MemoryImage {
    /// Creates an image of `bytes` with every page clean.
    pub fn new(bytes: u64) -> Self {
        let total_pages = pages_for_bytes(bytes);
        MemoryImage {
            total_pages,
            dirty: BitSet::new(total_pages),
        }
    }

    /// Returns the number of pages.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Returns the memory size in bytes.
    pub fn bytes(&self) -> u64 {
        self.total_pages as u64 * PAGE_SIZE
    }

    /// Returns the number of dirty pages.
    pub fn dirty_pages(&self) -> usize {
        self.dirty.count_ones()
    }

    /// Returns the dirty bytes.
    pub fn dirty_bytes(&self) -> u64 {
        self.dirty_pages() as u64 * PAGE_SIZE
    }

    /// Returns the dirty set.
    pub fn dirty_set(&self) -> &BitSet {
        &self.dirty
    }

    /// Marks a page dirty; returns true if it was clean.
    pub fn mark_dirty(&mut self, page: usize) -> bool {
        self.dirty.set(page)
    }

    /// Takes the dirty set, leaving all pages clean — the checkpoint
    /// "epoch flip".
    pub fn take_dirty(&mut self) -> BitSet {
        let mut taken = BitSet::new(self.total_pages);
        taken.drain_from(&mut self.dirty);
        taken
    }

    /// Marks every page dirty (a cold image that has never been
    /// checkpointed must transfer in full).
    pub fn mark_all_dirty(&mut self) {
        self.dirty.set_all();
    }
}

/// A hot/cold working-set dirtying model.
///
/// Writes land uniformly within a hot set of `hot_pages` pages at
/// `writes_per_sec`; a small fraction `cold_write_fraction` of writes leak
/// to the remaining (cold) pages.
#[derive(Debug, Clone)]
pub struct DirtyModel {
    /// Size of the hot set, in pages.
    pub hot_pages: usize,
    /// Page writes per second (not necessarily distinct pages).
    pub writes_per_sec: f64,
    /// Fraction of writes landing outside the hot set, in `[0, 1)`.
    pub cold_write_fraction: f64,
}

impl DirtyModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if parameters are out of range.
    pub fn new(hot_pages: usize, writes_per_sec: f64, cold_write_fraction: f64) -> Self {
        assert!(hot_pages > 0, "hot set must be non-empty");
        assert!(
            writes_per_sec.is_finite() && writes_per_sec >= 0.0,
            "write rate must be non-negative"
        );
        assert!(
            (0.0..1.0).contains(&cold_write_fraction),
            "cold fraction must be in [0, 1)"
        );
        DirtyModel {
            hot_pages,
            writes_per_sec,
            cold_write_fraction,
        }
    }

    /// A model with no writes (an idle VM).
    pub fn idle() -> Self {
        DirtyModel {
            hot_pages: 1,
            writes_per_sec: 0.0,
            cold_write_fraction: 0.0,
        }
    }

    /// Expected number of *distinct hot* pages dirtied over `dt`, given
    /// `already_dirty_hot` hot pages are already dirty.
    ///
    /// Uniform writes over `H` pages for time `t` leave a hot page clean
    /// with probability `exp(-r_hot * t / H)`; the expectation follows.
    pub fn expected_new_hot_dirty(&self, already_dirty_hot: usize, dt: SimDuration) -> f64 {
        let clean = self.hot_pages.saturating_sub(already_dirty_hot) as f64;
        if clean <= 0.0 || self.writes_per_sec == 0.0 {
            return 0.0;
        }
        let hot_rate = self.writes_per_sec * (1.0 - self.cold_write_fraction);
        let survive = (-hot_rate * dt.as_secs_f64() / self.hot_pages as f64).exp();
        clean * (1.0 - survive)
    }

    /// Expected number of distinct *cold* pages dirtied over `dt` given
    /// `cold_total` cold pages, `already_dirty_cold` of which are dirty.
    pub fn expected_new_cold_dirty(
        &self,
        cold_total: usize,
        already_dirty_cold: usize,
        dt: SimDuration,
    ) -> f64 {
        let clean = cold_total.saturating_sub(already_dirty_cold) as f64;
        if clean <= 0.0 || self.writes_per_sec == 0.0 || self.cold_write_fraction == 0.0 {
            return 0.0;
        }
        let cold_rate = self.writes_per_sec * self.cold_write_fraction;
        let survive = (-cold_rate * dt.as_secs_f64() / cold_total as f64).exp();
        clean * (1.0 - survive)
    }

    /// The steady-state distinct-dirty-page generation rate when the dirty
    /// set is regularly drained (pages/second) — the rate a continuous
    /// checkpointer must sustain. For a freshly-drained set this is simply
    /// the write rate (every write hits a clean page, modulo immediate
    /// re-dirtying within the epoch).
    ///
    /// Given a checkpoint epoch of `epoch`, the expected pages dirtied per
    /// epoch is `E_hot + E_cold`, so the required transfer rate is that
    /// divided by the epoch.
    pub fn distinct_dirty_rate(&self, total_pages: usize, epoch: SimDuration) -> f64 {
        if epoch.is_zero() {
            return self.writes_per_sec;
        }
        let cold_total = total_pages.saturating_sub(self.hot_pages);
        let per_epoch = self.expected_new_hot_dirty(0, epoch)
            + self.expected_new_cold_dirty(cold_total, 0, epoch);
        per_epoch / epoch.as_secs_f64()
    }

    /// Samples actual page-level dirtying into `image` over `dt`.
    ///
    /// Hot pages occupy indices `[0, hot_pages)`; the layout choice is
    /// immaterial to the transfer model. Returns the number of pages newly
    /// dirtied.
    ///
    /// The write count is split binomially into hot and cold writes with a
    /// single draw, then only page indices are sampled — one RNG call per
    /// write instead of the two (Bernoulli + index) a per-write split would
    /// cost. The marginal distribution of each write's target page is
    /// unchanged.
    pub fn sample_dirty(
        &self,
        image: &mut MemoryImage,
        dt: SimDuration,
        rng: &mut SimRng,
    ) -> usize {
        let total = image.total_pages();
        if total == 0 {
            return 0;
        }
        let hot = self.hot_pages.min(total);
        let cold_span = total - hot;
        let writes = (self.writes_per_sec * dt.as_secs_f64()).round() as u64;
        if writes == 0 {
            return 0;
        }
        spotcheck_simcore::metrics::add(writes);
        let cold_writes = if cold_span == 0 {
            0
        } else {
            rng.binomial(writes, self.cold_write_fraction)
        };
        let mut newly = 0;
        for _ in 0..(writes - cold_writes) {
            let page = (rng.next_f64() * hot as f64) as usize;
            if image.mark_dirty(page.min(hot - 1)) {
                newly += 1;
            }
        }
        for _ in 0..cold_writes {
            let page = hot + (rng.next_f64() * cold_span as f64) as usize;
            if image.mark_dirty(page.min(total - 1)) {
                newly += 1;
            }
        }
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_round_up() {
        assert_eq!(pages_for_bytes(0), 0);
        assert_eq!(pages_for_bytes(1), 1);
        assert_eq!(pages_for_bytes(4_096), 1);
        assert_eq!(pages_for_bytes(4_097), 2);
        assert_eq!(pages_for_bytes(1 << 30), 262_144);
    }

    #[test]
    fn image_dirty_tracking() {
        let mut img = MemoryImage::new(1 << 20); // 256 pages
        assert_eq!(img.total_pages(), 256);
        assert_eq!(img.dirty_pages(), 0);
        assert!(img.mark_dirty(3));
        assert!(!img.mark_dirty(3));
        assert_eq!(img.dirty_pages(), 1);
        assert_eq!(img.dirty_bytes(), PAGE_SIZE);
        let taken = img.take_dirty();
        assert_eq!(taken.count_ones(), 1);
        assert_eq!(img.dirty_pages(), 0);
        img.mark_all_dirty();
        assert_eq!(img.dirty_pages(), 256);
    }

    #[test]
    fn hot_dirty_saturates_at_working_set() {
        let m = DirtyModel::new(10_000, 50_000.0, 0.0);
        // Over a long interval every hot page gets dirtied, no more.
        let d = m.expected_new_hot_dirty(0, SimDuration::from_secs(60));
        assert!((d - 10_000.0).abs() < 1.0, "d={d}");
        // Over a tiny interval, roughly rate x time (few collisions).
        let d = m.expected_new_hot_dirty(0, SimDuration::from_millis(10));
        assert!((d - 500.0).abs() < 20.0, "d={d}");
        // Already-dirty pages can't be re-dirtied "distinctly".
        let d = m.expected_new_hot_dirty(10_000, SimDuration::from_secs(60));
        assert_eq!(d, 0.0);
    }

    #[test]
    fn cold_dirty_is_slow() {
        let m = DirtyModel::new(10_000, 50_000.0, 0.02);
        let hot = m.expected_new_hot_dirty(0, SimDuration::from_millis(100));
        let cold = m.expected_new_cold_dirty(100_000, 0, SimDuration::from_millis(100));
        assert!(cold < hot / 10.0, "hot={hot} cold={cold}");
    }

    #[test]
    fn idle_model_never_dirties() {
        let m = DirtyModel::idle();
        assert_eq!(m.expected_new_hot_dirty(0, SimDuration::from_secs(100)), 0.0);
        let mut img = MemoryImage::new(1 << 20);
        let mut rng = SimRng::seed(1);
        assert_eq!(m.sample_dirty(&mut img, SimDuration::from_secs(10), &mut rng), 0);
    }

    #[test]
    fn distinct_dirty_rate_below_write_rate() {
        let m = DirtyModel::new(10_000, 50_000.0, 0.01);
        let r = m.distinct_dirty_rate(100_000, SimDuration::from_secs(1));
        assert!(r < 50_000.0);
        assert!(r > 5_000.0);
        // Longer epochs increase collision, lowering the distinct rate.
        let r_long = m.distinct_dirty_rate(100_000, SimDuration::from_secs(10));
        assert!(r_long < r);
    }

    #[test]
    fn sampled_dirty_matches_expectation() {
        let m = DirtyModel::new(1_000, 5_000.0, 0.0);
        let mut img = MemoryImage::new(1_000 * PAGE_SIZE);
        let mut rng = SimRng::seed(42);
        let newly = m.sample_dirty(&mut img, SimDuration::from_secs(1), &mut rng);
        let expected = m.expected_new_hot_dirty(0, SimDuration::from_secs(1));
        assert!(
            (newly as f64 - expected).abs() < expected * 0.05,
            "sampled {newly} vs expected {expected}"
        );
    }
}
