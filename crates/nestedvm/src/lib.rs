//! # spotcheck-nestedvm
//!
//! Nested-virtualization substrate for the SpotCheck reproduction: the
//! XenBlanket-style nested hypervisor model. Provides:
//!
//! - [`memory`] — page-granular memory images with a hot/cold working-set
//!   dirtying model (the quantity that governs every migration mechanism);
//! - [`vm`] — nested VMs, their lifecycle states, skeleton-state sizing,
//!   and the live-migratability predicate of paper §3.2;
//! - [`host`] — host VMs sliced into `m3.medium`-equivalent slots, the
//!   mechanism behind SpotCheck's price-arbitrage placement (§4.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod host;
pub mod memory;
pub mod vm;

pub use host::{HostError, HostVm};
pub use memory::{pages_for_bytes, DirtyModel, MemoryImage, PAGE_SIZE};
pub use vm::{NestedVm, NestedVmId, NestedVmSpec, NestedVmState};
