//! A minimal flat-JSON-object reader for the wire protocol and the
//! journal's JSONL sink — no serialization dependency, by design.
//!
//! Handles exactly the subset both sides of the protocol emit: one object
//! per line whose values are strings (with standard escapes), finite
//! numbers, booleans, or null. Nested objects and arrays are rejected;
//! nothing in the protocol or the sink produces them.

use std::collections::BTreeMap;

/// A scalar JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// A number (parsed as `f64`; integers up to 2^53 roundtrip exactly).
    Num(f64),
    /// A boolean.
    Bool(bool),
    /// `null`.
    Null,
}

impl Value {
    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Num(x) if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) => Some(x as u64),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Num(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a boolean, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Parses one flat JSON object into a key → value map.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax problem.
pub fn parse_object(input: &str) -> Result<BTreeMap<String, Value>, String> {
    let mut p = Parser {
        chars: input.char_indices().peekable(),
        input,
    };
    p.skip_ws();
    p.expect('{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.eat('}') {
        p.skip_ws();
        return p.finish(map);
    }
    loop {
        p.skip_ws();
        let key = p.string()?;
        p.skip_ws();
        p.expect(':')?;
        p.skip_ws();
        let value = p.value()?;
        map.insert(key, value);
        p.skip_ws();
        if p.eat(',') {
            continue;
        }
        p.expect('}')?;
        p.skip_ws();
        return p.finish(map);
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    input: &'a str,
}

impl Parser<'_> {
    fn finish(
        &mut self,
        map: BTreeMap<String, Value>,
    ) -> Result<BTreeMap<String, Value>, String> {
        match self.chars.next() {
            None => Ok(map),
            Some((i, c)) => Err(format!("trailing `{c}` at byte {i}")),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn eat(&mut self, want: char) -> bool {
        if matches!(self.chars.peek(), Some((_, c)) if *c == want) {
            self.chars.next();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        match self.chars.next() {
            Some((_, c)) if c == want => Ok(()),
            Some((i, c)) => Err(format!("expected `{want}` at byte {i}, found `{c}`")),
            None => Err(format!("expected `{want}`, found end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((i, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let (j, c) = self
                                .chars
                                .next()
                                .ok_or("truncated \\u escape".to_string())?;
                            code = code * 16
                                + c.to_digit(16)
                                    .ok_or(format!("bad \\u digit `{c}` at byte {j}"))?;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    Some((j, c)) => return Err(format!("bad escape `\\{c}` at byte {j}")),
                    None => return Err(format!("unterminated escape at byte {i}")),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.chars.peek() {
            Some((_, '"')) => Ok(Value::Str(self.string()?)),
            Some((_, 't')) => self.literal("true", Value::Bool(true)),
            Some((_, 'f')) => self.literal("false", Value::Bool(false)),
            Some((_, 'n')) => self.literal("null", Value::Null),
            Some((i, c)) if *c == '-' || c.is_ascii_digit() => {
                let start = *i;
                let mut end = self.input.len();
                while let Some((j, c)) = self.chars.peek() {
                    if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                        self.chars.next();
                    } else {
                        end = *j;
                        break;
                    }
                }
                let text = &self.input[start..end];
                text.parse()
                    .map(Value::Num)
                    .map_err(|_| format!("bad number `{text}`"))
            }
            Some((i, c)) => Err(format!("unsupported value starting `{c}` at byte {i}")),
            None => Err("expected a value, found end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        for want in word.chars() {
            match self.chars.next() {
                Some((_, c)) if c == want => {}
                _ => return Err(format!("bad literal (expected `{word}`)")),
            }
        }
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_subset() {
        let m = parse_object(
            r#"{"op": "provision", "customer": 3, "stateless": true, "note": "a\"b", "x": null, "pi": -1.5e2}"#,
        )
        .unwrap();
        assert_eq!(m["op"].as_str(), Some("provision"));
        assert_eq!(m["customer"].as_u64(), Some(3));
        assert_eq!(m["stateless"].as_bool(), Some(true));
        assert_eq!(m["note"].as_str(), Some("a\"b"));
        assert_eq!(m["x"], Value::Null);
        assert_eq!(m["pi"].as_f64(), Some(-150.0));
        assert_eq!(m["pi"].as_u64(), None);
    }

    #[test]
    fn parses_empty_and_rejects_malformed() {
        assert!(parse_object("{}").unwrap().is_empty());
        assert!(parse_object("").is_err());
        assert!(parse_object("{").is_err());
        assert!(parse_object(r#"{"a": }"#).is_err());
        assert!(parse_object(r#"{"a": 1} extra"#).is_err());
        assert!(parse_object(r#"{"a": [1]}"#).is_err());
        assert!(parse_object(r#"{"a": {"b": 1}}"#).is_err());
    }

    #[test]
    fn parses_a_journal_sink_line() {
        let line = r#"{"t": 3600.000000, "subsystem": "controller", "kind": "command", "seq": 2, "cmd": "provision", "a": 0, "b": 1, "c": 0}"#;
        let m = parse_object(line).unwrap();
        assert_eq!(m["kind"].as_str(), Some("command"));
        assert_eq!(m["seq"].as_u64(), Some(2));
        assert_eq!(m["t"].as_f64(), Some(3600.0));
    }
}
