//! # spotcheck-service
//!
//! `spotcheckd`: the SpotCheck simulation as a long-running service
//! instead of a batch run. The daemon owns a resumable
//! [`Engine`](spotcheck_core::engine::Engine), paces simulated time
//! against the wall clock (real-time or accelerated by `--accel N`),
//! and serves a line-delimited JSON protocol over TCP:
//!
//! ```text
//! -> {"op": "create_customer"}
//! <- {"ok": true, "customer": 0}
//! -> {"op": "provision", "customer": 0, "workload": "tpcw"}
//! <- {"ok": true, "vm": 0}
//! -> {"op": "metrics"}            (or the literal line `GET metrics`)
//! <- {"ok": true, "now_secs": 512.0, "availability_pct": 100, ...}
//! -> {"op": "snapshot"}
//! <- {"ok": true, "path": "...", "taken_at_secs": 512.0}
//! -> {"op": "shutdown"}
//! <- {"ok": true, "shutting_down": true}
//! ```
//!
//! Other verbs: `status`, `release` (`{"vm": N}`), `policy`
//! (`{"return_to_spot": bool}`).
//!
//! Durability comes from two pieces working together: periodic logical
//! [snapshots](spotcheck_core::snapshot) and the journal's JSONL spill
//! sink, whose `command` records past the snapshot are the replay tail.
//! A cold start (`--resume`) loads the newest snapshot, replays the tail
//! from the sink, and continues — converging on the exact state of the
//! interrupted run (verified by state signature).
//!
//! This crate is the only one in the workspace allowed `unsafe`: a
//! single `signal(2)` FFI call to latch SIGTERM/SIGINT into an atomic
//! flag so an orchestrator's stop turns into a flush + final snapshot
//! instead of lost state.

#![warn(missing_docs)]

pub mod json;

use std::collections::BTreeMap;
use std::io::{BufRead as _, Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use spotcheck_bench::report::{json_f64, json_str};
use spotcheck_core::engine::{Command, CommandOutcome, Engine, Scenario, TimedCommand};
use spotcheck_core::snapshot::Snapshot;
use spotcheck_nestedvm::vm::NestedVmId;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_workloads::WorkloadKind;

use crate::json::Value;

/// Graceful-shutdown signal latch (SIGTERM/SIGINT → atomic flag).
#[cfg(unix)]
pub mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the SIGTERM/SIGINT handler. Idempotent.
    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: `on_signal` only stores to an atomic, which is
        // async-signal-safe; the handler pointer outlives the process.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }

    /// True once a termination signal has been received.
    pub fn requested() -> bool {
        SHUTDOWN.load(Ordering::SeqCst)
    }
}

/// Stub for non-unix targets: no signals, never requested.
#[cfg(not(unix))]
pub mod signal {
    /// No-op.
    pub fn install() {}

    /// Always false.
    pub fn requested() -> bool {
        false
    }
}

/// Daemon configuration (everything but the scenario and the socket).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Simulated seconds per wall-clock second (1.0 = real time).
    pub accel: f64,
    /// Simulation horizon; pacing stops advancing here (the daemon keeps
    /// serving queries until shutdown).
    pub horizon: SimTime,
    /// Where periodic and final snapshots go (None disables them).
    pub snapshot_dir: Option<PathBuf>,
    /// Simulated time between periodic snapshots.
    pub snapshot_every: SimDuration,
    /// JSONL journal spill sink path (None disables it — and with it the
    /// replay tail, leaving only snapshot-instant durability).
    pub journal_sink: Option<PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            accel: 1.0,
            horizon: SimTime::from_days(14),
            snapshot_dir: None,
            snapshot_every: SimDuration::from_hours(6),
            journal_sink: None,
        }
    }
}

/// The daemon: an engine plus pacing, protocol, and durability plumbing.
pub struct Daemon {
    engine: Engine,
    scenario: Scenario,
    config: DaemonConfig,
    next_snapshot_at: SimTime,
    shutdown: bool,
}

impl Daemon {
    /// Builds a daemon on a fresh engine at time zero.
    ///
    /// # Errors
    ///
    /// Fails if the journal sink cannot be created.
    pub fn new(scenario: Scenario, config: DaemonConfig) -> std::io::Result<Daemon> {
        let engine = scenario.build();
        Daemon::from_engine(engine, scenario, config)
    }

    /// Cold-starts a daemon from the newest snapshot in
    /// `config.snapshot_dir` plus the replay tail in the journal sink.
    /// With no snapshot on disk, the full sink (if any) is replayed from
    /// scratch; with neither, this is [`Daemon::new`].
    ///
    /// # Errors
    ///
    /// Fails on unreadable snapshot/sink files or on replay divergence
    /// (scenario mismatch, tampered log, signature mismatch) — surfaced
    /// as [`std::io::ErrorKind::InvalidData`].
    pub fn resume(scenario: Scenario, config: DaemonConfig) -> std::io::Result<Daemon> {
        let snap = match &config.snapshot_dir {
            Some(dir) => match latest_snapshot(dir)? {
                Some(path) => Some(Snapshot::read(&path)?),
                None => None,
            },
            None => None,
        };
        // Read the tail BEFORE Daemon::from_engine truncates the sink.
        let from_seq = snap.as_ref().map_or(0, |s| s.commands.len() as u64);
        let tail = match &config.journal_sink {
            Some(path) if path.exists() => read_command_tail(path, from_seq)?,
            _ => Vec::new(),
        };
        let mut engine = match &snap {
            Some(s) => Engine::restore(&scenario, s).map_err(invalid_data)?,
            None => scenario.build(),
        };
        for cmd in &tail {
            engine.replay(cmd).map_err(invalid_data)?;
        }
        Daemon::from_engine(engine, scenario, config)
    }

    fn from_engine(
        mut engine: Engine,
        scenario: Scenario,
        config: DaemonConfig,
    ) -> std::io::Result<Daemon> {
        if let Some(path) = &config.journal_sink {
            engine.journal_mut().set_sink(path)?;
        }
        let next_snapshot_at = engine.now().saturating_add(config.snapshot_every);
        Ok(Daemon {
            engine,
            scenario,
            config,
            next_snapshot_at,
            shutdown: false,
        })
    }

    /// The engine (current state, reports, command log).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The scenario this daemon runs.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// True once a `shutdown` verb has been accepted.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown
    }

    /// Advances the engine to `t` immediately, ignoring wall-clock pacing
    /// (scripted drives and tests; [`Daemon::run`] paces on its own).
    pub fn advance_to(&mut self, t: SimTime) {
        self.engine.step_until(t);
    }

    /// Flushes the journal sink, if one is open.
    ///
    /// # Errors
    ///
    /// Propagates the flush failure.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.engine.journal_mut().flush_sink()
    }

    /// Handles one protocol line, returning the single-line JSON response.
    /// Commands are injected at the engine's current (paced) instant and
    /// journaled, so the sink doubles as the replay tail.
    pub fn handle_line(&mut self, line: &str) -> String {
        let line = line.trim();
        if line.is_empty() {
            return err_response("empty request");
        }
        if line.eq_ignore_ascii_case("GET metrics") {
            return self.metrics_json();
        }
        let req = match json::parse_object(line) {
            Ok(m) => m,
            Err(e) => return err_response(&format!("bad request: {e}")),
        };
        let op = match req.get("op").and_then(Value::as_str) {
            Some(op) => op,
            None => return err_response("missing op"),
        };
        match op {
            "status" => self.status_json(),
            "metrics" => self.metrics_json(),
            "create_customer" => match self.engine.apply(Command::CreateCustomer) {
                Ok(CommandOutcome::Customer(c)) => {
                    format!("{{\"ok\": true, \"customer\": {}}}", c.0)
                }
                _ => err_response("create_customer failed"),
            },
            "provision" => self.handle_provision(&req),
            "release" => match req.get("vm").and_then(Value::as_u64) {
                Some(vm) => match self.engine.apply(Command::Release {
                    vm: NestedVmId(vm),
                }) {
                    Ok(_) => format!("{{\"ok\": true, \"released\": {vm}}}"),
                    Err(e) => err_response(&format!("{e:?}")),
                },
                None => err_response("release needs a vm id"),
            },
            "policy" => match req.get("return_to_spot").and_then(Value::as_bool) {
                Some(enabled) => match self.engine.apply(Command::SetReturnToSpot { enabled }) {
                    Ok(_) => format!("{{\"ok\": true, \"return_to_spot\": {enabled}}}"),
                    Err(e) => err_response(&format!("{e:?}")),
                },
                None => err_response("policy needs return_to_spot"),
            },
            "snapshot" => match self.write_snapshot() {
                Ok(Some(path)) => format!(
                    "{{\"ok\": true, \"path\": {}, \"taken_at_secs\": {}}}",
                    json_str(&path.display().to_string()),
                    json_f64(self.engine.now().as_secs_f64())
                ),
                Ok(None) => err_response("no snapshot dir configured"),
                Err(e) => err_response(&format!("snapshot failed: {e}")),
            },
            "shutdown" => {
                self.shutdown = true;
                "{\"ok\": true, \"shutting_down\": true}".to_string()
            }
            other => err_response(&format!("unknown op `{other}`")),
        }
    }

    fn handle_provision(&mut self, req: &BTreeMap<String, Value>) -> String {
        let customer = match req.get("customer").and_then(Value::as_u64) {
            Some(c) => spotcheck_core::types::CustomerId(c),
            None => return err_response("provision needs a customer id"),
        };
        let workload = match req.get("workload").and_then(Value::as_str) {
            None | Some("tpcw") => WorkloadKind::TpcW,
            Some("specjbb") => WorkloadKind::SpecJbb,
            Some(w) => return err_response(&format!("unknown workload `{w}`")),
        };
        let stateless = req
            .get("stateless")
            .and_then(Value::as_bool)
            .unwrap_or(false);
        match self.engine.apply(Command::Provision {
            customer,
            workload,
            stateless,
        }) {
            Ok(CommandOutcome::Vm(vm)) => format!("{{\"ok\": true, \"vm\": {}}}", vm.0),
            Ok(_) => err_response("provision returned no vm"),
            Err(e) => err_response(&format!("{e:?}")),
        }
    }

    fn status_json(&self) -> String {
        format!(
            "{{\"ok\": true, \"now_secs\": {}, \"steps\": {}, \"queue_depth\": {}, \
             \"commands\": {}, \"horizon_secs\": {}, \"backend\": {}}}",
            json_f64(self.engine.now().as_secs_f64()),
            self.engine.steps(),
            self.engine.queue_depth(),
            self.engine.command_log().len(),
            json_f64(self.config.horizon.as_secs_f64()),
            json_str(self.engine.backend().label()),
        )
    }

    /// Live metrics as one JSON line: clocks, availability, cost, the 30 s
    /// violation taxonomy, and exact journal counters.
    pub fn metrics_json(&self) -> String {
        let avail = self.engine.availability_report();
        let cost = self.engine.cost_report();
        let viol = self.engine.violation_report();
        let journal = self.engine.journal();
        let mut s = String::with_capacity(512);
        s.push_str("{\"ok\": true");
        {
            let mut f = |k: &str, v: String| {
                s.push_str(", \"");
                s.push_str(k);
                s.push_str("\": ");
                s.push_str(&v);
            };
            f("now_secs", json_f64(self.engine.now().as_secs_f64()));
            f("steps", self.engine.steps().to_string());
            f("commands", self.engine.command_log().len().to_string());
            f("vms", avail.vms.to_string());
            f("availability_pct", json_f64(avail.availability_pct()));
            f("unavailability", json_f64(avail.unavailability));
            f("degradation", json_f64(avail.degradation));
            f("downtime_secs", json_f64(avail.total_downtime.as_secs_f64()));
            f("revocations", avail.revocations.to_string());
            f("migrations", avail.migrations.to_string());
            f("lost_vms", avail.lost_vms.to_string());
            f("native_cost", json_f64(cost.native_cost));
            f("backup_cost", json_f64(cost.backup_cost));
            f("total_cost", json_f64(cost.total));
            f("cost_per_vm_hr", json_f64(cost.cost_per_vm_hr));
            f("violations", viol.violations.to_string());
            f("journal_entries", journal.len().to_string());
            f("journal_dropped", journal.dropped().to_string());
            f("journal_spilled", journal.spilled().to_string());
        }
        s.push_str(", \"counters\": {");
        for (i, (k, v)) in self.engine.journal().counters().pairs().iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push('"');
            s.push_str(k);
            s.push_str("\": ");
            s.push_str(&v.to_string());
        }
        s.push_str("}}");
        s
    }

    /// Writes a snapshot to the configured directory (atomic rename).
    /// Returns the path, or `None` when no directory is configured.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn write_snapshot(&mut self) -> std::io::Result<Option<PathBuf>> {
        let dir = match &self.config.snapshot_dir {
            Some(d) => d.clone(),
            None => return Ok(None),
        };
        std::fs::create_dir_all(&dir)?;
        // Zero-padded micros so lexicographic order is time order.
        let path = dir.join(format!(
            "snapshot-{:020}.txt",
            self.engine.now().as_micros()
        ));
        self.engine.snapshot().write_atomic(&path)?;
        // A snapshot is only as durable as the sink it pairs with.
        self.engine.journal_mut().flush_sink()?;
        Ok(Some(path))
    }

    /// Runs the daemon until a `shutdown` verb or a termination signal:
    /// paces the engine against the wall clock, serves the protocol on
    /// `listener`, takes periodic snapshots, and on exit flushes the sink
    /// and writes a final snapshot.
    ///
    /// # Errors
    ///
    /// Propagates listener and snapshot filesystem failures.
    pub fn run(&mut self, listener: TcpListener) -> std::io::Result<()> {
        listener.set_nonblocking(true)?;
        let start = Instant::now();
        let sim0 = self.engine.now();
        let mut conns: Vec<Conn> = Vec::new();
        while !self.shutdown && !signal::requested() {
            // Pace: advance simulated time to match the wall clock.
            let target = sim0
                .saturating_add(SimDuration::from_secs_f64(
                    start.elapsed().as_secs_f64() * self.config.accel,
                ))
                .min(self.config.horizon);
            if target > self.engine.now() {
                self.engine.step_until(target);
            }
            if self.engine.now() >= self.next_snapshot_at {
                self.write_snapshot()?;
                self.next_snapshot_at = self.engine.now().saturating_add(self.config.snapshot_every);
            }
            while let Ok((stream, _)) = listener.accept() {
                stream.set_nonblocking(true).ok();
                conns.push(Conn {
                    stream,
                    buf: Vec::new(),
                });
            }
            let mut i = 0;
            while i < conns.len() {
                match self.serve_conn(&mut conns[i]) {
                    ConnState::Open => i += 1,
                    ConnState::Closed => {
                        conns.swap_remove(i);
                    }
                }
                if self.shutdown {
                    break;
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        self.engine.journal_mut().flush_sink()?;
        self.write_snapshot()?;
        Ok(())
    }

    fn serve_conn(&mut self, conn: &mut Conn) -> ConnState {
        let mut chunk = [0u8; 4096];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => return ConnState::Closed,
                Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return ConnState::Closed,
            }
        }
        while let Some(pos) = conn.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = conn.buf.drain(..=pos).collect();
            let line = String::from_utf8_lossy(&line[..line.len() - 1]).into_owned();
            if line.trim().is_empty() {
                continue;
            }
            let mut response = self.handle_line(&line);
            response.push('\n');
            if conn.stream.write_all(response.as_bytes()).is_err() {
                return ConnState::Closed;
            }
            conn.stream.flush().ok();
            if self.shutdown {
                break;
            }
        }
        ConnState::Open
    }
}

struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

enum ConnState {
    Open,
    Closed,
}

fn err_response(msg: &str) -> String {
    format!("{{\"ok\": false, \"error\": {}}}", json_str(msg))
}

fn invalid_data(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
}

/// The newest snapshot file in `dir` (`snapshot-<micros>.txt`; the
/// zero-padded name makes lexicographic max the latest).
///
/// # Errors
///
/// Propagates directory read failures; a missing directory is `None`.
pub fn latest_snapshot(dir: &Path) -> std::io::Result<Option<PathBuf>> {
    if !dir.exists() {
        return Ok(None);
    }
    let mut best: Option<PathBuf> = None;
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = match path.file_name().and_then(|n| n.to_str()) {
            Some(n) => n,
            None => continue,
        };
        if name.starts_with("snapshot-")
            && name.ends_with(".txt")
            && best.as_ref().map_or(true, |b| path > *b)
        {
            best = Some(path);
        }
    }
    Ok(best)
}

/// Reads the replay tail out of a journal JSONL sink: every `command`
/// record with `seq >= from_seq`, in order. All sink command records were
/// journaled by definition.
///
/// # Errors
///
/// Propagates read failures; malformed lines or non-contiguous sequence
/// numbers surface as [`std::io::ErrorKind::InvalidData`].
pub fn read_command_tail(path: &Path, from_seq: u64) -> std::io::Result<Vec<TimedCommand>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut tail: Vec<TimedCommand> = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let m = json::parse_object(&line)
            .map_err(|e| invalid_data(format!("sink line {}: {e}", i + 1)))?;
        if m.get("kind").and_then(Value::as_str) != Some("command") {
            continue;
        }
        let get = |k: &str| {
            m.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| invalid_data(format!("sink line {}: bad `{k}`", i + 1)))
        };
        let seq = get("seq")?;
        if seq < from_seq {
            continue;
        }
        let expected = from_seq + tail.len() as u64;
        if seq != expected {
            return Err(invalid_data(format!(
                "sink line {}: command seq {seq}, expected {expected}",
                i + 1
            )));
        }
        let t = m
            .get("t")
            .and_then(Value::as_f64)
            .ok_or_else(|| invalid_data(format!("sink line {}: bad `t`", i + 1)))?;
        let kind = m
            .get("cmd")
            .and_then(Value::as_str)
            .ok_or_else(|| invalid_data(format!("sink line {}: bad `cmd`", i + 1)))?;
        let cmd = Command::decode(kind, get("a")?, get("b")?, get("c")?)
            .ok_or_else(|| invalid_data(format!("sink line {}: unknown command `{kind}`", i + 1)))?;
        tail.push(TimedCommand {
            seq,
            at: SimTime::from_micros((t * 1e6).round() as u64),
            journaled: true,
            cmd,
        });
    }
    Ok(tail)
}
