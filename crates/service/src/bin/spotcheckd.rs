//! `spotcheckd` — the SpotCheck simulation as a daemon.
//!
//! ```text
//! spotcheckd [--addr 127.0.0.1:7077] [--accel N] [--days N] [--seed N]
//!            [--zone us-east-1a] [--queue wheel|heap]
//!            [--snapshot-dir DIR] [--snapshot-every-secs N]
//!            [--journal-sink FILE] [--resume]
//! ```
//!
//! Binds the TCP protocol socket, prints `listening on <addr>`, and runs
//! until a `shutdown` verb or SIGTERM/SIGINT (both flush the journal sink
//! and write a final snapshot). `--accel N` runs simulated time N times
//! faster than the wall clock; `--resume` cold-starts from the newest
//! snapshot plus the journal sink's replay tail.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::engine::Scenario;
use spotcheck_core::sim::standard_traces;
use spotcheck_service::{signal, Daemon, DaemonConfig};
use spotcheck_simcore::queue::{set_default_backend, QueueBackend};
use spotcheck_simcore::time::{SimDuration, SimTime};

struct Args {
    addr: String,
    accel: f64,
    days: u64,
    seed: u64,
    zone: String,
    queue: Option<QueueBackend>,
    snapshot_dir: Option<PathBuf>,
    snapshot_every_secs: u64,
    journal_sink: Option<PathBuf>,
    resume: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7077".to_string(),
        accel: 1.0,
        days: 14,
        seed: 42,
        zone: "us-east-1a".to_string(),
        queue: None,
        snapshot_dir: None,
        snapshot_every_secs: 21_600,
        journal_sink: None,
        resume: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--accel" => {
                args.accel = value("--accel")?
                    .parse()
                    .map_err(|_| "--accel: not a number".to_string())?;
                if !(args.accel.is_finite() && args.accel > 0.0) {
                    return Err("--accel must be positive".to_string());
                }
            }
            "--days" => {
                args.days = value("--days")?
                    .parse()
                    .map_err(|_| "--days: not an integer".to_string())?;
            }
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: not an integer".to_string())?;
            }
            "--zone" => args.zone = value("--zone")?,
            "--queue" => {
                args.queue = Some(
                    value("--queue")?
                        .parse()
                        .map_err(|_| "--queue: want wheel|heap".to_string())?,
                );
            }
            "--snapshot-dir" => args.snapshot_dir = Some(PathBuf::from(value("--snapshot-dir")?)),
            "--snapshot-every-secs" => {
                args.snapshot_every_secs = value("--snapshot-every-secs")?
                    .parse()
                    .map_err(|_| "--snapshot-every-secs: not an integer".to_string())?;
            }
            "--journal-sink" => args.journal_sink = Some(PathBuf::from(value("--journal-sink")?)),
            "--resume" => args.resume = true,
            "--help" | "-h" => {
                return Err("usage: spotcheckd [--addr A] [--accel N] [--days N] [--seed N] \
                            [--zone Z] [--queue wheel|heap] [--snapshot-dir D] \
                            [--snapshot-every-secs N] [--journal-sink F] [--resume]"
                    .to_string());
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(backend) = args.queue {
        // Construction-time default: the engine latches it when built.
        set_default_backend(backend);
    }
    let horizon = SimDuration::from_days(args.days);
    let config = SpotCheckConfig {
        seed: args.seed,
        ..SpotCheckConfig::default()
    };
    let scenario = Scenario::new(standard_traces(&args.zone, horizon, args.seed), config);
    let daemon_config = DaemonConfig {
        accel: args.accel,
        horizon: SimTime::from_days(args.days),
        snapshot_dir: args.snapshot_dir,
        snapshot_every: SimDuration::from_secs(args.snapshot_every_secs),
        journal_sink: args.journal_sink,
    };
    let mut daemon = match if args.resume {
        Daemon::resume(scenario, daemon_config)
    } else {
        Daemon::new(scenario, daemon_config)
    } {
        Ok(d) => d,
        Err(e) => {
            eprintln!("spotcheckd: startup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    signal::install();
    let listener = match TcpListener::bind(&args.addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("spotcheckd: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    let local = listener.local_addr().map(|a| a.to_string());
    // Tests and scripts parse this line to learn the ephemeral port; make
    // sure it is flushed before the first (possibly long) pacing stretch.
    use std::io::Write as _;
    println!(
        "listening on {}",
        local.as_deref().unwrap_or(args.addr.as_str())
    );
    std::io::stdout().flush().ok();
    match daemon.run(listener) {
        Ok(()) => {
            // Supervisors may have closed our stdout by now; a farewell
            // line is not worth dying over.
            let _ = writeln!(
                std::io::stdout(),
                "spotcheckd: stopped at t={:.0}s after {} events",
                daemon.engine().now().as_secs_f64(),
                daemon.engine().steps()
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("spotcheckd: {e}");
            ExitCode::FAILURE
        }
    }
}
