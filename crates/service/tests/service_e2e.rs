//! End-to-end resumability: a daemon-style run with mid-run command
//! injection, a periodic snapshot, and a journal spill sink must be
//! reconstructible — kill the process, cold-start from the snapshot plus
//! the sink's replay tail, and converge on a final state *byte-identical*
//! to the uninterrupted run, under both queue backends.

use std::path::PathBuf;

use spotcheck_core::config::SpotCheckConfig;
use spotcheck_core::engine::{Command, CommandOutcome, Engine, Scenario};
use spotcheck_core::sim::standard_traces;
use spotcheck_core::snapshot::Snapshot;
use spotcheck_core::types::CustomerId;
use spotcheck_service::{latest_snapshot, read_command_tail, Daemon, DaemonConfig};
use spotcheck_simcore::queue::QueueBackend;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_workloads::WorkloadKind;

fn scratch_dir(tag: &str) -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("spotcheck-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn quick_scenario() -> Scenario {
    Scenario::new(
        standard_traces("us-east-1a", SimDuration::from_days(2), 42),
        SpotCheckConfig::default(),
    )
}

fn create_customer(engine: &mut Engine) -> CustomerId {
    match engine.apply(Command::CreateCustomer) {
        Ok(CommandOutcome::Customer(c)) => c,
        other => panic!("unexpected outcome {other:?}"),
    }
}

/// Drives the "live" half of the scenario on `engine`: commands injected
/// at t=0, 6 h (before the snapshot instant) and 18 h (after it, i.e. in
/// the replay tail), interleaved with stepping. Returns the snapshot
/// taken at the 12 h mark.
fn drive_live_run(engine: &mut Engine, snapshot_path: &std::path::Path) -> Snapshot {
    let c = create_customer(engine);
    engine
        .apply(Command::Provision {
            customer: c,
            workload: WorkloadKind::TpcW,
            stateless: false,
        })
        .expect("provision at t=0");
    engine.step_until(SimTime::from_hours(6));
    engine
        .apply(Command::Provision {
            customer: c,
            workload: WorkloadKind::SpecJbb,
            stateless: true,
        })
        .expect("provision at 6h");
    engine.step_until(SimTime::from_hours(12));
    let snap = engine.snapshot();
    snap.write_atomic(snapshot_path).expect("write snapshot");
    // Life continues after the snapshot: these land only in the sink.
    engine.step_until(SimTime::from_hours(18));
    engine
        .apply(Command::SetReturnToSpot { enabled: false })
        .expect("policy change at 18h");
    engine
        .apply(Command::Provision {
            customer: c,
            workload: WorkloadKind::TpcW,
            stateless: false,
        })
        .expect("provision at 18h");
    engine.step_until(SimTime::from_days(2));
    snap
}

fn cold_start_matches_uninterrupted(backend: QueueBackend) {
    let dir = scratch_dir(&format!("cold-{}", backend.label()));
    let sink = dir.join("journal.jsonl");
    let snap_path = dir.join("snapshot-00000000000043200000000.txt");
    let scenario = quick_scenario();

    // The run that gets "killed" — except we let it finish so its final
    // state is the reference the cold start must reproduce.
    let mut live = scenario.build_with_backend(backend);
    live.journal_mut().set_sink(&sink).expect("open sink");
    let snap = drive_live_run(&mut live, &snap_path);
    live.journal_mut().flush_sink().expect("flush sink");
    let want_signature = live.state_signature();
    let want_journal = live.journal().to_json();
    let want_steps = live.steps();

    // Cold start: newest snapshot + the sink's command tail.
    let found = latest_snapshot(&dir)
        .expect("scan snapshot dir")
        .expect("a snapshot exists");
    let parsed = Snapshot::read(&found).expect("read snapshot");
    assert_eq!(parsed, snap, "snapshot file roundtrips");

    let tail = read_command_tail(&sink, parsed.commands.len() as u64).expect("read tail");
    assert_eq!(tail.len(), 2, "policy change + provision landed after the snapshot");

    let mut revived = Engine::restore_with_backend(&scenario, &parsed, backend).expect("restore");
    for cmd in &tail {
        revived.replay(cmd).expect("replay tail");
    }
    revived.step_until(SimTime::from_days(2));

    assert_eq!(revived.steps(), want_steps);
    assert_eq!(revived.state_signature(), want_signature);
    assert_eq!(revived.journal().to_json(), want_journal);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_start_is_byte_identical_wheel() {
    cold_start_matches_uninterrupted(QueueBackend::Wheel);
}

#[test]
fn cold_start_is_byte_identical_heap() {
    cold_start_matches_uninterrupted(QueueBackend::Heap);
}

#[test]
fn restoring_under_the_other_backend_also_converges() {
    let dir = scratch_dir("cross-backend");
    let sink = dir.join("journal.jsonl");
    let snap_path = dir.join("snapshot-1.txt");
    let scenario = quick_scenario();

    let mut live = scenario.build_with_backend(QueueBackend::Wheel);
    live.journal_mut().set_sink(&sink).expect("open sink");
    drive_live_run(&mut live, &snap_path);
    let want = live.state_signature();

    let parsed = Snapshot::read(&snap_path).expect("read snapshot");
    let tail = read_command_tail(&sink, parsed.commands.len() as u64).expect("read tail");
    let mut revived =
        Engine::restore_with_backend(&scenario, &parsed, QueueBackend::Heap).expect("restore");
    for cmd in &tail {
        revived.replay(cmd).expect("replay tail");
    }
    revived.step_until(SimTime::from_days(2));
    assert_eq!(revived.state_signature(), want);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn daemon_resume_reconstructs_the_interrupted_state() {
    let dir = scratch_dir("daemon-resume");
    let sink = dir.join("journal.jsonl");
    let scenario = quick_scenario();
    let config = DaemonConfig {
        accel: 1e9,
        horizon: SimTime::from_days(2),
        snapshot_dir: Some(dir.clone()),
        snapshot_every: SimDuration::from_hours(6),
        journal_sink: Some(sink.clone()),
    };

    // A "daemon" run driven directly (no socket): snapshot mid-run, then
    // more commands, then the process dies without a final snapshot.
    let (want_signature, want_now) = {
        let mut daemon = Daemon::new(scenario.clone(), config.clone()).expect("daemon");
        assert!(daemon.handle_line(r#"{"op": "create_customer"}"#).contains("\"ok\": true"));
        assert!(daemon
            .handle_line(r#"{"op": "provision", "customer": 0, "workload": "tpcw"}"#)
            .contains("\"vm\": 0"));
        daemon.advance_to(SimTime::from_hours(12));
        daemon.write_snapshot().expect("periodic snapshot");
        daemon.advance_to(SimTime::from_hours(18));
        assert!(daemon
            .handle_line(r#"{"op": "provision", "customer": 0, "workload": "specjbb", "stateless": true}"#)
            .contains("\"ok\": true"));
        // Simulate a crash: flush the sink (the OS would have the data),
        // but take no further snapshot.
        daemon.flush().expect("flush sink");
        (daemon.engine().state_signature(), daemon.engine().now())
    };

    let revived = Daemon::resume(scenario, config).expect("resume");
    assert_eq!(revived.engine().now(), want_now);
    assert_eq!(revived.engine().state_signature(), want_signature);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn protocol_round_trips_without_a_socket() {
    let scenario = quick_scenario();
    let mut daemon = Daemon::new(scenario, DaemonConfig::default()).expect("daemon");

    let status = daemon.handle_line(r#"{"op": "status"}"#);
    assert!(status.contains("\"ok\": true"), "{status}");
    assert!(status.contains("\"now_secs\": 0"), "{status}");

    assert!(daemon
        .handle_line(r#"{"op": "create_customer"}"#)
        .contains("\"customer\": 0"));
    assert!(daemon
        .handle_line(r#"{"op": "provision", "customer": 0}"#)
        .contains("\"vm\": 0"));
    let metrics = daemon.handle_line("GET metrics");
    assert!(metrics.contains("\"availability_pct\""), "{metrics}");
    assert!(metrics.contains("\"counters\""), "{metrics}");
    assert!(!metrics.contains('\n'), "metrics must be one line");
    assert!(daemon
        .handle_line(r#"{"op": "policy", "return_to_spot": false}"#)
        .contains("\"return_to_spot\": false"));
    assert!(daemon
        .handle_line(r#"{"op": "release", "vm": 404}"#)
        .contains("\"ok\": false"));
    assert!(daemon
        .handle_line(r#"{"op": "snapshot"}"#)
        .contains("no snapshot dir"));
    assert!(daemon.handle_line("not json").contains("\"ok\": false"));
    assert!(daemon
        .handle_line(r#"{"op": "warp"}"#)
        .contains("unknown op"));
    assert!(!daemon.shutdown_requested());
    assert!(daemon
        .handle_line(r#"{"op": "shutdown"}"#)
        .contains("\"shutting_down\": true"));
    assert!(daemon.shutdown_requested());
}
