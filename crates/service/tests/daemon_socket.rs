//! Black-box test of the `spotcheckd` binary: spawn it on an ephemeral
//! port, drive the wire protocol over TCP, shut it down cleanly, then
//! cold-start it with `--resume` against the state it left behind.

use std::io::{BufRead as _, BufReader, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct Spawned {
    child: Child,
    addr: String,
}

fn spawn_daemon(dir: &Path, extra: &[&str]) -> Spawned {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_spotcheckd"));
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--accel",
        "1000000",
        "--days",
        "1",
        "--seed",
        "42",
        "--snapshot-dir",
    ])
    .arg(dir.join("snapshots"))
    .arg("--journal-sink")
    .arg(dir.join("journal.jsonl"))
    .args(extra)
    .stdout(Stdio::piped())
    .stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("spawn spotcheckd");
    let stdout = child.stdout.take().expect("stdout piped");
    let mut first = String::new();
    BufReader::new(stdout)
        .read_line(&mut first)
        .expect("read banner");
    let addr = first
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {first:?}"))
        .to_string();
    Spawned { child, addr }
}

fn roundtrip(stream: &mut TcpStream, request: &str) -> String {
    stream
        .write_all(format!("{request}\n").as_bytes())
        .expect("send request");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut response = String::new();
    reader.read_line(&mut response).expect("read response");
    assert!(response.ends_with('\n'), "unterminated response");
    response.trim_end().to_string()
}

fn wait_success(child: &mut Child) {
    for _ in 0..200 {
        if let Some(status) = child.try_wait().expect("try_wait") {
            assert!(status.success(), "spotcheckd exited with {status}");
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    child.kill().ok();
    panic!("spotcheckd did not exit within 10 s of shutdown");
}

fn scratch_dir() -> PathBuf {
    let mut dir = std::env::temp_dir();
    dir.push(format!("spotcheck-daemon-socket-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn daemon_serves_protocol_and_resumes() {
    let dir = scratch_dir();

    let mut spawned = spawn_daemon(&dir, &[]);
    let mut stream = TcpStream::connect(&spawned.addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("set timeout");

    let status = roundtrip(&mut stream, r#"{"op": "status"}"#);
    assert!(status.contains("\"ok\": true"), "{status}");

    let customer = roundtrip(&mut stream, r#"{"op": "create_customer"}"#);
    assert!(customer.contains("\"customer\": 0"), "{customer}");

    let vm = roundtrip(
        &mut stream,
        r#"{"op": "provision", "customer": 0, "workload": "tpcw"}"#,
    );
    assert!(vm.contains("\"vm\": 0"), "{vm}");

    let metrics = roundtrip(&mut stream, "GET metrics");
    assert!(metrics.contains("\"availability_pct\""), "{metrics}");
    assert!(metrics.contains("\"counters\""), "{metrics}");

    let snap = roundtrip(&mut stream, r#"{"op": "snapshot"}"#);
    assert!(snap.contains("\"path\""), "{snap}");

    let bye = roundtrip(&mut stream, r#"{"op": "shutdown"}"#);
    assert!(bye.contains("\"shutting_down\": true"), "{bye}");
    wait_success(&mut spawned.child);

    // The shutdown left a final snapshot + sink behind; a --resume
    // cold-start must come up serving the continued state.
    let mut revived = spawn_daemon(&dir, &["--resume"]);
    let mut stream = TcpStream::connect(&revived.addr).expect("reconnect");
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("set timeout");

    let metrics = roundtrip(&mut stream, r#"{"op": "metrics"}"#);
    assert!(metrics.contains("\"vms\": 1"), "resumed state lost the VM: {metrics}");
    // The command log survived the restart: customer + provision.
    assert!(metrics.contains("\"commands\": 2"), "{metrics}");

    let bye = roundtrip(&mut stream, r#"{"op": "shutdown"}"#);
    assert!(bye.contains("\"shutting_down\": true"), "{bye}");
    wait_success(&mut revived.child);

    std::fs::remove_dir_all(&dir).ok();
}
