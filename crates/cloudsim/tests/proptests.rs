//! Randomized invariant tests for the cloud platform: lifecycle and billing
//! invariants under arbitrary operation sequences, driven by seeded
//! [`SimRng`] streams so every case is reproducible.

use spotcheck_cloudsim::billing::{on_demand_cost, spot_cost, BillingMode};
use spotcheck_cloudsim::cloud::{CloudConfig, CloudSim};
use spotcheck_cloudsim::storage::AttachState;
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::{MarketId, ZoneName};
use spotcheck_spotmarket::trace::PriceTrace;

const CASES: u64 = 48;

fn f64_in(rng: &mut SimRng, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

fn random_trace(rng: &mut SimRng) -> PriceTrace {
    let n = rng.gen_range(1, 40) as usize;
    let mut s = StepSeries::new();
    s.push(SimTime::ZERO, 0.014);
    let mut t = 0u64;
    for _ in 0..n {
        t += rng.gen_range(60, 3_600);
        s.push(SimTime::from_secs(t), f64_in(rng, 0.001, 0.5));
    }
    PriceTrace::new(MarketId::new("m3.medium", "z"), 0.07, s)
}

/// Billing is monotone in time and never negative, in both modes, for
/// arbitrary price traces.
#[test]
fn spot_billing_monotone_and_nonnegative() {
    let mut rng = SimRng::seed(0xB111);
    for case in 0..CASES {
        let trace = random_trace(&mut rng);
        let bid = f64_in(&mut rng, 0.01, 1.0);
        for mode in [BillingMode::Continuous, BillingMode::HourlySpot2014] {
            let mut prev = 0.0;
            for h in 0..8u64 {
                let c = spot_cost(
                    &trace,
                    SimTime::ZERO,
                    SimTime::from_hours(h),
                    bid,
                    false,
                    mode,
                );
                assert!(
                    c >= prev - 1e-12,
                    "case {case} {mode:?}: cost shrank {prev} -> {c}"
                );
                assert!(c >= 0.0, "case {case}");
                prev = c;
            }
        }
    }
}

/// The bid cap holds: cost never exceeds bid x hours, and on-demand
/// continuous billing is exactly price x hours.
#[test]
fn billing_caps() {
    let mut rng = SimRng::seed(0xCA9);
    for case in 0..CASES {
        let trace = random_trace(&mut rng);
        let bid = f64_in(&mut rng, 0.01, 0.2);
        let hours = rng.gen_range(1, 24);
        let end = SimTime::from_hours(hours);
        let c = spot_cost(&trace, SimTime::ZERO, end, bid, false, BillingMode::Continuous);
        assert!(c <= bid * hours as f64 + 1e-9, "case {case}: cost {c} > bid cap");
        let od = on_demand_cost(0.07, SimTime::ZERO, end, BillingMode::Continuous);
        assert!((od - 0.07 * hours as f64).abs() < 1e-9, "case {case}");
    }
}

/// Arbitrary interleavings of volume attach/detach requests never
/// corrupt the attachment state machine: a volume is attached to at
/// most one instance, and completed ops leave consistent state.
#[test]
fn volume_state_machine_is_consistent() {
    let mut rng = SimRng::seed(0x70_1CE);
    for case in 0..CASES {
        let n_ops = rng.gen_range(1, 40) as usize;
        let trace = PriceTrace::new(
            MarketId::new("m3.medium", "z"),
            0.07,
            StepSeries::from_points(vec![(SimTime::ZERO, 0.014)]),
        );
        let mut cloud = CloudSim::new(vec![trace], CloudConfig::default());
        let zone = ZoneName::new("z");
        // Two instances and one volume.
        let mut now = SimTime::ZERO;
        let (a, op, ready) = cloud.request_on_demand("m3.medium", &zone, now).unwrap();
        cloud.complete_op(op, ready).unwrap();
        now = ready;
        let (b, op, ready) = cloud.request_on_demand("m3.medium", &zone, now).unwrap();
        cloud.complete_op(op, ready.max(now)).unwrap();
        now = ready.max(now);
        let vol = cloud.create_volume(8.0);

        let mut pending: Option<(spotcheck_cloudsim::ids::OpId, SimTime)> = None;
        for _ in 0..n_ops {
            let code = rng.gen_range(0, 4) as u8;
            now += SimDuration::from_secs(30);
            // Complete any due op first.
            if let Some((op, ready)) = pending {
                if now >= ready {
                    let _ = cloud.complete_op(op, now);
                    pending = None;
                }
            }
            if pending.is_some() {
                continue;
            }
            let target = if code % 2 == 0 { a } else { b };
            let result = if code < 2 {
                cloud.attach_volume(vol, target, now)
            } else {
                cloud.detach_volume(vol, now)
            };
            if let Ok(p) = result {
                pending = Some(p);
            }
            // Invariant: the volume references at most one instance, and
            // that instance's volume list is consistent with Attached
            // state.
            let state = cloud.volume(vol).unwrap().state;
            if let AttachState::Attached(inst) = state {
                let listed = cloud.instance(inst).unwrap().volumes.contains(&vol);
                assert!(listed, "case {case}: attached volume missing from instance list");
            }
            for inst in [a, b] {
                let listed = cloud.instance(inst).unwrap().volumes.contains(&vol);
                if listed {
                    assert_eq!(state.instance(), Some(inst), "case {case}");
                }
            }
        }
    }
}

/// Spot instances are never billed above their bid even across spikes.
#[test]
fn instance_cost_respects_bid() {
    let mut rng = SimRng::seed(0x51D);
    for case in 0..CASES {
        let trace = random_trace(&mut rng);
        let mut cloud = CloudSim::new(vec![trace], CloudConfig::default());
        let zone = ZoneName::new("z");
        let bid = 0.07;
        let (id, op, ready) = match cloud.request_spot("m3.medium", &zone, bid, SimTime::ZERO) {
            Ok(x) => x,
            Err(_) => continue, // price already above bid at t=0
        };
        if cloud.complete_op(op, ready).is_err() {
            continue;
        }
        let until = ready + SimDuration::from_hours(12);
        let cost = cloud.instance_cost(id, until).unwrap();
        let hours = until.since(ready).as_hours_f64();
        assert!(cost <= bid * hours + 1e-9, "case {case}: cost {cost} over bid cap");
        assert!(cost >= 0.0, "case {case}");
    }
}
