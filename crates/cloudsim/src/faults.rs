//! Fault injection for the platform simulator.
//!
//! A [`FaultPlan`] describes *when the cloud misbehaves*: transient API
//! errors drawn per call with a configurable probability, plus a
//! deterministic schedule of discrete [`FaultEvent`]s — instance
//! crash-stops, backup-server failures, market-wide revocation storms, and
//! control-plane latency spikes. The plan lives in
//! [`CloudConfig`](crate::cloud::CloudConfig); the driver pulls scheduled
//! faults via [`CloudSim::next_scheduled_fault`](crate::cloud::CloudSim::next_scheduled_fault)
//! and delivers each one back through
//! [`CloudSim::apply_fault`](crate::cloud::CloudSim::apply_fault), mirroring
//! how price changes flow through the simulation.
//!
//! Everything is seeded: the same plan against the same controller replays
//! bit-for-bit, which is what makes the chaos suites in
//! `crates/core/tests/failure_injection.rs` debuggable.

use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::market::MarketId;

use crate::cloud::{Notification, RevocationWarning};

/// A discrete injected fault.
///
/// Targets are *ordinals*, not concrete ids: a plan is authored before the
/// run, when no instance or backup-server ids exist yet. At delivery time
/// the ordinal is mapped onto the live population (`pick % alive.len()`),
/// so a plan stays meaningful regardless of how the run unfolded.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// Crash-stop of a running instance: no warning, memory lost, volumes
    /// and ENIs released. `pick` selects among instances running at
    /// delivery time.
    InstanceCrash {
        /// Ordinal into the running-instance population.
        pick: u64,
    },
    /// Failure of a backup server. Backup servers live in the controller,
    /// not the platform, so the platform only relays the ordinal; the
    /// controller maps it onto its live pool.
    BackupFailure {
        /// Ordinal into the live backup-server population.
        pick: u64,
    },
    /// A revocation storm: every running spot instance in `market` receives
    /// a revocation warning regardless of its bid (models a capacity
    /// reclamation rather than a price crossing).
    RevocationStorm {
        /// The market swept by the storm.
        market: MarketId,
    },
    /// Control-plane latency spike: API operation latencies are multiplied
    /// by `factor` for `duration`.
    LatencySpike {
        /// Latency multiplier (>= 1.0 for a slowdown).
        factor: f64,
        /// How long the spike lasts.
        duration: SimDuration,
    },
}

impl FaultEvent {
    /// Stable lowercase name of the fault variant (used in journals).
    pub fn kind(&self) -> &'static str {
        match self {
            FaultEvent::InstanceCrash { .. } => "instance_crash",
            FaultEvent::BackupFailure { .. } => "backup_failure",
            FaultEvent::RevocationStorm { .. } => "revocation_storm",
            FaultEvent::LatencySpike { .. } => "latency_spike",
        }
    }
}

/// What applying a scheduled fault did to the platform, for the driver to
/// react to.
#[derive(Debug, Clone, Default)]
pub struct FaultImpact {
    /// Notifications produced by the fault —
    /// [`Notification::InstanceCrashed`] entries for crash-stops (the
    /// instance is already terminated; its memory is gone).
    pub notifications: Vec<Notification>,
    /// Revocation warnings issued by a storm; the driver must schedule
    /// forced termination at each `terminate_at` exactly as it does for
    /// price-change warnings.
    pub warnings: Vec<RevocationWarning>,
    /// A backup-server failure ordinal for the controller to map onto its
    /// live pool.
    pub backup_pick: Option<u64>,
}

impl FaultImpact {
    /// True if the fault had no effect the driver needs to react to.
    pub fn is_empty(&self) -> bool {
        self.notifications.is_empty() && self.warnings.is_empty() && self.backup_pick.is_none()
    }
}

/// A deterministic fault-injection plan.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability that any platform API call fails transiently with
    /// [`CloudError::ApiUnavailable`](crate::error::CloudError::ApiUnavailable).
    /// Zero (the default) disables the draw entirely, so fault-free runs
    /// consume no RNG and replay identically to builds without this layer.
    pub transient_error_prob: f64,
    /// Scheduled faults, sorted by time (the constructor helpers keep the
    /// order; [`FaultPlan::at`] inserts in place).
    pub schedule: Vec<(SimTime, FaultEvent)>,
}

impl FaultPlan {
    /// An empty plan: no transient errors, no scheduled faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True if the plan injects nothing.
    pub fn is_inert(&self) -> bool {
        self.transient_error_prob <= 0.0 && self.schedule.is_empty()
    }

    /// Adds a scheduled fault, keeping the schedule sorted by time (stable
    /// for equal times: later insertions at the same instant deliver after
    /// earlier ones).
    pub fn at(mut self, time: SimTime, event: FaultEvent) -> Self {
        let idx = self.schedule.partition_point(|(t, _)| *t <= time);
        self.schedule.insert(idx, (time, event));
        self
    }

    /// Sets the transient API error probability.
    pub fn with_transient_errors(mut self, prob: f64) -> Self {
        self.transient_error_prob = prob.clamp(0.0, 1.0);
        self
    }

    /// Generates a randomized chaos plan over `horizon`.
    ///
    /// The mix is tuned for the controller chaos suites: a handful of
    /// backup failures and revocation storms, occasional latency spikes,
    /// and instance crashes kept clear of backup failures — a crash inside
    /// a re-replication window is unrecoverable by construction (the only
    /// full copy of the VM's state was the VM itself), so plans leave the
    /// re-push time (bounded by `crash_guard`) between a backup failure
    /// and the next crash.
    pub fn randomized(
        seed: u64,
        markets: &[MarketId],
        horizon: SimDuration,
        crash_guard: SimDuration,
    ) -> Self {
        let mut rng = SimRng::seed(seed).fork_named("fault-plan");
        let span = horizon.as_secs_f64().max(1.0) as u64;
        let mut plan = FaultPlan::none().with_transient_errors(0.05 + rng.next_f64() * 0.10);
        // Leave the first ~10% of the horizon quiet so the fleet finishes
        // provisioning before the weather turns.
        let quiet = span / 10;
        let window = |rng: &mut SimRng| SimTime::from_secs(rng.gen_range(quiet, span));

        let mut backup_failures: Vec<SimTime> = Vec::new();
        for _ in 0..rng.gen_range(1, 4) {
            let t = window(&mut rng);
            backup_failures.push(t);
            plan = plan.at(t, FaultEvent::BackupFailure { pick: rng.next_u64() });
        }
        if !markets.is_empty() {
            for _ in 0..rng.gen_range(1, 4) {
                let m = markets[rng.gen_range(0, markets.len() as u64) as usize].clone();
                plan = plan.at(window(&mut rng), FaultEvent::RevocationStorm { market: m });
            }
        }
        for _ in 0..rng.gen_range(1, 3) {
            plan = plan.at(
                window(&mut rng),
                FaultEvent::LatencySpike {
                    factor: 2.0 + rng.next_f64() * 8.0,
                    duration: SimDuration::from_secs(rng.gen_range(60, 600)),
                },
            );
        }
        for _ in 0..rng.gen_range(1, 4) {
            let t = window(&mut rng);
            let clear = backup_failures
                .iter()
                .all(|bf| t < *bf || t.saturating_since(*bf) >= crash_guard);
            if clear {
                plan = plan.at(t, FaultEvent::InstanceCrash { pick: rng.next_u64() });
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn market() -> MarketId {
        MarketId::new("m3.medium", "us-east-1a")
    }

    #[test]
    fn at_keeps_schedule_sorted() {
        let plan = FaultPlan::none()
            .at(SimTime::from_secs(300), FaultEvent::InstanceCrash { pick: 0 })
            .at(SimTime::from_secs(100), FaultEvent::BackupFailure { pick: 1 })
            .at(
                SimTime::from_secs(200),
                FaultEvent::RevocationStorm { market: market() },
            );
        let times: Vec<u64> = plan
            .schedule
            .iter()
            .map(|(t, _)| t.since(SimTime::ZERO).as_secs_f64() as u64)
            .collect();
        assert_eq!(times, vec![100, 200, 300]);
    }

    #[test]
    fn inert_plan_is_inert() {
        assert!(FaultPlan::none().is_inert());
        assert!(!FaultPlan::none().with_transient_errors(0.1).is_inert());
        assert!(!FaultPlan::none()
            .at(SimTime::ZERO, FaultEvent::InstanceCrash { pick: 0 })
            .is_inert());
    }

    #[test]
    fn randomized_is_reproducible_and_sorted() {
        let markets = vec![market()];
        let guard = SimDuration::from_secs(180);
        let a = FaultPlan::randomized(7, &markets, SimDuration::from_hours(10), guard);
        let b = FaultPlan::randomized(7, &markets, SimDuration::from_hours(10), guard);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.transient_error_prob, b.transient_error_prob);
        assert!(a.schedule.windows(2).all(|w| w[0].0 <= w[1].0));
        assert!(!a.schedule.is_empty());
        assert!(a.transient_error_prob > 0.0);
    }

    #[test]
    fn randomized_keeps_crashes_clear_of_backup_failures() {
        let markets = vec![market()];
        let guard = SimDuration::from_secs(180);
        for seed in 0..50 {
            let plan = FaultPlan::randomized(seed, &markets, SimDuration::from_hours(10), guard);
            let failures: Vec<SimTime> = plan
                .schedule
                .iter()
                .filter_map(|(t, e)| matches!(e, FaultEvent::BackupFailure { .. }).then_some(*t))
                .collect();
            for (t, e) in &plan.schedule {
                if matches!(e, FaultEvent::InstanceCrash { .. }) {
                    for bf in &failures {
                        assert!(
                            *t < *bf || t.saturating_since(*bf) >= guard,
                            "seed {seed}: crash at {t} inside re-replication window of {bf}"
                        );
                    }
                }
            }
        }
    }
}
