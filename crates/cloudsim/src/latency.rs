//! Control-plane operation latencies (Table 1 of the paper).
//!
//! The paper measured each EC2 operation 20 times over a week on
//! `m3.medium` and reports min/median/mean/max. The model samples each
//! operation from a [`QuartileCalibrated`] distribution matched to exactly
//! those four statistics, so Table 1 regenerates and — more importantly —
//! the ~23 s EC2-operation downtime per migration (detach/attach of the
//! EBS volume and the NIC) that dominates Figures 11/12 emerges from the
//! same numbers the paper measured.

use spotcheck_simcore::dist::{ContinuousDist, QuartileCalibrated};
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::time::SimDuration;

/// The control-plane operations of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloudOp {
    /// Fulfil a spot request and boot the instance.
    StartSpot,
    /// Boot an on-demand instance.
    StartOnDemand,
    /// Terminate an instance.
    Terminate,
    /// Unmount and detach an EBS volume.
    DetachEbs,
    /// Attach and mount an EBS volume.
    AttachEbs,
    /// Attach a network interface.
    AttachNic,
    /// Detach a network interface.
    DetachNic,
}

impl CloudOp {
    /// All operations, in Table 1 order.
    pub const ALL: [CloudOp; 7] = [
        CloudOp::StartSpot,
        CloudOp::StartOnDemand,
        CloudOp::Terminate,
        CloudOp::DetachEbs,
        CloudOp::AttachEbs,
        CloudOp::AttachNic,
        CloudOp::DetachNic,
    ];

    /// Human-readable label matching the paper's row names.
    pub fn label(self) -> &'static str {
        match self {
            CloudOp::StartSpot => "Start spot instance",
            CloudOp::StartOnDemand => "Start on-demand instance",
            CloudOp::Terminate => "Terminate instance",
            CloudOp::DetachEbs => "Unmount and detach EBS",
            CloudOp::AttachEbs => "Attach and mount EBS",
            CloudOp::AttachNic => "Attach Network interface",
            CloudOp::DetachNic => "Detach Network interface",
        }
    }

    /// The published `(min, median, mean, max)` seconds for this operation
    /// (Table 1, m3.medium, 20 samples).
    pub fn table1_stats(self) -> (f64, f64, f64, f64) {
        match self {
            CloudOp::StartSpot => (100.0, 227.0, 224.0, 409.0),
            CloudOp::StartOnDemand => (47.0, 61.0, 62.0, 86.0),
            CloudOp::Terminate => (133.0, 135.0, 136.0, 147.0),
            CloudOp::DetachEbs => (9.6, 10.3, 10.3, 11.3),
            CloudOp::AttachEbs => (4.4, 5.0, 5.1, 9.3),
            CloudOp::AttachNic => (1.0, 3.0, 3.75, 14.0),
            CloudOp::DetachNic => (1.0, 2.0, 3.5, 12.0),
        }
    }
}

/// Samples operation latencies from Table 1-calibrated distributions.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    dists: [QuartileCalibrated; 7],
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::table1()
    }
}

impl LatencyModel {
    /// Builds the model from the paper's Table 1 statistics.
    pub fn table1() -> Self {
        let dists = CloudOp::ALL.map(|op| {
            let (min, median, mean, max) = op.table1_stats();
            QuartileCalibrated::new(min, median, mean, max)
        });
        LatencyModel { dists }
    }

    /// Samples the latency of `op`.
    pub fn sample(&self, op: CloudOp, rng: &mut SimRng) -> SimDuration {
        spotcheck_simcore::metrics::add(1);
        let idx = CloudOp::ALL
            .iter()
            .position(|o| *o == op)
            .expect("op is in ALL");
        SimDuration::from_secs_f64(self.dists[idx].sample(rng))
    }

    /// The expected downtime contribution of the four per-migration EC2
    /// operations (detach/attach EBS + detach/attach NIC): the paper's
    /// measured mean is 22.65 s ("an average downtime of 22.65 seconds").
    pub fn expected_migration_op_downtime(&self) -> SimDuration {
        let mean: f64 = [
            CloudOp::DetachEbs,
            CloudOp::AttachEbs,
            CloudOp::AttachNic,
            CloudOp::DetachNic,
        ]
        .iter()
        .map(|op| op.table1_stats().2)
        .sum();
        SimDuration::from_secs_f64(mean)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::stats::Samples;

    #[test]
    fn migration_op_downtime_matches_paper() {
        let m = LatencyModel::table1();
        let d = m.expected_migration_op_downtime().as_secs_f64();
        assert!((d - 22.65).abs() < 1e-9, "expected 22.65s, got {d}");
    }

    #[test]
    fn sampled_stats_match_each_table1_row() {
        let m = LatencyModel::table1();
        for op in CloudOp::ALL {
            let (min, median, mean, max) = op.table1_stats();
            let mut rng = SimRng::seed(0xC10D + op as u64);
            let mut s = Samples::new();
            for _ in 0..50_000 {
                s.push(m.sample(op, &mut rng).as_secs_f64());
            }
            let (smin, smed, smean, smax) = s.table1_row().unwrap();
            assert!(smin >= min - 0.01, "{}: min {smin} < {min}", op.label());
            assert!(smax <= max + 0.01, "{}: max {smax} > {max}", op.label());
            assert!(
                (smed - median).abs() / median < 0.03,
                "{}: median {smed} vs {median}",
                op.label()
            );
            assert!(
                (smean - mean).abs() / mean < 0.03,
                "{}: mean {smean} vs {mean}",
                op.label()
            );
        }
    }

    #[test]
    fn spot_start_is_slower_than_on_demand() {
        // The paper leans on this: on-demand starts (~60 s) fit within the
        // 120 s warning, spot starts (~224 s) do not.
        let m = LatencyModel::table1();
        let mut rng = SimRng::seed(1);
        let mut spot = Samples::new();
        let mut od = Samples::new();
        for _ in 0..10_000 {
            spot.push(m.sample(CloudOp::StartSpot, &mut rng).as_secs_f64());
            od.push(m.sample(CloudOp::StartOnDemand, &mut rng).as_secs_f64());
        }
        assert!(spot.mean().unwrap() > 2.0 * od.mean().unwrap());
        // On-demand max (86 s) fits in the 120 s warning window.
        assert!(od.max().unwrap() < 120.0);
    }
}
