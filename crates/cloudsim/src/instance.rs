//! Native VM instances and their lifecycle.

use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::market::{MarketId, ZoneName};

use crate::ids::{EniId, InstanceId, VolumeId};
use crate::types::InstanceSpec;

/// The purchase contract of an instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Contract {
    /// Non-revocable, fixed $/hr.
    OnDemand,
    /// Revocable; runs while the market price stays at or below `bid`.
    Spot {
        /// Maximum $/hr the buyer will pay.
        bid: f64,
    },
}

impl Contract {
    /// Returns true for spot contracts.
    pub fn is_spot(&self) -> bool {
        matches!(self, Contract::Spot { .. })
    }

    /// Returns the bid for spot contracts.
    pub fn bid(&self) -> Option<f64> {
        match self {
            Contract::Spot { bid } => Some(*bid),
            Contract::OnDemand => None,
        }
    }
}

/// Lifecycle state of a native instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstanceState {
    /// Start requested; boot in progress.
    Pending,
    /// Running normally.
    Running,
    /// A revocation warning was issued; the platform will forcibly
    /// terminate the instance at `terminate_at`.
    RevocationPending {
        /// Forced-termination deadline.
        terminate_at: SimTime,
    },
    /// A user-initiated terminate is in progress.
    ShuttingDown,
    /// Terminated (whether gracefully or by revocation).
    Terminated,
}

/// A native VM instance rented from the IaaS platform.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance id.
    pub id: InstanceId,
    /// Static type description.
    pub spec: InstanceSpec,
    /// Availability zone.
    pub zone: ZoneName,
    /// Purchase contract.
    pub contract: Contract,
    /// Lifecycle state.
    pub state: InstanceState,
    /// When the start was requested.
    pub requested_at: SimTime,
    /// When the instance entered `Running`, if it has.
    pub started_at: Option<SimTime>,
    /// When the instance terminated, if it has.
    pub terminated_at: Option<SimTime>,
    /// True if termination was a platform revocation (vs. user-initiated).
    pub revoked: bool,
    /// Attached network interfaces.
    pub enis: Vec<EniId>,
    /// Attached EBS volumes.
    pub volumes: Vec<VolumeId>,
}

impl Instance {
    /// Returns the spot market this instance buys from, if it is a spot
    /// instance.
    pub fn market(&self) -> Option<MarketId> {
        if self.contract.is_spot() {
            Some(MarketId::new(
                self.spec.type_name.as_str(),
                self.zone.as_str(),
            ))
        } else {
            None
        }
    }

    /// Returns true if the instance is in a state where it can host work
    /// (running, possibly under a revocation warning).
    pub fn is_usable(&self) -> bool {
        matches!(
            self.state,
            InstanceState::Running | InstanceState::RevocationPending { .. }
        )
    }

    /// Returns true if the instance has fully terminated.
    pub fn is_terminated(&self) -> bool {
        matches!(self.state, InstanceState::Terminated)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::spec_for;

    fn instance(contract: Contract) -> Instance {
        Instance {
            id: InstanceId(1),
            spec: spec_for("m3.medium").unwrap(),
            zone: ZoneName::new("us-east-1a"),
            contract,
            state: InstanceState::Running,
            requested_at: SimTime::ZERO,
            started_at: Some(SimTime::from_secs(60)),
            terminated_at: None,
            revoked: false,
            enis: Vec::new(),
            volumes: Vec::new(),
        }
    }

    #[test]
    fn spot_instance_has_market() {
        let i = instance(Contract::Spot { bid: 0.07 });
        assert_eq!(
            i.market(),
            Some(MarketId::new("m3.medium", "us-east-1a"))
        );
        assert_eq!(i.contract.bid(), Some(0.07));
    }

    #[test]
    fn on_demand_instance_has_no_market() {
        let i = instance(Contract::OnDemand);
        assert_eq!(i.market(), None);
        assert!(!i.contract.is_spot());
        assert_eq!(i.contract.bid(), None);
    }

    #[test]
    fn usability_by_state() {
        let mut i = instance(Contract::OnDemand);
        assert!(i.is_usable());
        i.state = InstanceState::RevocationPending {
            terminate_at: SimTime::from_secs(120),
        };
        assert!(i.is_usable());
        i.state = InstanceState::Pending;
        assert!(!i.is_usable());
        i.state = InstanceState::Terminated;
        assert!(i.is_terminated());
    }
}
