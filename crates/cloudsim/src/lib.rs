//! # spotcheck-cloudsim
//!
//! A discrete-event simulator of a native IaaS platform (EC2 circa
//! 2014-2015), built as the substrate SpotCheck runs on. It provides
//! exactly the interfaces the paper's system consumes:
//!
//! - per-(type, zone) **spot markets** driven by price traces, with
//!   bid-based revocation and the 120-second termination warning;
//! - **on-demand** instances with fixed pricing (and optional, rare
//!   stockouts);
//! - instance lifecycle whose control-plane latencies are sampled from
//!   distributions calibrated to the paper's **Table 1** measurements;
//! - **EBS volumes** and **VPC/ENI private IPs** that can be detached from
//!   a dying host and reattached at a migration destination;
//! - **billing** in both continuous and 2014-EC2 hourly modes.
//!
//! The simulator is passive and deterministic: methods take the current
//! time, asynchronous operations return completion instants for the driver
//! to schedule, and all randomness flows from the configured seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod billing;
pub mod cloud;
pub mod error;
pub mod faults;
pub mod ids;
pub mod instance;
pub mod latency;
pub mod storage;
pub mod types;

pub use billing::BillingMode;
pub use cloud::{CloudConfig, CloudSim, Notification, RevocationWarning};
pub use error::CloudError;
pub use faults::{FaultEvent, FaultImpact, FaultPlan};
pub use ids::{EniId, InstanceId, OpId, PrivateIp, VolumeId};
pub use instance::{Contract, Instance, InstanceState};
pub use latency::{CloudOp, LatencyModel};
pub use storage::{AttachState, Eni, SubnetId, Volume, Vpc};
pub use types::{instance_catalog, spec_for, InstanceSpec};
