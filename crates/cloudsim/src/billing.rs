//! Billing: what an instance costs over a usage interval.
//!
//! Two modes:
//!
//! - [`BillingMode::Continuous`] — integrate the price over wall time. This
//!   is the model the paper's §4.4 analysis and Figure 10 cost numbers use.
//! - [`BillingMode::HourlySpot2014`] — 2014-era EC2 rules: each started
//!   instance-hour is charged at the price in effect at the start of that
//!   hour; the final partial hour is *free* if the platform revoked the
//!   instance and charged in full if the user terminated it. SpotCheck's
//!   economics still hold under these rules; an ablation bench compares the
//!   two.

use spotcheck_simcore::time::SimTime;
use spotcheck_spotmarket::trace::PriceTrace;

/// How usage converts to dollars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BillingMode {
    /// Integrate $/hr price over exact usage time.
    #[default]
    Continuous,
    /// 2014 EC2 rules: per started hour, hour-start price, revoked final
    /// partial hour free.
    HourlySpot2014,
}

/// Computes the cost of an on-demand instance running `[start, end)`.
pub fn on_demand_cost(price_per_hr: f64, start: SimTime, end: SimTime, mode: BillingMode) -> f64 {
    let hours = end.saturating_since(start).as_hours_f64();
    match mode {
        BillingMode::Continuous => price_per_hr * hours,
        BillingMode::HourlySpot2014 => price_per_hr * hours.ceil().max(if hours > 0.0 { 1.0 } else { 0.0 }),
    }
}

/// Computes the cost of a spot instance running `[start, end)` against its
/// market trace.
///
/// The charged price is capped at `bid`: a spot instance is never billed
/// above its bid (the platform revokes it instead; the brief warning
/// window bills at the bid). `revoked` controls the 2014 rule that a
/// platform-revoked final partial hour is free. Returns 0.0 for an empty
/// interval.
pub fn spot_cost(
    trace: &PriceTrace,
    start: SimTime,
    end: SimTime,
    bid: f64,
    revoked: bool,
    mode: BillingMode,
) -> f64 {
    if end <= start {
        return 0.0;
    }
    match mode {
        BillingMode::Continuous => {
            let hours = end.since(start).as_hours_f64();
            trace.mean_capped_price(bid, start, end).unwrap_or(0.0) * hours
        }
        BillingMode::HourlySpot2014 => {
            // Hour starts advance monotonically, so a local cursor turns
            // the per-hour binary searches into one forward walk over the
            // billed window's change points.
            let cursor = spotcheck_spotmarket::archive::TraceCursor::new();
            let mut cost = 0.0;
            let mut hour_start = start;
            loop {
                let hour_end = hour_start + spotcheck_simcore::time::SimDuration::from_hours(1);
                let price = cursor.price_at(trace, hour_start).unwrap_or(0.0).min(bid);
                if hour_end <= end {
                    // Full hour used.
                    cost += price;
                    hour_start = hour_end;
                    if hour_start == end {
                        break;
                    }
                } else {
                    // Final partial hour.
                    if !revoked {
                        cost += price;
                    }
                    break;
                }
            }
            cost
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::series::StepSeries;
    use spotcheck_simcore::time::SimDuration;
    use spotcheck_spotmarket::market::MarketId;

    fn trace() -> PriceTrace {
        // 0.02 for the first hour, 0.04 afterward.
        let s = StepSeries::from_points(vec![
            (SimTime::ZERO, 0.02),
            (SimTime::from_hours(1), 0.04),
        ]);
        PriceTrace::new(MarketId::new("m3.medium", "z"), 0.07, s)
    }

    #[test]
    fn on_demand_continuous_vs_hourly() {
        let start = SimTime::ZERO;
        let end = SimTime::from_secs(90 * 60); // 1.5 h
        assert!((on_demand_cost(0.07, start, end, BillingMode::Continuous) - 0.105).abs() < 1e-12);
        assert!(
            (on_demand_cost(0.07, start, end, BillingMode::HourlySpot2014) - 0.14).abs() < 1e-12
        );
        // Zero-length usage costs nothing in either mode.
        assert_eq!(on_demand_cost(0.07, start, start, BillingMode::Continuous), 0.0);
        assert_eq!(
            on_demand_cost(0.07, start, start, BillingMode::HourlySpot2014),
            0.0
        );
    }

    #[test]
    fn spot_continuous_integrates_price() {
        let t = trace();
        // 2 hours spanning the price change: 0.02 + 0.04.
        let c = spot_cost(
            &t,
            SimTime::ZERO,
            SimTime::from_hours(2),
            f64::INFINITY,
            false,
            BillingMode::Continuous,
        );
        assert!((c - 0.06).abs() < 1e-12);
    }

    #[test]
    fn spot_hourly_charges_hour_start_price() {
        let t = trace();
        // 2.5 hours, user-terminated: hours at 0.02, 0.04, and the partial
        // third hour at 0.04.
        let end = SimTime::from_hours(2) + SimDuration::from_secs(1_800);
        let c = spot_cost(&t, SimTime::ZERO, end, f64::INFINITY, false, BillingMode::HourlySpot2014);
        assert!((c - 0.10).abs() < 1e-12, "c={c}");
        // Same interval but revoked: the partial hour is free.
        let c = spot_cost(&t, SimTime::ZERO, end, f64::INFINITY, true, BillingMode::HourlySpot2014);
        assert!((c - 0.06).abs() < 1e-12, "c={c}");
    }

    #[test]
    fn spot_exact_hours_have_no_partial_hour() {
        let t = trace();
        let c = spot_cost(
            &t,
            SimTime::ZERO,
            SimTime::from_hours(1),
            f64::INFINITY,
            true,
            BillingMode::HourlySpot2014,
        );
        assert!((c - 0.02).abs() < 1e-12);
    }

    #[test]
    fn empty_interval_is_free() {
        let t = trace();
        assert_eq!(
            spot_cost(&t, SimTime::from_hours(1), SimTime::from_hours(1), f64::INFINITY, false, BillingMode::Continuous),
            0.0
        );
    }
}
