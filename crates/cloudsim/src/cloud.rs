//! The native IaaS platform simulator.
//!
//! [`CloudSim`] is a *passive* state machine: every method takes the
//! current [`SimTime`] explicitly, asynchronous operations return an
//! [`OpId`] plus the instant at which they will be ready, and the driver
//! (SpotCheck's controller simulation) schedules a callback and then calls
//! [`CloudSim::complete_op`]. Price changes likewise are pulled by the
//! driver via [`CloudSim::next_price_change_after`] and pushed back in via
//! [`CloudSim::apply_price_change`], which returns the revocation warnings
//! the platform issues — the 120-second termination notice of paper §3.2.

use std::collections::{BTreeMap, BTreeSet};

use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::slab::IdMap;
use spotcheck_simcore::time::{SimDuration, SimTime};
use spotcheck_spotmarket::archive::TraceCursor;
use spotcheck_spotmarket::market::{MarketId, ZoneName};
use spotcheck_spotmarket::trace::PriceTrace;

use crate::billing::{on_demand_cost, spot_cost, BillingMode};
use crate::error::CloudError;
use crate::faults::{FaultEvent, FaultImpact, FaultPlan};
use crate::ids::{EniId, InstanceId, OpId, PrivateIp, VolumeId};
use crate::instance::{Contract, Instance, InstanceState};
use crate::latency::{CloudOp, LatencyModel};
use crate::storage::{AttachState, Eni, SubnetId, Volume, Vpc};
use crate::types::{instance_catalog, InstanceSpec};

/// Platform configuration.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Warning the platform gives before forcibly terminating a revoked
    /// spot instance. EC2: 120 seconds (§3.2).
    pub warning_period: SimDuration,
    /// Billing rules.
    pub billing: BillingMode,
    /// Probability that an on-demand request fails for lack of capacity
    /// (rare in practice; used for failure-injection tests of hot spares).
    pub on_demand_stockout_prob: f64,
    /// RNG seed for latency sampling and stockout draws.
    pub seed: u64,
    /// Fault-injection plan (inert by default).
    pub faults: FaultPlan,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            warning_period: SimDuration::from_secs(120),
            billing: BillingMode::Continuous,
            on_demand_stockout_prob: 0.0,
            seed: 0,
            faults: FaultPlan::none(),
        }
    }
}

/// What a completed asynchronous operation did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notification {
    /// The instance booted and is running.
    InstanceStarted {
        /// The instance.
        instance: InstanceId,
    },
    /// A spot instance's boot raced a price spike and was not fulfilled.
    SpotStartFailed {
        /// The instance (now terminated, never billed).
        instance: InstanceId,
    },
    /// The instance crash-stopped under fault injection: no warning was
    /// given, its memory is lost, and its volumes and ENIs were released.
    InstanceCrashed {
        /// The instance.
        instance: InstanceId,
    },
    /// The instance finished terminating.
    InstanceTerminated {
        /// The instance.
        instance: InstanceId,
        /// True if the platform revoked it.
        revoked: bool,
    },
    /// The volume is attached.
    VolumeAttached {
        /// The volume.
        volume: VolumeId,
        /// The instance it attached to.
        instance: InstanceId,
    },
    /// The volume attach raced the instance's termination and was rolled
    /// back; the volume is available again.
    VolumeAttachFailed {
        /// The volume.
        volume: VolumeId,
    },
    /// The volume is detached and available.
    VolumeDetached {
        /// The volume.
        volume: VolumeId,
    },
    /// The interface is attached.
    EniAttached {
        /// The interface.
        eni: EniId,
        /// The instance it attached to.
        instance: InstanceId,
    },
    /// The ENI attach raced the instance's termination and was rolled back.
    EniAttachFailed {
        /// The interface.
        eni: EniId,
    },
    /// The interface is detached and available.
    EniDetached {
        /// The interface.
        eni: EniId,
    },
}

impl Notification {
    /// Stable lowercase name of the notification variant (used in
    /// journals).
    pub fn kind(&self) -> &'static str {
        match self {
            Notification::InstanceStarted { .. } => "instance_started",
            Notification::SpotStartFailed { .. } => "spot_start_failed",
            Notification::InstanceCrashed { .. } => "instance_crashed",
            Notification::InstanceTerminated { .. } => "instance_terminated",
            Notification::VolumeAttached { .. } => "volume_attached",
            Notification::VolumeAttachFailed { .. } => "volume_attach_failed",
            Notification::VolumeDetached { .. } => "volume_detached",
            Notification::EniAttached { .. } => "eni_attached",
            Notification::EniAttachFailed { .. } => "eni_attach_failed",
            Notification::EniDetached { .. } => "eni_detached",
        }
    }
}

/// A spot-revocation warning: the platform will forcibly terminate
/// `instance` at `terminate_at` unless it is relinquished first.
#[derive(Debug, Clone, PartialEq)]
pub struct RevocationWarning {
    /// The doomed instance.
    pub instance: InstanceId,
    /// Its market.
    pub market: MarketId,
    /// Forced-termination deadline (warning time + warning period).
    pub terminate_at: SimTime,
}

#[derive(Debug, Clone)]
enum OpKind {
    StartInstance(InstanceId),
    TerminateInstance(InstanceId),
    AttachVolume(VolumeId, InstanceId),
    DetachVolume(VolumeId),
    AttachEni(EniId, InstanceId),
    DetachEni(EniId),
}

#[derive(Debug, Clone)]
struct PendingOp {
    kind: OpKind,
    ready_at: SimTime,
}

/// One loaded spot market: its price trace plus a [`TraceCursor`] so the
/// hot per-market lookups (`spot_price`, price-change re-arms) walk
/// forward with the simulation clock instead of binary-searching the
/// whole series every call.
#[derive(Debug)]
struct MarketEntry {
    trace: PriceTrace,
    cursor: TraceCursor,
}

/// The simulated native IaaS platform.
pub struct CloudSim {
    config: CloudConfig,
    catalog: BTreeMap<String, InstanceSpec>,
    markets: BTreeMap<MarketId, MarketEntry>,
    instances: IdMap<InstanceId, Instance>,
    /// Instances currently in `Running` state, in id order. Terminated
    /// instances stay in `instances` forever (billing history), so fault
    /// and revocation paths index the live subset instead of scanning.
    running: BTreeSet<InstanceId>,
    /// Running spot instances per market, in id order — the candidate set
    /// a price change can revoke.
    spot_running: BTreeMap<MarketId, BTreeSet<InstanceId>>,
    volumes: BTreeMap<VolumeId, Volume>,
    enis: BTreeMap<EniId, Eni>,
    vpc: Vpc,
    ops: BTreeMap<OpId, PendingOp>,
    latency: LatencyModel,
    rng: SimRng,
    /// Dedicated stream for transient-error draws, so enabling fault
    /// injection never perturbs latency or stockout sampling.
    fault_rng: SimRng,
    /// Index of the next undelivered entry in `config.faults.schedule`.
    fault_cursor: usize,
    /// Active control-plane latency spike: `(until, factor)`.
    latency_spike: Option<(SimTime, f64)>,
    next_instance: u64,
    next_volume: u64,
    next_eni: u64,
    next_op: u64,
}

impl CloudSim {
    /// Creates a platform loaded with the given market price traces.
    pub fn new(traces: Vec<PriceTrace>, config: CloudConfig) -> Self {
        let catalog = instance_catalog()
            .into_iter()
            .map(|s| (s.type_name.as_str().to_string(), s))
            .collect();
        let rng = SimRng::seed(config.seed).fork_named("cloudsim");
        let fault_rng = SimRng::seed(config.seed).fork_named("faults");
        CloudSim {
            config,
            catalog,
            markets: traces
                .into_iter()
                .map(|t| {
                    (
                        t.market.clone(),
                        MarketEntry {
                            trace: t,
                            cursor: TraceCursor::new(),
                        },
                    )
                })
                .collect(),
            instances: IdMap::new(),
            running: BTreeSet::new(),
            spot_running: BTreeMap::new(),
            volumes: BTreeMap::new(),
            enis: BTreeMap::new(),
            vpc: Vpc::new(),
            ops: BTreeMap::new(),
            latency: LatencyModel::table1(),
            rng,
            fault_rng,
            fault_cursor: 0,
            latency_spike: None,
            next_instance: 0,
            next_volume: 0,
            next_eni: 0,
            next_op: 0,
        }
    }

    /// Returns the platform configuration.
    pub fn config(&self) -> &CloudConfig {
        &self.config
    }

    /// Returns the instance-type spec, if the type exists.
    pub fn spec(&self, type_name: &str) -> Option<&InstanceSpec> {
        self.catalog.get(type_name)
    }

    /// Returns the loaded spot markets.
    pub fn markets(&self) -> impl Iterator<Item = &MarketId> {
        self.markets.keys()
    }

    /// Returns the price trace of a market, if loaded.
    pub fn market_trace(&self, market: &MarketId) -> Option<&PriceTrace> {
        self.markets.get(market).map(|e| &e.trace)
    }

    /// Returns the current spot price in a market (cursor-accelerated;
    /// identical to `trace.price_at(now)`).
    pub fn spot_price(&self, market: &MarketId, now: SimTime) -> Option<f64> {
        let e = self.markets.get(market)?;
        e.cursor.price_at(&e.trace, now)
    }

    /// Returns the first price change in `market` strictly after `now`
    /// (cursor-accelerated; identical to
    /// `trace.prices.next_change_after(now)`).
    pub fn next_change_after(&self, market: &MarketId, now: SimTime) -> Option<(SimTime, f64)> {
        let e = self.markets.get(market)?;
        e.cursor.next_change_after(&e.trace, now)
    }

    /// Returns the earliest price change strictly after `now` across all
    /// markets (for the driver's event scheduling).
    pub fn next_price_change_after(&self, now: SimTime) -> Option<(SimTime, MarketId)> {
        self.markets
            .iter()
            .filter_map(|(id, e)| {
                e.cursor
                    .next_change_after(&e.trace, now)
                    .map(|(at, _)| (at, id.clone()))
            })
            .min_by_key(|(at, _)| *at)
    }

    /// Syncs the running-instance indexes with `id`'s current state. Call
    /// after any mutation of an instance's `state`.
    fn note_state(&mut self, id: InstanceId) {
        let (is_running, market) = self
            .instances
            .get(&id)
            .map(|i| (matches!(i.state, InstanceState::Running), i.market()))
            .unwrap_or((false, None));
        if is_running {
            self.running.insert(id);
        } else {
            self.running.remove(&id);
        }
        if let Some(m) = market {
            let set = self.spot_running.entry(m).or_default();
            if is_running {
                set.insert(id);
            } else {
                set.remove(&id);
            }
        }
    }

    /// Returns a shared view of an instance.
    pub fn instance(&self, id: InstanceId) -> Result<&Instance, CloudError> {
        self.instances
            .get(&id)
            .ok_or(CloudError::UnknownInstance(id))
    }

    /// Returns a shared view of a volume.
    pub fn volume(&self, id: VolumeId) -> Result<&Volume, CloudError> {
        self.volumes.get(&id).ok_or(CloudError::UnknownVolume(id))
    }

    /// Returns a shared view of an ENI.
    pub fn eni(&self, id: EniId) -> Result<&Eni, CloudError> {
        self.enis.get(&id).ok_or(CloudError::UnknownEni(id))
    }

    fn fresh_op(&mut self, kind: OpKind, op: CloudOp, now: SimTime) -> (OpId, SimTime) {
        let id = OpId(self.next_op);
        self.next_op += 1;
        let mut delay = self.latency.sample(op, &mut self.rng);
        if let Some((until, factor)) = self.latency_spike {
            if now < until {
                delay = delay.mul_f64(factor);
            } else {
                self.latency_spike = None;
            }
        }
        let ready_at = now + delay;
        self.ops.insert(id, PendingOp { kind, ready_at });
        (id, ready_at)
    }

    /// Draws the transient-API-error dice for one control-plane call.
    ///
    /// Gated on the probability so fault-free configurations consume no
    /// randomness and replay identically.
    fn transient_gate(&mut self) -> Result<(), CloudError> {
        if self.config.faults.transient_error_prob > 0.0
            && self.fault_rng.next_f64() < self.config.faults.transient_error_prob
        {
            return Err(CloudError::ApiUnavailable);
        }
        Ok(())
    }

    /// Returns the next scheduled fault not yet handed to the driver, and
    /// advances the cursor past it.
    ///
    /// The driver arms the first fault at bootstrap and re-arms the next
    /// one each time a fault fires — the same pull model as
    /// [`CloudSim::next_price_change_after`].
    pub fn next_scheduled_fault(&mut self) -> Option<(SimTime, FaultEvent)> {
        let entry = self.config.faults.schedule.get(self.fault_cursor).cloned();
        if entry.is_some() {
            self.fault_cursor += 1;
        }
        entry
    }

    /// Applies a scheduled fault at `now` and reports its impact.
    ///
    /// Crash-stops terminate the instance immediately (no warning, memory
    /// lost, billing stops, volumes and ENIs released). Storms issue
    /// revocation warnings for every running spot instance in the market.
    /// Latency spikes affect subsequent operation latencies. Backup-server
    /// failures are relayed for the controller to apply to its pool.
    pub fn apply_fault(&mut self, event: &FaultEvent, now: SimTime) -> FaultImpact {
        let mut impact = FaultImpact::default();
        match event {
            FaultEvent::InstanceCrash { pick } => {
                // `self.running` holds exactly the Running instances, in id
                // order — the same victim list the old full scan produced.
                let running: Vec<InstanceId> = self.running.iter().copied().collect();
                if running.is_empty() {
                    return impact;
                }
                let victim = running[(pick % running.len() as u64) as usize];
                let Some(inst) = self.instances.get_mut(&victim) else {
                    return impact;
                };
                inst.state = InstanceState::Terminated;
                inst.terminated_at = Some(now);
                inst.revoked = true;
                let vols = std::mem::take(&mut inst.volumes);
                let enis = std::mem::take(&mut inst.enis);
                for v in vols {
                    if let Some(vol) = self.volumes.get_mut(&v) {
                        vol.state = AttachState::Available;
                    }
                }
                for e in enis {
                    if let Some(eni) = self.enis.get_mut(&e) {
                        eni.state = AttachState::Available;
                    }
                }
                self.note_state(victim);
                impact
                    .notifications
                    .push(Notification::InstanceCrashed { instance: victim });
            }
            FaultEvent::BackupFailure { pick } => {
                impact.backup_pick = Some(*pick);
            }
            FaultEvent::RevocationStorm { market } => {
                let terminate_at = now + self.config.warning_period;
                // Same id-order walk as the old full scan, restricted to the
                // market's running spot instances via the index. The full
                // predicate is re-checked against the instance itself.
                let ids: Vec<InstanceId> = self
                    .spot_running
                    .get(market)
                    .map(|s| s.iter().copied().collect())
                    .unwrap_or_default();
                for id in ids {
                    let Some(inst) = self.instances.get_mut(&id) else {
                        continue;
                    };
                    if inst.market().as_ref() == Some(market)
                        && matches!(inst.state, InstanceState::Running)
                    {
                        inst.state = InstanceState::RevocationPending { terminate_at };
                        impact.warnings.push(RevocationWarning {
                            instance: id,
                            market: market.clone(),
                            terminate_at,
                        });
                        self.note_state(id);
                    }
                }
            }
            FaultEvent::LatencySpike { factor, duration } => {
                self.latency_spike = Some((now + *duration, *factor));
            }
        }
        impact
    }

    /// Requests a spot instance at `bid` $/hr.
    ///
    /// Returns the new instance id plus the boot operation and its ready
    /// time.
    ///
    /// # Errors
    ///
    /// Fails if the type or market is unknown or the bid is below the
    /// current spot price.
    pub fn request_spot(
        &mut self,
        type_name: &str,
        zone: &ZoneName,
        bid: f64,
        now: SimTime,
    ) -> Result<(InstanceId, OpId, SimTime), CloudError> {
        self.transient_gate()?;
        let spec = self
            .catalog
            .get(type_name)
            .ok_or_else(|| CloudError::UnknownType(type_name.to_string()))?
            .clone();
        let market = MarketId::new(type_name, zone.as_str());
        let price = self
            .spot_price(&market, now)
            .ok_or_else(|| CloudError::UnknownMarket(market.to_string()))?;
        if price > bid {
            return Err(CloudError::BidBelowPrice { bid, price });
        }
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        self.instances.insert(
            id,
            Instance {
                id,
                spec,
                zone: zone.clone(),
                contract: Contract::Spot { bid },
                state: InstanceState::Pending,
                requested_at: now,
                started_at: None,
                terminated_at: None,
                revoked: false,
                enis: Vec::new(),
                volumes: Vec::new(),
            },
        );
        let (op, ready) = self.fresh_op(OpKind::StartInstance(id), CloudOp::StartSpot, now);
        Ok((id, op, ready))
    }

    /// Requests an on-demand instance.
    ///
    /// # Errors
    ///
    /// Fails if the type is unknown or (rarely, per configuration) capacity
    /// is unavailable.
    pub fn request_on_demand(
        &mut self,
        type_name: &str,
        zone: &ZoneName,
        now: SimTime,
    ) -> Result<(InstanceId, OpId, SimTime), CloudError> {
        self.transient_gate()?;
        let spec = self
            .catalog
            .get(type_name)
            .ok_or_else(|| CloudError::UnknownType(type_name.to_string()))?
            .clone();
        if self.config.on_demand_stockout_prob > 0.0
            && self.rng.next_f64() < self.config.on_demand_stockout_prob
        {
            return Err(CloudError::CapacityUnavailable);
        }
        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        self.instances.insert(
            id,
            Instance {
                id,
                spec,
                zone: zone.clone(),
                contract: Contract::OnDemand,
                state: InstanceState::Pending,
                requested_at: now,
                started_at: None,
                terminated_at: None,
                revoked: false,
                enis: Vec::new(),
                volumes: Vec::new(),
            },
        );
        let (op, ready) = self.fresh_op(OpKind::StartInstance(id), CloudOp::StartOnDemand, now);
        Ok((id, op, ready))
    }

    /// User-initiated termination. Billing stops now; the instance reports
    /// terminated when the operation completes.
    ///
    /// # Errors
    ///
    /// Fails if the instance is unknown or not in a terminable state.
    pub fn terminate(
        &mut self,
        id: InstanceId,
        now: SimTime,
    ) -> Result<(OpId, SimTime), CloudError> {
        self.transient_gate()?;
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(CloudError::UnknownInstance(id))?;
        if !inst.is_usable() && !matches!(inst.state, InstanceState::Pending) {
            return Err(CloudError::InvalidState(format!(
                "instance {id} cannot be terminated from {:?}",
                inst.state
            )));
        }
        inst.state = InstanceState::ShuttingDown;
        inst.terminated_at = Some(now);
        self.note_state(id);
        let (op, ready) = self.fresh_op(OpKind::TerminateInstance(id), CloudOp::Terminate, now);
        Ok((op, ready))
    }

    /// Applies a price change in `market` at `now`: every running spot
    /// instance whose bid is now below the price receives a revocation
    /// warning (EC2's two-minute termination notice).
    ///
    /// The driver must call [`CloudSim::force_terminate`] for each returned
    /// warning at its `terminate_at` (unless the instance was relinquished
    /// earlier).
    pub fn apply_price_change(&mut self, market: &MarketId, now: SimTime) -> Vec<RevocationWarning> {
        let Some(price) = self.spot_price(market, now) else {
            return Vec::new();
        };
        let terminate_at = now + self.config.warning_period;
        let mut warnings = Vec::new();
        // Walk only the market's running spot instances (id order, matching
        // the old full scan) instead of every instance ever created — price
        // ticks are the hottest cloud-side path in a long fleet run.
        let ids: Vec<InstanceId> = self
            .spot_running
            .get(market)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        for id in ids {
            let Some(inst) = self.instances.get_mut(&id) else {
                continue;
            };
            if inst.market().as_ref() == Some(market)
                && matches!(inst.state, InstanceState::Running)
                && inst.contract.bid().is_some_and(|bid| bid < price)
            {
                inst.state = InstanceState::RevocationPending { terminate_at };
                warnings.push(RevocationWarning {
                    instance: id,
                    market: market.clone(),
                    terminate_at,
                });
                self.note_state(id);
            }
        }
        warnings
    }

    /// Forcibly terminates a revoked instance at its warning deadline.
    /// Attached volumes and ENIs are released back to `Available`.
    ///
    /// Returns `Ok(false)` without effect if the instance was already
    /// relinquished or terminated (the race is benign); `Ok(true)` if the
    /// platform reclaimed it here.
    pub fn force_terminate(&mut self, id: InstanceId, now: SimTime) -> Result<bool, CloudError> {
        let inst = self
            .instances
            .get_mut(&id)
            .ok_or(CloudError::UnknownInstance(id))?;
        match inst.state {
            InstanceState::RevocationPending { .. } => {
                inst.state = InstanceState::Terminated;
                inst.terminated_at = Some(now);
                inst.revoked = true;
                let vols = std::mem::take(&mut inst.volumes);
                let enis = std::mem::take(&mut inst.enis);
                for v in vols {
                    if let Some(vol) = self.volumes.get_mut(&v) {
                        vol.state = AttachState::Available;
                    }
                }
                for e in enis {
                    if let Some(eni) = self.enis.get_mut(&e) {
                        eni.state = AttachState::Available;
                    }
                }
                self.note_state(id);
                Ok(true)
            }
            InstanceState::ShuttingDown | InstanceState::Terminated => Ok(false),
            _ => Err(CloudError::InvalidState(format!(
                "force_terminate on instance {id} in {:?}",
                inst.state
            ))),
        }
    }

    /// Creates an EBS volume (control-plane create is effectively instant
    /// relative to Table 1 scales).
    pub fn create_volume(&mut self, size_gib: f64) -> VolumeId {
        let id = VolumeId(self.next_volume);
        self.next_volume += 1;
        self.volumes.insert(
            id,
            Volume {
                id,
                size_gib,
                state: AttachState::Available,
            },
        );
        id
    }

    /// Begins attaching a volume to an instance.
    ///
    /// # Errors
    ///
    /// Fails if either id is unknown, the volume is not available, or the
    /// instance is not usable.
    pub fn attach_volume(
        &mut self,
        volume: VolumeId,
        instance: InstanceId,
        now: SimTime,
    ) -> Result<(OpId, SimTime), CloudError> {
        self.transient_gate()?;
        let inst = self
            .instances
            .get(&instance)
            .ok_or(CloudError::UnknownInstance(instance))?;
        if !inst.is_usable() {
            return Err(CloudError::InvalidState(format!(
                "attach_volume: instance {instance} is {:?}",
                inst.state
            )));
        }
        let vol = self
            .volumes
            .get_mut(&volume)
            .ok_or(CloudError::UnknownVolume(volume))?;
        if vol.state != AttachState::Available {
            return Err(CloudError::InvalidState(format!(
                "attach_volume: volume {volume} is {:?}",
                vol.state
            )));
        }
        vol.state = AttachState::Attaching(instance);
        Ok(self.fresh_op(OpKind::AttachVolume(volume, instance), CloudOp::AttachEbs, now))
    }

    /// Begins detaching a volume from its instance.
    ///
    /// # Errors
    ///
    /// Fails if the volume is unknown or not attached.
    pub fn detach_volume(
        &mut self,
        volume: VolumeId,
        now: SimTime,
    ) -> Result<(OpId, SimTime), CloudError> {
        self.transient_gate()?;
        let vol = self
            .volumes
            .get_mut(&volume)
            .ok_or(CloudError::UnknownVolume(volume))?;
        let AttachState::Attached(inst) = vol.state else {
            return Err(CloudError::InvalidState(format!(
                "detach_volume: volume {volume} is {:?}",
                vol.state
            )));
        };
        vol.state = AttachState::Detaching(inst);
        Ok(self.fresh_op(OpKind::DetachVolume(volume), CloudOp::DetachEbs, now))
    }

    /// Creates an ENI, optionally with a private IP already assigned.
    pub fn create_eni(&mut self, ip: Option<PrivateIp>) -> EniId {
        let id = EniId(self.next_eni);
        self.next_eni += 1;
        self.enis.insert(
            id,
            Eni {
                id,
                ip,
                state: AttachState::Available,
            },
        );
        id
    }

    /// Begins attaching an ENI to an instance.
    ///
    /// # Errors
    ///
    /// Fails if either id is unknown, the ENI is busy, or the instance is
    /// not usable.
    pub fn attach_eni(
        &mut self,
        eni: EniId,
        instance: InstanceId,
        now: SimTime,
    ) -> Result<(OpId, SimTime), CloudError> {
        self.transient_gate()?;
        let inst = self
            .instances
            .get(&instance)
            .ok_or(CloudError::UnknownInstance(instance))?;
        if !inst.is_usable() {
            return Err(CloudError::InvalidState(format!(
                "attach_eni: instance {instance} is {:?}",
                inst.state
            )));
        }
        let e = self.enis.get_mut(&eni).ok_or(CloudError::UnknownEni(eni))?;
        if e.state != AttachState::Available {
            return Err(CloudError::InvalidState(format!(
                "attach_eni: ENI {eni} is {:?}",
                e.state
            )));
        }
        e.state = AttachState::Attaching(instance);
        Ok(self.fresh_op(OpKind::AttachEni(eni, instance), CloudOp::AttachNic, now))
    }

    /// Begins detaching an ENI from its instance.
    ///
    /// # Errors
    ///
    /// Fails if the ENI is unknown or not attached.
    pub fn detach_eni(&mut self, eni: EniId, now: SimTime) -> Result<(OpId, SimTime), CloudError> {
        self.transient_gate()?;
        let e = self.enis.get_mut(&eni).ok_or(CloudError::UnknownEni(eni))?;
        let AttachState::Attached(inst) = e.state else {
            return Err(CloudError::InvalidState(format!(
                "detach_eni: ENI {eni} is {:?}",
                e.state
            )));
        };
        e.state = AttachState::Detaching(inst);
        Ok(self.fresh_op(OpKind::DetachEni(eni), CloudOp::DetachNic, now))
    }

    /// Assigns a private IP to an available or attached ENI (a fast VPC
    /// control-plane call, modeled as instant).
    ///
    /// # Errors
    ///
    /// Fails if the ENI is unknown.
    pub fn assign_ip(&mut self, eni: EniId, ip: PrivateIp) -> Result<(), CloudError> {
        let e = self.enis.get_mut(&eni).ok_or(CloudError::UnknownEni(eni))?;
        e.ip = Some(ip);
        Ok(())
    }

    /// Removes the private IP from an ENI.
    ///
    /// # Errors
    ///
    /// Fails if the ENI is unknown.
    pub fn unassign_ip(&mut self, eni: EniId) -> Result<Option<PrivateIp>, CloudError> {
        let e = self.enis.get_mut(&eni).ok_or(CloudError::UnknownEni(eni))?;
        Ok(e.ip.take())
    }

    /// Creates a customer subnet in the derivative cloud's VPC.
    pub fn create_subnet(&mut self) -> SubnetId {
        self.vpc.create_subnet()
    }

    /// Allocates a private IP in a subnet.
    pub fn allocate_ip(&mut self, subnet: SubnetId) -> PrivateIp {
        self.vpc.allocate_ip(subnet)
    }

    /// Completes a pending operation at `now` and applies its effect.
    ///
    /// # Errors
    ///
    /// Fails if the op is unknown/duplicated or `now` precedes the op's
    /// ready time.
    pub fn complete_op(&mut self, op: OpId, now: SimTime) -> Result<Notification, CloudError> {
        let pending = self.ops.remove(&op).ok_or(CloudError::UnknownOp(op))?;
        if now < pending.ready_at {
            // Put it back; completing early is a driver bug.
            let ready_at = pending.ready_at;
            self.ops.insert(op, pending);
            return Err(CloudError::InvalidState(format!(
                "op {op} completed at {now} before ready time {ready_at}"
            )));
        }
        match pending.kind {
            OpKind::StartInstance(id) => {
                let market_price = {
                    let inst = self.instances.get(&id).ok_or(CloudError::UnknownInstance(id))?;
                    inst.market().and_then(|m| self.spot_price(&m, now))
                };
                let inst = self
                    .instances
                    .get_mut(&id)
                    .ok_or(CloudError::UnknownInstance(id))?;
                if !matches!(inst.state, InstanceState::Pending) {
                    return Err(CloudError::InvalidState(format!(
                        "start completion for instance {id} in {:?}",
                        inst.state
                    )));
                }
                // A spot boot races the market: if the price rose above the
                // bid during boot, the request is not fulfilled.
                if let (Contract::Spot { bid }, Some(price)) = (inst.contract, market_price) {
                    if price > bid {
                        inst.state = InstanceState::Terminated;
                        inst.terminated_at = Some(now);
                        inst.revoked = true;
                        return Ok(Notification::SpotStartFailed { instance: id });
                    }
                }
                inst.state = InstanceState::Running;
                inst.started_at = Some(now);
                self.note_state(id);
                Ok(Notification::InstanceStarted { instance: id })
            }
            OpKind::TerminateInstance(id) => {
                let inst = self
                    .instances
                    .get_mut(&id)
                    .ok_or(CloudError::UnknownInstance(id))?;
                let revoked = inst.revoked;
                inst.state = InstanceState::Terminated;
                let vols = std::mem::take(&mut inst.volumes);
                let enis = std::mem::take(&mut inst.enis);
                for v in vols {
                    if let Some(vol) = self.volumes.get_mut(&v) {
                        vol.state = AttachState::Available;
                    }
                }
                for e in enis {
                    if let Some(eni) = self.enis.get_mut(&e) {
                        eni.state = AttachState::Available;
                    }
                }
                self.note_state(id);
                Ok(Notification::InstanceTerminated {
                    instance: id,
                    revoked,
                })
            }
            OpKind::AttachVolume(vid, iid) => {
                let vol = self
                    .volumes
                    .get_mut(&vid)
                    .ok_or(CloudError::UnknownVolume(vid))?;
                match self.instances.get_mut(&iid) {
                    Some(inst) if inst.is_usable() => {
                        vol.state = AttachState::Attached(iid);
                        inst.volumes.push(vid);
                        Ok(Notification::VolumeAttached {
                            volume: vid,
                            instance: iid,
                        })
                    }
                    _ => {
                        vol.state = AttachState::Available;
                        Ok(Notification::VolumeAttachFailed { volume: vid })
                    }
                }
            }
            OpKind::DetachVolume(vid) => {
                let vol = self
                    .volumes
                    .get_mut(&vid)
                    .ok_or(CloudError::UnknownVolume(vid))?;
                if let AttachState::Detaching(iid) = vol.state {
                    if let Some(inst) = self.instances.get_mut(&iid) {
                        inst.volumes.retain(|v| *v != vid);
                    }
                }
                vol.state = AttachState::Available;
                Ok(Notification::VolumeDetached { volume: vid })
            }
            OpKind::AttachEni(eid, iid) => {
                let eni = self.enis.get_mut(&eid).ok_or(CloudError::UnknownEni(eid))?;
                match self.instances.get_mut(&iid) {
                    Some(inst) if inst.is_usable() => {
                        eni.state = AttachState::Attached(iid);
                        inst.enis.push(eid);
                        Ok(Notification::EniAttached {
                            eni: eid,
                            instance: iid,
                        })
                    }
                    _ => {
                        eni.state = AttachState::Available;
                        Ok(Notification::EniAttachFailed { eni: eid })
                    }
                }
            }
            OpKind::DetachEni(eid) => {
                let eni = self.enis.get_mut(&eid).ok_or(CloudError::UnknownEni(eid))?;
                if let AttachState::Detaching(iid) = eni.state {
                    if let Some(inst) = self.instances.get_mut(&iid) {
                        inst.enis.retain(|e| *e != eid);
                    }
                }
                eni.state = AttachState::Available;
                Ok(Notification::EniDetached { eni: eid })
            }
        }
    }

    /// Computes the accrued cost of an instance from its start through
    /// `until` (or its termination, whichever is earlier).
    ///
    /// Instances that never started cost nothing.
    ///
    /// # Errors
    ///
    /// Fails if the instance (or its spot market trace) is unknown.
    pub fn instance_cost(&self, id: InstanceId, until: SimTime) -> Result<f64, CloudError> {
        let inst = self.instance(id)?;
        let Some(start) = inst.started_at else {
            return Ok(0.0);
        };
        let end = inst.terminated_at.unwrap_or(until).min(until);
        if end <= start {
            return Ok(0.0);
        }
        match inst.contract {
            Contract::OnDemand => Ok(on_demand_cost(
                inst.spec.on_demand_price,
                start,
                end,
                self.config.billing,
            )),
            Contract::Spot { bid } => {
                let market = inst.market().ok_or_else(|| {
                    CloudError::InvalidState(format!("spot instance {id} has no market"))
                })?;
                let entry = self
                    .markets
                    .get(&market)
                    .ok_or_else(|| CloudError::UnknownMarket(market.to_string()))?;
                Ok(spot_cost(
                    &entry.trace,
                    start,
                    end,
                    bid,
                    inst.revoked,
                    self.config.billing,
                ))
            }
        }
    }

    /// Iterates over all instances.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// A 64-bit digest of the platform's dynamic state (instances, pending
    /// operations, attachments, fault cursor, RNG streams).
    ///
    /// Two platforms that processed the same call sequence digest
    /// identically; the engine folds this into its snapshot signature so a
    /// restore that diverged anywhere in the platform is rejected rather
    /// than silently trusted.
    pub fn state_digest(&self) -> u64 {
        let mut d = spotcheck_simcore::digest::Digest64::new();
        d.write_usize(self.instances.len());
        for inst in self.instances.values() {
            d.write_u64(inst.id.0);
            d.write_str(&format!("{:?}", inst.state));
            d.write_bool(inst.revoked);
            d.write_u64(inst.started_at.map(|t| t.as_micros()).unwrap_or(u64::MAX));
            d.write_u64(inst.terminated_at.map(|t| t.as_micros()).unwrap_or(u64::MAX));
            d.write_usize(inst.enis.len());
            d.write_usize(inst.volumes.len());
        }
        d.write_usize(self.running.len());
        for (m, set) in &self.spot_running {
            d.write_str(&m.to_string());
            d.write_usize(set.len());
        }
        d.write_usize(self.volumes.len());
        d.write_usize(self.enis.len());
        d.write_usize(self.ops.len());
        for (op, pending) in &self.ops {
            d.write_u64(op.0);
            d.write_u64(pending.ready_at.as_micros());
        }
        d.write_usize(self.fault_cursor);
        for w in self.rng.state_words() {
            d.write_u64(w);
        }
        for w in self.fault_rng.state_words() {
            d.write_u64(w);
        }
        d.write_u64(self.next_instance);
        d.write_u64(self.next_volume);
        d.write_u64(self.next_eni);
        d.write_u64(self.next_op);
        d.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spotcheck_simcore::series::StepSeries;

    fn zone() -> ZoneName {
        ZoneName::new("us-east-1a")
    }

    /// A trace with a spike in [1000, 2000) seconds.
    fn spiky_trace() -> PriceTrace {
        let s = StepSeries::from_points(vec![
            (SimTime::ZERO, 0.02),
            (SimTime::from_secs(1_000), 0.50),
            (SimTime::from_secs(2_000), 0.02),
        ]);
        PriceTrace::new(MarketId::new("m3.medium", "us-east-1a"), 0.07, s)
    }

    fn cloud() -> CloudSim {
        CloudSim::new(vec![spiky_trace()], CloudConfig::default())
    }

    fn boot_spot(cloud: &mut CloudSim, bid: f64, now: SimTime) -> InstanceId {
        let (id, op, ready) = cloud
            .request_spot("m3.medium", &zone(), bid, now)
            .expect("spot request");
        let n = cloud.complete_op(op, ready).expect("boot completes");
        assert_eq!(n, Notification::InstanceStarted { instance: id });
        id
    }

    #[test]
    fn spot_request_rejected_when_bid_below_price() {
        let mut c = cloud();
        let err = c
            .request_spot("m3.medium", &zone(), 0.01, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, CloudError::BidBelowPrice { .. }));
        // During the spike, an od-level bid is also rejected.
        let err = c
            .request_spot("m3.medium", &zone(), 0.07, SimTime::from_secs(1_500))
            .unwrap_err();
        assert!(matches!(err, CloudError::BidBelowPrice { .. }));
    }

    #[test]
    fn spot_boot_and_revocation_flow() {
        let mut c = cloud();
        let id = boot_spot(&mut c, 0.07, SimTime::ZERO);
        assert!(c.instance(id).unwrap().is_usable());

        // The price spikes above the bid at t=1000s.
        let market = MarketId::new("m3.medium", "us-east-1a");
        let warnings = c.apply_price_change(&market, SimTime::from_secs(1_000));
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].instance, id);
        assert_eq!(
            warnings[0].terminate_at,
            SimTime::from_secs(1_000) + SimDuration::from_secs(120)
        );
        // The instance is still usable during the warning window.
        assert!(c.instance(id).unwrap().is_usable());

        // The platform reclaims it at the deadline.
        let reclaimed = c.force_terminate(id, warnings[0].terminate_at).unwrap();
        assert!(reclaimed);
        let inst = c.instance(id).unwrap();
        assert!(inst.is_terminated());
        assert!(inst.revoked);
    }

    #[test]
    fn relinquish_before_deadline_avoids_forced_termination() {
        let mut c = cloud();
        let id = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let market = MarketId::new("m3.medium", "us-east-1a");
        let warnings = c.apply_price_change(&market, SimTime::from_secs(1_000));
        // SpotCheck migrates off and relinquishes at t=1030.
        let (op, ready) = c.terminate(id, SimTime::from_secs(1_030)).unwrap();
        c.complete_op(op, ready).unwrap();
        // The platform's forced termination then finds nothing to do.
        let reclaimed = c.force_terminate(id, warnings[0].terminate_at).unwrap();
        assert!(!reclaimed);
        assert!(!c.instance(id).unwrap().revoked);
    }

    #[test]
    fn on_demand_instances_never_get_warnings() {
        let mut c = cloud();
        let (id, op, ready) = c
            .request_on_demand("m3.medium", &zone(), SimTime::ZERO)
            .unwrap();
        c.complete_op(op, ready).unwrap();
        let market = MarketId::new("m3.medium", "us-east-1a");
        let warnings = c.apply_price_change(&market, SimTime::from_secs(1_000));
        assert!(warnings.is_empty());
        assert!(c.instance(id).unwrap().is_usable());
    }

    #[test]
    fn spot_boot_races_price_spike() {
        let mut c = cloud();
        // Request just before the spike: price is 0.02, bid 0.07 accepted.
        let (id, op, ready) = c
            .request_spot("m3.medium", &zone(), 0.07, SimTime::from_secs(990))
            .unwrap();
        // Boot latency (>=100s) lands inside the spike window.
        assert!(ready > SimTime::from_secs(1_000));
        let n = c.complete_op(op, ready).unwrap();
        assert_eq!(n, Notification::SpotStartFailed { instance: id });
        assert!(c.instance(id).unwrap().is_terminated());
        // Never started -> never billed.
        assert_eq!(c.instance_cost(id, SimTime::from_hours(1)).unwrap(), 0.0);
    }

    #[test]
    fn volume_lifecycle_and_migration_reattach() {
        let mut c = cloud();
        let a = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let v = c.create_volume(8.0);
        let t0 = SimTime::from_secs(300);
        let (op, ready) = c.attach_volume(v, a, t0).unwrap();
        assert_eq!(
            c.complete_op(op, ready).unwrap(),
            Notification::VolumeAttached {
                volume: v,
                instance: a
            }
        );
        assert_eq!(c.instance(a).unwrap().volumes, vec![v]);
        // Detach (e.g. during a migration)...
        let (op, ready) = c.detach_volume(v, ready).unwrap();
        assert_eq!(
            c.complete_op(op, ready).unwrap(),
            Notification::VolumeDetached { volume: v }
        );
        assert!(c.instance(a).unwrap().volumes.is_empty());
        // ...and reattach to a new instance.
        let b = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let (op, ready) = c.attach_volume(v, b, ready).unwrap();
        assert!(matches!(
            c.complete_op(op, ready).unwrap(),
            Notification::VolumeAttached { .. }
        ));
        assert_eq!(c.volume(v).unwrap().state, AttachState::Attached(b));
    }

    #[test]
    fn attach_races_termination_and_rolls_back() {
        let mut c = cloud();
        let a = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let v = c.create_volume(8.0);
        let (op, ready) = c.attach_volume(v, a, SimTime::from_secs(300)).unwrap();
        // The instance is revoked and reclaimed before the attach lands.
        let market = MarketId::new("m3.medium", "us-east-1a");
        c.apply_price_change(&market, SimTime::from_secs(1_000));
        c.force_terminate(a, SimTime::from_secs(1_120)).unwrap();
        let n = c.complete_op(op, ready.max(SimTime::from_secs(1_121))).unwrap();
        assert_eq!(n, Notification::VolumeAttachFailed { volume: v });
        assert_eq!(c.volume(v).unwrap().state, AttachState::Available);
    }

    #[test]
    fn eni_lifecycle_with_ip_reassignment() {
        let mut c = cloud();
        let a = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let b = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let subnet = c.create_subnet();
        let ip = c.allocate_ip(subnet);
        let e1 = c.create_eni(Some(ip));
        let t0 = SimTime::from_secs(300);
        let (op, ready) = c.attach_eni(e1, a, t0).unwrap();
        c.complete_op(op, ready).unwrap();
        // Migration: unassign the IP from e1, detach it, create a new ENI on
        // the destination with the same IP (paper §3.4 / Figure 4).
        assert_eq!(c.unassign_ip(e1).unwrap(), Some(ip));
        let (op, ready) = c.detach_eni(e1, ready).unwrap();
        c.complete_op(op, ready).unwrap();
        let e2 = c.create_eni(None);
        c.assign_ip(e2, ip).unwrap();
        let (op, ready) = c.attach_eni(e2, b, ready).unwrap();
        assert_eq!(
            c.complete_op(op, ready).unwrap(),
            Notification::EniAttached { eni: e2, instance: b }
        );
        assert_eq!(c.eni(e2).unwrap().ip, Some(ip));
        assert_eq!(c.instance(b).unwrap().enis, vec![e2]);
    }

    #[test]
    fn forced_termination_releases_resources() {
        let mut c = cloud();
        let a = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let v = c.create_volume(8.0);
        let e = c.create_eni(None);
        let t0 = SimTime::from_secs(100);
        let (op, ready) = c.attach_volume(v, a, t0).unwrap();
        c.complete_op(op, ready).unwrap();
        let (op, ready) = c.attach_eni(e, a, t0).unwrap();
        c.complete_op(op, ready).unwrap();
        let market = MarketId::new("m3.medium", "us-east-1a");
        c.apply_price_change(&market, SimTime::from_secs(1_000));
        c.force_terminate(a, SimTime::from_secs(1_120)).unwrap();
        assert_eq!(c.volume(v).unwrap().state, AttachState::Available);
        assert_eq!(c.eni(e).unwrap().state, AttachState::Available);
    }

    #[test]
    fn cost_accrues_only_while_started() {
        let mut c = cloud();
        let id = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let started = c.instance(id).unwrap().started_at.unwrap();
        // One hour after start at price 0.02... except the spike window
        // [1000,2000) at 0.50 overlaps. Compute expected by integration.
        let until = started + SimDuration::from_hours(1);
        let cost = c.instance_cost(id, until).unwrap();
        // Billing caps the charged price at the bid: the spike window
        // [1000, 2000) bills at 0.07, not 0.50.
        let trace = spiky_trace();
        let expected = trace.mean_capped_price(0.07, started, until).unwrap() * 1.0;
        assert!((cost - expected).abs() < 1e-9);
        assert!(cost < trace.mean_price(started, until).unwrap());
    }

    #[test]
    fn completing_op_early_or_twice_fails() {
        let mut c = cloud();
        let (_, op, ready) = c
            .request_spot("m3.medium", &zone(), 0.07, SimTime::ZERO)
            .unwrap();
        let err = c.complete_op(op, SimTime::ZERO).unwrap_err();
        assert!(matches!(err, CloudError::InvalidState(_)));
        c.complete_op(op, ready).unwrap();
        let err = c.complete_op(op, ready).unwrap_err();
        assert!(matches!(err, CloudError::UnknownOp(_)));
    }

    #[test]
    fn stockout_probability_surfaces_capacity_errors() {
        let mut config = CloudConfig {
            on_demand_stockout_prob: 1.0,
            ..CloudConfig::default()
        };
        config.seed = 7;
        let mut c = CloudSim::new(vec![spiky_trace()], config);
        let err = c
            .request_on_demand("m3.medium", &zone(), SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, CloudError::CapacityUnavailable);
    }

    #[test]
    fn next_price_change_scans_markets() {
        let c = cloud();
        let (at, market) = c.next_price_change_after(SimTime::ZERO).unwrap();
        assert_eq!(at, SimTime::from_secs(1_000));
        assert_eq!(market, MarketId::new("m3.medium", "us-east-1a"));
        assert!(c.next_price_change_after(SimTime::from_secs(2_000)).is_none());
    }

    #[test]
    fn transient_errors_surface_and_clear() {
        let config = CloudConfig {
            faults: FaultPlan::none().with_transient_errors(1.0),
            ..CloudConfig::default()
        };
        let mut c = CloudSim::new(vec![spiky_trace()], config);
        let err = c
            .request_spot("m3.medium", &zone(), 0.07, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(err, CloudError::ApiUnavailable);
        // Clearing the probability restores normal service (same CloudSim).
        c.config.faults.transient_error_prob = 0.0;
        assert!(c.request_spot("m3.medium", &zone(), 0.07, SimTime::ZERO).is_ok());
    }

    #[test]
    fn crash_stop_terminates_without_warning_and_releases_resources() {
        let plan = FaultPlan::none().at(
            SimTime::from_secs(500),
            FaultEvent::InstanceCrash { pick: 0 },
        );
        let config = CloudConfig {
            faults: plan,
            ..CloudConfig::default()
        };
        let mut c = CloudSim::new(vec![spiky_trace()], config);
        let a = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let v = c.create_volume(8.0);
        let (op, ready) = c.attach_volume(v, a, SimTime::from_secs(100)).unwrap();
        c.complete_op(op, ready).unwrap();

        let (at, fault) = c.next_scheduled_fault().unwrap();
        assert_eq!(at, SimTime::from_secs(500));
        let impact = c.apply_fault(&fault, at);
        assert_eq!(
            impact.notifications,
            vec![Notification::InstanceCrashed { instance: a }]
        );
        let inst = c.instance(a).unwrap();
        assert!(inst.is_terminated());
        assert!(inst.revoked, "crash stops billing like a revocation");
        assert_eq!(c.volume(v).unwrap().state, AttachState::Available);
        assert!(c.next_scheduled_fault().is_none());
    }

    #[test]
    fn crash_with_no_running_instances_is_a_no_op() {
        let mut c = cloud();
        let impact = c.apply_fault(&FaultEvent::InstanceCrash { pick: 3 }, SimTime::ZERO);
        assert!(impact.is_empty());
    }

    #[test]
    fn revocation_storm_warns_every_spot_instance_in_market() {
        let mut c = cloud();
        let a = boot_spot(&mut c, 0.07, SimTime::ZERO);
        let b = boot_spot(&mut c, 5.0, SimTime::ZERO);
        let (od, op, ready) = c
            .request_on_demand("m3.medium", &zone(), SimTime::ZERO)
            .unwrap();
        c.complete_op(op, ready).unwrap();
        let market = MarketId::new("m3.medium", "us-east-1a");
        let impact = c.apply_fault(
            &FaultEvent::RevocationStorm { market },
            SimTime::from_secs(500),
        );
        // Both spot instances are warned regardless of bid; on-demand is not.
        let mut warned: Vec<InstanceId> = impact.warnings.iter().map(|w| w.instance).collect();
        warned.sort();
        assert_eq!(warned, vec![a, b]);
        assert_eq!(
            impact.warnings[0].terminate_at,
            SimTime::from_secs(500) + SimDuration::from_secs(120)
        );
        assert!(c.instance(od).unwrap().is_usable());
        for w in &impact.warnings {
            assert!(c.force_terminate(w.instance, w.terminate_at).unwrap());
        }
    }

    #[test]
    fn latency_spike_slows_ops_then_expires() {
        let mut c = cloud();
        let baseline = {
            // Sample the undisturbed boot latency from a twin platform.
            let mut twin = cloud();
            let (_, _, ready) = twin
                .request_spot("m3.medium", &zone(), 0.07, SimTime::ZERO)
                .unwrap();
            ready.since(SimTime::ZERO)
        };
        c.apply_fault(
            &FaultEvent::LatencySpike {
                factor: 10.0,
                duration: SimDuration::from_secs(1_000),
            },
            SimTime::ZERO,
        );
        let (_, _, ready) = c
            .request_spot("m3.medium", &zone(), 0.07, SimTime::ZERO)
            .unwrap();
        assert_eq!(ready.since(SimTime::ZERO), baseline.mul_f64(10.0));
        // After the window the multiplier is gone: latencies are back in
        // the model's normal range (boot latencies are minutes, not hours).
        let later = SimTime::from_secs(2_000);
        let (_, _, ready) = c.request_spot("m3.medium", &zone(), 0.07, later).unwrap();
        assert!(ready.since(later) < baseline.mul_f64(10.0));
    }

    #[test]
    fn backup_failure_relays_pick() {
        let mut c = cloud();
        let impact = c.apply_fault(&FaultEvent::BackupFailure { pick: 42 }, SimTime::ZERO);
        assert_eq!(impact.backup_pick, Some(42));
        assert!(impact.warnings.is_empty() && impact.notifications.is_empty());
    }

    #[test]
    fn unknown_ids_error_cleanly() {
        let mut c = cloud();
        assert!(c.instance(InstanceId(99)).is_err());
        assert!(c.volume(VolumeId(99)).is_err());
        assert!(c.eni(EniId(99)).is_err());
        assert!(c.detach_volume(VolumeId(99), SimTime::ZERO).is_err());
        assert!(c.terminate(InstanceId(99), SimTime::ZERO).is_err());
        assert!(c
            .request_spot("x9.mega", &zone(), 1.0, SimTime::ZERO)
            .is_err());
    }
}
