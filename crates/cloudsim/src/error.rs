//! Cloud API errors.

use std::fmt;

use crate::ids::{EniId, InstanceId, OpId, VolumeId};

/// Errors returned by the cloud API.
#[derive(Debug, Clone, PartialEq)]
pub enum CloudError {
    /// The requested instance type does not exist in the catalog.
    UnknownType(String),
    /// No price trace is loaded for the requested spot market.
    UnknownMarket(String),
    /// The spot bid is below the current market price, so the request
    /// cannot be fulfilled.
    BidBelowPrice {
        /// The submitted bid, $/hr.
        bid: f64,
        /// The current market price, $/hr.
        price: f64,
    },
    /// The platform has no on-demand capacity of this type right now (rare;
    /// see paper §4.3 on on-demand stockouts).
    CapacityUnavailable,
    /// The instance id is unknown.
    UnknownInstance(InstanceId),
    /// The volume id is unknown.
    UnknownVolume(VolumeId),
    /// The ENI id is unknown.
    UnknownEni(EniId),
    /// The operation id is unknown or already completed.
    UnknownOp(OpId),
    /// The control plane rejected the call transiently (throttling or an
    /// internal error); retrying after a backoff is expected to succeed.
    /// Only produced under fault injection.
    ApiUnavailable,
    /// An operation was attempted in an incompatible state.
    InvalidState(String),
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::UnknownType(t) => write!(f, "unknown instance type: {t}"),
            CloudError::UnknownMarket(m) => write!(f, "no price trace for market: {m}"),
            CloudError::BidBelowPrice { bid, price } => {
                write!(f, "bid ${bid}/hr is below current spot price ${price}/hr")
            }
            CloudError::CapacityUnavailable => write!(f, "on-demand capacity unavailable"),
            CloudError::UnknownInstance(i) => write!(f, "unknown instance: {i}"),
            CloudError::UnknownVolume(v) => write!(f, "unknown volume: {v}"),
            CloudError::UnknownEni(e) => write!(f, "unknown ENI: {e}"),
            CloudError::UnknownOp(o) => write!(f, "unknown or completed operation: {o}"),
            CloudError::ApiUnavailable => {
                write!(f, "API temporarily unavailable (transient fault)")
            }
            CloudError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
        }
    }
}

impl std::error::Error for CloudError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display() {
        assert!(CloudError::UnknownType("x9.mega".into())
            .to_string()
            .contains("x9.mega"));
        let e = CloudError::BidBelowPrice {
            bid: 0.05,
            price: 0.09,
        };
        assert!(e.to_string().contains("0.05") && e.to_string().contains("0.09"));
        assert!(CloudError::UnknownInstance(InstanceId(7))
            .to_string()
            .contains("i-00000007"));
    }
}
