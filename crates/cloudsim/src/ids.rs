//! Opaque identifiers for cloud resources.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u64);

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{:08x}"), self.0)
            }
        }

        // Ids are allocated monotonically, so they index dense
        // `spotcheck_simcore::slab::IdMap` storage directly.
        impl spotcheck_simcore::slab::DenseKey for $name {
            fn dense_index(self) -> usize {
                self.0 as usize
            }
            fn from_dense_index(index: usize) -> Self {
                $name(index as u64)
            }
        }
    };
}

id_type!(
    /// Identifies a native VM instance.
    InstanceId,
    "i"
);
id_type!(
    /// Identifies an EBS volume.
    VolumeId,
    "vol"
);
id_type!(
    /// Identifies an elastic network interface.
    EniId,
    "eni"
);
id_type!(
    /// Identifies an asynchronous control-plane operation.
    OpId,
    "op"
);

/// A private IPv4 address within the VPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrivateIp(pub u32);

impl fmt::Display for PrivateIp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.0.to_be_bytes();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(InstanceId(0xab).to_string(), "i-000000ab");
        assert_eq!(VolumeId(1).to_string(), "vol-00000001");
        assert_eq!(EniId(2).to_string(), "eni-00000002");
        assert_eq!(OpId(3).to_string(), "op-00000003");
        assert_eq!(PrivateIp(0x0A00_0105).to_string(), "10.0.1.5");
    }
}
