//! Instance-type catalog.
//!
//! Mirrors the slice of the 2014 EC2 catalog the paper uses: the HVM-capable
//! m3 family (the only family XenBlanket can run on, §6), plus the c3/r3
//! families and `m1.small` for the market-statistics figures.

use spotcheck_spotmarket::market::TypeName;
use spotcheck_spotmarket::profiles;

/// Static description of an instance type.
#[derive(Debug, Clone)]
pub struct InstanceSpec {
    /// The type name, e.g. `m3.medium`.
    pub type_name: TypeName,
    /// Virtual CPUs.
    pub vcpus: u32,
    /// Memory in GiB.
    pub mem_gib: f64,
    /// Capacity in `m3.medium`-equivalent nested-VM slots.
    pub medium_slots: u32,
    /// On-demand $/hr.
    pub on_demand_price: f64,
    /// Whether the type supports hardware virtual machines (HVM). The
    /// XenBlanket nested hypervisor requires HVM (paper §5), so SpotCheck
    /// can only host nested VMs on HVM types.
    pub hvm: bool,
    /// NIC bandwidth available to the instance, bytes/second.
    pub network_bps: f64,
}

/// Returns the full instance-type catalog.
pub fn instance_catalog() -> Vec<InstanceSpec> {
    profiles::catalog()
        .into_iter()
        .map(|e| {
            let name = e.type_name.as_str().to_string();
            let slots = e.medium_slots;
            // m1.small predates HVM; everything else in the catalog is HVM.
            let hvm = name != "m1.small";
            // 2014-era EC2: "moderate" network for small types (~125 MB/s
            // shared Gbit), "high" for xlarge and up (~250 MB/s).
            let network_bps = if slots >= 4 { 250e6 } else { 125e6 };
            InstanceSpec {
                type_name: e.type_name,
                vcpus: slots.max(1),
                mem_gib: 3.75 * slots as f64,
                medium_slots: slots,
                on_demand_price: e.profile.on_demand_price,
                hvm,
                network_bps,
            }
        })
        .collect()
}

/// Looks up a spec by type name.
pub fn spec_for(type_name: &str) -> Option<InstanceSpec> {
    instance_catalog()
        .into_iter()
        .find(|s| s.type_name.as_str() == type_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_profiles() {
        let specs = instance_catalog();
        assert_eq!(specs.len(), profiles::catalog().len());
    }

    #[test]
    fn m3_medium_is_hvm_m1_small_is_not() {
        assert!(spec_for("m3.medium").unwrap().hvm);
        assert!(!spec_for("m1.small").unwrap().hvm);
    }

    #[test]
    fn slots_scale_memory() {
        let m = spec_for("m3.medium").unwrap();
        let l = spec_for("m3.large").unwrap();
        assert_eq!(m.medium_slots, 1);
        assert_eq!(l.medium_slots, 2);
        assert!((l.mem_gib / m.mem_gib - 2.0).abs() < 1e-9);
    }

    #[test]
    fn backup_server_type_has_high_network() {
        // The paper uses m3.xlarge backup servers for their
        // price/performance; the model gives xlarge+ the "high" NIC tier.
        assert_eq!(spec_for("m3.xlarge").unwrap().network_bps, 250e6);
        assert_eq!(spec_for("m3.medium").unwrap().network_bps, 125e6);
    }
}
