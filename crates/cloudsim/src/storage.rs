//! Network-attached storage (EBS) and elastic network interfaces (ENI).
//!
//! SpotCheck's migration transparency rests on two EC2 facilities (paper
//! §3.4-§3.5): EBS volumes that can be detached from a revoked host and
//! reattached at the destination, and VPC private IPs carried by ENIs that
//! can likewise be moved. Both are modeled here as simple attachment state
//! machines; their (slow) control-plane latencies come from
//! [`crate::latency`].

use crate::ids::{EniId, InstanceId, PrivateIp, VolumeId};

/// Attachment state shared by volumes and ENIs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttachState {
    /// Not attached to any instance.
    Available,
    /// Attach operation in flight toward the instance.
    Attaching(InstanceId),
    /// Attached to the instance.
    Attached(InstanceId),
    /// Detach operation in flight from the instance.
    Detaching(InstanceId),
}

impl AttachState {
    /// Returns the instance the resource is (becoming) attached to, if any.
    pub fn instance(&self) -> Option<InstanceId> {
        match self {
            AttachState::Available => None,
            AttachState::Attaching(i) | AttachState::Attached(i) | AttachState::Detaching(i) => {
                Some(*i)
            }
        }
    }
}

/// A network-attached disk volume.
#[derive(Debug, Clone)]
pub struct Volume {
    /// Volume id.
    pub id: VolumeId,
    /// Size in GiB.
    pub size_gib: f64,
    /// Attachment state.
    pub state: AttachState,
}

/// An elastic network interface carrying a private IP.
#[derive(Debug, Clone)]
pub struct Eni {
    /// Interface id.
    pub id: EniId,
    /// The private IP currently assigned, if any.
    pub ip: Option<PrivateIp>,
    /// Attachment state.
    pub state: AttachState,
}

/// Allocates private IPs within the derivative cloud's VPC.
///
/// The paper: "SpotCheck creates a VPC and places all of its spot and
/// on-demand servers into it … and is able to create a private IP address
/// for each nested VM" (§3.4). Each customer gets a `/24`-style subnet
/// inside `10.0.0.0/8`.
#[derive(Debug, Clone, Default)]
pub struct Vpc {
    subnets: Vec<SubnetAlloc>,
}

#[derive(Debug, Clone)]
struct SubnetAlloc {
    base: u32,
    next_host: u32,
}

/// Identifies a customer subnet within the VPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubnetId(pub usize);

impl Vpc {
    /// Creates an empty VPC.
    pub fn new() -> Self {
        Vpc::default()
    }

    /// Carves a new customer subnet (`10.0.<n>.0/24`) and returns its id.
    ///
    /// # Panics
    ///
    /// Panics after 65 536 subnets (the 10.0.0.0/8 space is exhausted —
    /// far beyond any realistic customer count).
    pub fn create_subnet(&mut self) -> SubnetId {
        let n = self.subnets.len() as u32;
        assert!(n < 65_536, "VPC subnet space exhausted");
        let base = 0x0A00_0000 | (n << 8);
        self.subnets.push(SubnetAlloc { base, next_host: 1 });
        SubnetId(self.subnets.len() - 1)
    }

    /// Allocates the next free private IP in `subnet`.
    ///
    /// # Panics
    ///
    /// Panics if the subnet id is unknown or the subnet's 254 host
    /// addresses are exhausted.
    pub fn allocate_ip(&mut self, subnet: SubnetId) -> PrivateIp {
        let s = self
            .subnets
            .get_mut(subnet.0)
            .expect("unknown subnet id");
        assert!(s.next_host < 255, "subnet host space exhausted");
        let ip = PrivateIp(s.base | s.next_host);
        s.next_host += 1;
        ip
    }

    /// Returns the number of subnets created.
    pub fn subnet_count(&self) -> usize {
        self.subnets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_state_instance_extraction() {
        let i = InstanceId(9);
        assert_eq!(AttachState::Available.instance(), None);
        assert_eq!(AttachState::Attaching(i).instance(), Some(i));
        assert_eq!(AttachState::Attached(i).instance(), Some(i));
        assert_eq!(AttachState::Detaching(i).instance(), Some(i));
    }

    #[test]
    fn vpc_allocates_disjoint_subnets() {
        let mut vpc = Vpc::new();
        let s1 = vpc.create_subnet();
        let s2 = vpc.create_subnet();
        let a = vpc.allocate_ip(s1);
        let b = vpc.allocate_ip(s1);
        let c = vpc.allocate_ip(s2);
        assert_eq!(a.to_string(), "10.0.0.1");
        assert_eq!(b.to_string(), "10.0.0.2");
        assert_eq!(c.to_string(), "10.0.1.1");
        assert_ne!(a, b);
        assert_eq!(vpc.subnet_count(), 2);
    }

    #[test]
    #[should_panic(expected = "host space exhausted")]
    fn subnet_exhaustion_panics() {
        let mut vpc = Vpc::new();
        let s = vpc.create_subnet();
        for _ in 0..255 {
            vpc.allocate_ip(s);
        }
    }
}
