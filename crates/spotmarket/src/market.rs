//! Market identities.
//!
//! A *spot market* in EC2 is identified by an (instance type, availability
//! zone) pair: each pair has its own price series, and — empirically
//! (Figure 6c/6d of the paper) — the series are uncorrelated across both
//! dimensions. This module holds the lightweight identity types shared by
//! the trace generator, the cloud simulator, and SpotCheck's pool manager.

use std::fmt;

/// An instance-type name, e.g. `"m3.medium"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeName(String);

impl TypeName {
    /// Creates a type name.
    pub fn new(name: impl Into<String>) -> Self {
        TypeName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for TypeName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for TypeName {
    fn from(s: &str) -> Self {
        TypeName::new(s)
    }
}

/// An availability-zone name, e.g. `"us-east-1a"`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ZoneName(String);

impl ZoneName {
    /// Creates a zone name.
    pub fn new(name: impl Into<String>) -> Self {
        ZoneName(name.into())
    }

    /// Returns the name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ZoneName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ZoneName {
    fn from(s: &str) -> Self {
        ZoneName::new(s)
    }
}

/// Identifies one spot market: an (instance type, zone) pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MarketId {
    /// The instance type traded in this market.
    pub type_name: TypeName,
    /// The availability zone.
    pub zone: ZoneName,
}

impl MarketId {
    /// Creates a market id.
    pub fn new(type_name: impl Into<String>, zone: impl Into<String>) -> Self {
        MarketId {
            type_name: TypeName::new(type_name),
            zone: ZoneName::new(zone),
        }
    }
}

impl fmt::Display for MarketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.type_name, self.zone)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn market_id_display_and_eq() {
        let a = MarketId::new("m3.medium", "us-east-1a");
        let b = MarketId::new(String::from("m3.medium"), String::from("us-east-1a"));
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "m3.medium@us-east-1a");
    }

    #[test]
    fn names_order_lexicographically() {
        let a = MarketId::new("m3.large", "us-east-1a");
        let b = MarketId::new("m3.medium", "us-east-1a");
        assert!(a < b);
        assert_eq!(TypeName::from("x").as_str(), "x");
        assert_eq!(ZoneName::from("y").as_str(), "y");
    }
}
