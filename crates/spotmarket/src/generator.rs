//! Synthetic spot-price trace generation.
//!
//! A regime-switching model: a *calm* regime where the log price-ratio
//! mean-reverts around a low median (an Ornstein-Uhlenbeck walk observed at
//! exponentially-spaced update instants), interrupted by Poisson-arriving
//! *spikes* whose peak is Pareto-distributed above the on-demand price and
//! whose duration is log-normal. This reproduces the three empirical
//! properties the paper's evaluation rests on (Figure 6): a long-tailed
//! price distribution with most mass far below on-demand, hourly jumps
//! spanning orders of magnitude, and independence across markets (each
//! market gets its own forked RNG stream).

use std::collections::BTreeMap;

use spotcheck_simcore::dist::{ContinuousDist, Exponential, LogNormal, Normal, Pareto};
use spotcheck_simcore::rng::SimRng;
use spotcheck_simcore::series::StepSeries;
use spotcheck_simcore::time::{SimDuration, SimTime, MICROS_PER_SEC};

use crate::market::MarketId;
use crate::profiles::MarketProfile;
use crate::trace::PriceTrace;

/// Generates price traces for one market profile.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: MarketProfile,
}

impl TraceGenerator {
    /// Creates a generator from a profile.
    pub fn new(profile: MarketProfile) -> Self {
        TraceGenerator { profile }
    }

    /// Returns the profile.
    pub fn profile(&self) -> &MarketProfile {
        &self.profile
    }

    /// Generates a trace for `market` covering `[0, horizon)`.
    ///
    /// Markets should be generated with independent RNG streams (fork the
    /// run's root RNG by market name) so their series are uncorrelated.
    pub fn generate(
        &self,
        market: MarketId,
        horizon: SimDuration,
        rng: &mut SimRng,
    ) -> PriceTrace {
        let p = &self.profile;
        let od = p.on_demand_price;
        let horizon_us = horizon.as_micros();

        // Build the price at change points into a map (times are unique by
        // construction of the insertion logic below).
        let mut points: BTreeMap<u64, f64> = BTreeMap::new();

        // 1. Calm regime: OU walk on the log ratio, observed at
        //    exponentially-spaced instants.
        let gap = Exponential::with_mean(p.step_mean_secs);
        let noise = Normal::new(0.0, p.base_sigma);
        let mu = p.base_ratio_median.ln();
        let mut x = mu;
        let mut t_us: u64 = 0;
        while t_us < horizon_us {
            let ratio = x.exp().max(p.floor_ratio);
            points.insert(t_us, quantize(ratio * od));
            x += p.base_reversion * (mu - x) + noise.sample(rng);
            let dt = gap.sample(rng).max(1.0);
            t_us = t_us.saturating_add((dt * MICROS_PER_SEC as f64) as u64 + 1);
        }

        // 2. Spikes: Poisson arrivals; each spike overrides the calm price
        //    for its duration.
        if p.spikes_per_day > 0.0 {
            let inter = Exponential::with_mean(86_400.0 / p.spikes_per_day);
            let peak = Pareto::new(p.spike_peak_min_ratio, p.spike_peak_alpha);
            let dur = LogNormal::with_median(p.spike_duration_median_secs, p.spike_duration_sigma);
            let mut s = (inter.sample(rng) * MICROS_PER_SEC as f64) as u64;
            while s < horizon_us {
                let d_us = (dur.sample(rng).max(1.0) * MICROS_PER_SEC as f64) as u64;
                let end = s.saturating_add(d_us).min(horizon_us.saturating_sub(1));
                if end > s {
                    // The calm value that should resume after the spike.
                    let resume = points
                        .range(..=end)
                        .next_back()
                        .map(|(_, &v)| v)
                        .unwrap_or(quantize(p.base_ratio_median * od));
                    let peak_price = quantize((peak.sample(rng) * od).max(od * 1.01));
                    // Remove calm updates inside the spike window, set the
                    // spike, and restore the calm value at the end.
                    let inside: Vec<u64> =
                        points.range(s..=end).map(|(&t, _)| t).collect();
                    for t in inside {
                        points.remove(&t);
                    }
                    points.insert(s, peak_price);
                    points.insert(end, resume);
                }
                s = end.saturating_add(
                    (inter.sample(rng) * MICROS_PER_SEC as f64) as u64 + 1,
                );
            }
        }

        // 3. Collapse consecutive duplicate prices (quantization can produce
        //    runs of identical values; EC2 traces only record changes).
        let mut series = StepSeries::new();
        let mut last: Option<f64> = None;
        for (t, v) in points {
            if last != Some(v) {
                series.push(SimTime::from_micros(t), v);
                last = Some(v);
            }
        }
        spotcheck_simcore::metrics::add(series.len() as u64);

        PriceTrace::new(market, od, series)
    }
}

/// Quantizes a price to EC2's $0.0001 tick, with a one-tick floor.
fn quantize(price: f64) -> f64 {
    ((price * 10_000.0).round() / 10_000.0).max(0.0001)
}

/// Generates a trace per market for a whole fleet (used by the correlation
/// figures and the policy simulator). Each market's stream is forked from
/// `root` by the market's display name, so the set is reproducible and
/// pairwise independent.
pub fn generate_fleet(
    markets: &[(MarketId, MarketProfile)],
    horizon: SimDuration,
    root: &SimRng,
) -> Vec<PriceTrace> {
    // Markets are generated on independent forked streams, so fanning out
    // across workers cannot change any trace; results come back in market
    // order (the fleet is deterministic at every worker count).
    spotcheck_simcore::parallel::parallel_map(markets.to_vec(), |_, (id, profile)| {
        let mut rng = root.fork_named(&id.to_string());
        TraceGenerator::new(profile).generate(id, horizon, &mut rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::profile_for;

    fn medium_trace(days: u64, seed: u64) -> PriceTrace {
        let p = profile_for("m3.medium").unwrap().profile;
        let mut rng = SimRng::seed(seed);
        TraceGenerator::new(p).generate(
            MarketId::new("m3.medium", "us-east-1a"),
            SimDuration::from_days(days),
            &mut rng,
        )
    }

    #[test]
    fn trace_covers_horizon_and_is_positive() {
        let t = medium_trace(7, 1);
        assert_eq!(t.prices.start(), Some(SimTime::ZERO));
        assert!(t.end().unwrap() <= SimTime::from_days(7));
        assert!(t.prices.points().iter().all(|(_, v)| *v > 0.0));
        // 5-minute mean step over 7 days: expect roughly 2000 changes.
        assert!(t.prices.len() > 500, "len={}", t.prices.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = medium_trace(3, 42);
        let b = medium_trace(3, 42);
        assert_eq!(a.prices.points(), b.prices.points());
        let c = medium_trace(3, 43);
        assert_ne!(a.prices.points(), c.prices.points());
    }

    #[test]
    fn calm_prices_sit_far_below_on_demand() {
        let t = medium_trace(30, 7);
        let mean = t.mean_price(SimTime::ZERO, SimTime::from_days(30)).unwrap();
        // Paper: spot prices extremely low on average; calibration targets
        // ~0.11x on-demand median. Allow generous slack for spike mass.
        assert!(
            mean < 0.5 * t.on_demand_price,
            "mean {mean} should be well below od {}",
            t.on_demand_price
        );
    }

    #[test]
    fn medium_market_is_highly_available_at_od_bid() {
        let t = medium_trace(183, 11);
        let a = t
            .availability_at_bid(t.on_demand_price, SimTime::ZERO, SimTime::from_days(183))
            .unwrap();
        assert!(a > 0.998, "m3.medium availability at od bid: {a}");
    }

    #[test]
    fn large_market_spikes_multiple_times_per_day() {
        let p = profile_for("m3.large").unwrap().profile;
        let mut rng = SimRng::seed(3);
        let t = TraceGenerator::new(p).generate(
            MarketId::new("m3.large", "us-east-1a"),
            SimDuration::from_days(30),
            &mut rng,
        );
        let revs = t.revocations_at_bid(t.on_demand_price, SimTime::ZERO, SimTime::from_days(30));
        // Calibrated at 6.5/day: expect on the order of 100-300 over 30 days.
        assert!(
            (100..400).contains(&revs),
            "m3.large revocations over 30 days: {revs}"
        );
        let a = t
            .availability_at_bid(t.on_demand_price, SimTime::ZERO, SimTime::from_days(30))
            .unwrap();
        assert!((0.90..0.999).contains(&a), "availability {a}");
    }

    #[test]
    fn spikes_exceed_on_demand() {
        let t = medium_trace(183, 5);
        let max = t
            .prices
            .points()
            .iter()
            .map(|(_, v)| *v)
            .fold(0.0, f64::max);
        assert!(
            max > t.on_demand_price,
            "a 6-month m3.medium trace should contain at least one spike above od"
        );
    }

    #[test]
    fn prices_are_quantized_to_ec2_tick() {
        let t = medium_trace(7, 9);
        for (_, v) in t.prices.points() {
            let ticks = v * 10_000.0;
            assert!(
                (ticks - ticks.round()).abs() < 1e-6,
                "price {v} not on $0.0001 tick"
            );
        }
    }

    #[test]
    fn fleet_markets_are_reproducible_and_distinct() {
        let p = profile_for("m3.medium").unwrap().profile;
        let markets = vec![
            (MarketId::new("m3.medium", "us-east-1a"), p.clone()),
            (MarketId::new("m3.medium", "us-east-1b"), p),
        ];
        let root = SimRng::seed(1);
        let f1 = generate_fleet(&markets, SimDuration::from_days(3), &root);
        let f2 = generate_fleet(&markets, SimDuration::from_days(3), &root);
        assert_eq!(f1[0].prices.points(), f2[0].prices.points());
        assert_ne!(
            f1[0].prices.points(),
            f1[1].prices.points(),
            "different zones must get independent traces"
        );
    }
}
