//! Market statistics: the analyses behind Figure 6 of the paper.
//!
//! - [`availability_curve`] — Figure 6a: availability as a function of the
//!   bid expressed as a spot/on-demand ratio.
//! - [`hourly_jumps`] — Figure 6b: the distribution of hourly percentage
//!   price changes, split into increases and decreases.
//! - [`correlation_matrix`] — Figures 6c/6d: pairwise Pearson correlation of
//!   resampled price series across zones or instance types.

use spotcheck_simcore::stats::{pearson, Ecdf};
use spotcheck_simcore::time::{SimDuration, SimTime};

use crate::trace::PriceTrace;

/// One point of the Figure 6a curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityPoint {
    /// The bid expressed as a fraction of the on-demand price.
    pub bid_ratio: f64,
    /// The fraction of time the spot price was at or below the bid.
    pub availability: f64,
}

/// Computes the availability-vs-bid curve of a trace over `[from, to)` at
/// the given bid ratios (Figure 6a).
///
/// Returns an empty vector if the window is invalid for this trace.
pub fn availability_curve(
    trace: &PriceTrace,
    bid_ratios: &[f64],
    from: SimTime,
    to: SimTime,
) -> Vec<AvailabilityPoint> {
    bid_ratios
        .iter()
        .filter_map(|&r| {
            trace
                .availability_at_bid(r * trace.on_demand_price, from, to)
                .map(|availability| AvailabilityPoint {
                    bid_ratio: r,
                    availability,
                })
        })
        .collect()
}

/// Hourly percentage price jumps of a trace, split by direction
/// (Figure 6b).
#[derive(Debug, Clone, Default)]
pub struct JumpStats {
    /// Percentage magnitudes of hourly increases (e.g. `250.0` = +250%).
    pub increases_pct: Vec<f64>,
    /// Percentage magnitudes of hourly decreases.
    pub decreases_pct: Vec<f64>,
}

impl JumpStats {
    /// Returns the ECDF of increase magnitudes, or `None` if there were
    /// none.
    pub fn increase_cdf(&self) -> Option<Ecdf> {
        if self.increases_pct.is_empty() {
            None
        } else {
            Some(Ecdf::new(self.increases_pct.clone()))
        }
    }

    /// Returns the ECDF of decrease magnitudes, or `None` if there were
    /// none.
    pub fn decrease_cdf(&self) -> Option<Ecdf> {
        if self.decreases_pct.is_empty() {
            None
        } else {
            Some(Ecdf::new(self.decreases_pct.clone()))
        }
    }
}

/// Computes hourly percentage jumps over `[from, to)` (Figure 6b).
///
/// The trace is resampled on an hourly grid; each pair of consecutive
/// samples with differing prices contributes `100 * |p1 - p0| / p0` to the
/// increases or decreases, matching the paper's "log percentage price jump
/// (hourly)" axis.
pub fn hourly_jumps(trace: &PriceTrace, from: SimTime, to: SimTime) -> JumpStats {
    let xs = trace.resample(from, to, SimDuration::from_hours(1));
    let mut out = JumpStats::default();
    for w in xs.windows(2) {
        let (p0, p1) = (w[0], w[1]);
        if p0 <= 0.0 || p0 == p1 {
            continue;
        }
        let pct = 100.0 * (p1 - p0).abs() / p0;
        if p1 > p0 {
            out.increases_pct.push(pct);
        } else {
            out.decreases_pct.push(pct);
        }
    }
    out
}

/// Computes the pairwise Pearson correlation matrix of traces over
/// `[from, to)`, resampled at `step` (Figures 6c/6d).
///
/// Entries where either series has zero variance are reported as 0.0 (the
/// paper's heatmaps likewise render no-signal cells as uncorrelated);
/// diagonal entries are always 1.0.
pub fn correlation_matrix(
    traces: &[&PriceTrace],
    from: SimTime,
    to: SimTime,
    step: SimDuration,
) -> Vec<Vec<f64>> {
    let series: Vec<Vec<f64>> = traces
        .iter()
        .map(|t| t.resample(from, to, step))
        .collect();
    let n = series.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in (i + 1)..n {
            let r = pearson(&series[i], &series[j]).unwrap_or(0.0);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Returns summary statistics of the off-diagonal entries of a correlation
/// matrix: `(mean, max_abs)`. The paper's claim is that these are near zero.
pub fn off_diagonal_summary(matrix: &[Vec<f64>]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut count = 0usize;
    let mut max_abs: f64 = 0.0;
    for (i, row) in matrix.iter().enumerate() {
        for (j, &v) in row.iter().enumerate() {
            if i != j {
                sum += v;
                count += 1;
                max_abs = max_abs.max(v.abs());
            }
        }
    }
    if count == 0 {
        (0.0, 0.0)
    } else {
        (sum / count as f64, max_abs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate_fleet, TraceGenerator};
    use crate::market::MarketId;
    use crate::profiles::profile_for;
    use spotcheck_simcore::rng::SimRng;
    use spotcheck_simcore::series::StepSeries;

    fn synthetic_trace() -> PriceTrace {
        // od=0.10; below od except a spike in [3600, 7200).
        let s = StepSeries::from_points(vec![
            (SimTime::from_secs(0), 0.02),
            (SimTime::from_secs(3_600), 0.80),
            (SimTime::from_secs(7_200), 0.02),
        ]);
        PriceTrace::new(MarketId::new("t", "z"), 0.10, s)
    }

    #[test]
    fn availability_curve_is_monotone_in_bid() {
        let t = synthetic_trace();
        let ratios: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
        let curve = availability_curve(&t, &ratios, SimTime::ZERO, SimTime::from_hours(10));
        assert_eq!(curve.len(), 10);
        for w in curve.windows(2) {
            assert!(w[1].availability >= w[0].availability);
        }
        // Bid at od ratio 1.0: the spike (1h of 10h) is above it.
        assert!((curve[9].availability - 0.9).abs() < 1e-9);
    }

    #[test]
    fn hourly_jumps_capture_spike_magnitudes() {
        let t = synthetic_trace();
        let jumps = hourly_jumps(&t, SimTime::ZERO, SimTime::from_hours(10));
        // 0.02 -> 0.80 is a +3900% jump; 0.80 -> 0.02 is a -97.5% change.
        assert_eq!(jumps.increases_pct.len(), 1);
        assert_eq!(jumps.decreases_pct.len(), 1);
        assert!((jumps.increases_pct[0] - 3_900.0).abs() < 1e-6);
        assert!((jumps.decreases_pct[0] - 97.5).abs() < 1e-6);
        assert!(jumps.increase_cdf().is_some());
    }

    #[test]
    fn hourly_jumps_empty_for_flat_trace() {
        let s = StepSeries::from_points(vec![(SimTime::ZERO, 0.05)]);
        let t = PriceTrace::new(MarketId::new("t", "z"), 0.10, s);
        let jumps = hourly_jumps(&t, SimTime::ZERO, SimTime::from_hours(5));
        assert!(jumps.increases_pct.is_empty());
        assert!(jumps.decreases_pct.is_empty());
        assert!(jumps.increase_cdf().is_none());
    }

    #[test]
    fn generated_markets_are_uncorrelated() {
        // The Figure 6c/6d property: independent streams per market give
        // near-zero off-diagonal correlation.
        let p = profile_for("m3.large").unwrap().profile;
        let markets: Vec<_> = ["a", "b", "c", "d"]
            .iter()
            .map(|z| (MarketId::new("m3.large", *z), p.clone()))
            .collect();
        let traces = generate_fleet(&markets, SimDuration::from_days(60), &SimRng::seed(17));
        let refs: Vec<&PriceTrace> = traces.iter().collect();
        let m = correlation_matrix(
            &refs,
            SimTime::ZERO,
            SimTime::from_days(60),
            SimDuration::from_hours(1),
        );
        let (mean, max_abs) = off_diagonal_summary(&m);
        assert!(mean.abs() < 0.1, "mean off-diagonal correlation {mean}");
        assert!(max_abs < 0.35, "max |off-diagonal| correlation {max_abs}");
        for (i, row) in m.iter().enumerate() {
            assert_eq!(row[i], 1.0);
        }
    }

    #[test]
    fn identical_traces_correlate_perfectly() {
        let p = profile_for("m3.medium").unwrap().profile;
        let mut rng = SimRng::seed(4);
        let t = TraceGenerator::new(p).generate(
            MarketId::new("m3.medium", "z"),
            SimDuration::from_days(10),
            &mut rng,
        );
        let m = correlation_matrix(
            &[&t, &t],
            SimTime::ZERO,
            SimTime::from_days(10),
            SimDuration::from_hours(1),
        );
        assert!((m[0][1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn off_diagonal_summary_of_identity_is_zero() {
        let m = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(off_diagonal_summary(&m), (0.0, 0.0));
        assert_eq!(off_diagonal_summary(&[]), (0.0, 0.0));
    }
}
